# Convenience targets for the GANNS reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full bench-wallclock perf-smoke \
	quant-smoke bakeoff-smoke cluster-smoke mutate-smoke heal-smoke \
	bench-recovery experiments examples clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate the committed wall-clock baseline (fast vs reference).
bench-wallclock:
	$(PYTHON) benchmarks/bench_wallclock.py --output BENCH_wallclock.json

# The CI perf gate: quick workload, fast must stay >= 1.5x reference.
perf-smoke:
	$(PYTHON) benchmarks/bench_wallclock.py --quick \
		--output wallclock_smoke.json
	$(PYTHON) scripts/check_perf_smoke.py wallclock_smoke.json

# The CI quant gate: quantized staged search >= 1.5x over the exact
# fast backend, recall@10 within 0.02, deterministic, and serve-replay
# quant metrics reconcile with zero drift.
quant-smoke:
	$(PYTHON) benchmarks/bench_wallclock.py --quant-smoke \
		--output quant_smoke.json
	$(PYTHON) scripts/check_quant_smoke.py quant_smoke.json

# The CI bake-off gate: every family clears its recall floor and cagra
# construction stays below nsw on the smoke dataset.
bakeoff-smoke:
	$(PYTHON) benchmarks/bench_bakeoff.py --quick \
		--output bakeoff_smoke.json
	$(PYTHON) scripts/check_bakeoff_smoke.py bakeoff_smoke.json

# The CI cluster gate: 10x2 scatter-gather at 10x serve-smoke volume,
# byte-identical replays, bounded p99, zero silent wrong answers.
cluster-smoke:
	$(PYTHON) -m repro cluster-sim \
		--points 1000 --queries 200 --requests 2000 \
		--qps 10000 --queries-per-request 10 \
		--shards 10 --replicas 2 \
		--fault-plan replica-loss --fault-seed 0 --no-governor \
		| tee cluster-sim.out
	$(PYTHON) scripts/check_cluster_smoke.py cluster-sim.out

# The CI mutate gate: crash-chaos mutation workloads at >= 3 seeds,
# byte-identical reruns, exact recovery digests, zero wrong answers.
mutate-smoke:
	$(PYTHON) -m repro mutate-sim \
		--points 200 --dims 16 --ops 24 --seed 0 \
		--compact-every 6 --checkpoint-every 9 \
		--fault-plan compaction-crash --fault-seed 0 \
		| tee mutate-sim.out
	$(PYTHON) scripts/check_mutate_smoke.py mutate-sim.out

# The CI heal gate: whole-stack chaos soak (cluster + mutable + quant)
# at 3 seeds x 2 runs, byte-identical reruns, zero wrong answers,
# every replica loss healed within the MTTR bound, quarantined
# rebuilds never admitted.
heal-smoke:
	$(PYTHON) -m repro soak-sim --seed 0 | tee soak-sim.out
	$(PYTHON) scripts/check_heal_smoke.py soak-sim.out

# Regenerate the committed recovery benchmark (MTTR vs shard size and
# WAL depth) inside BENCH_wallclock.json.
bench-recovery:
	$(PYTHON) benchmarks/bench_recovery.py --output BENCH_wallclock.json

experiments:
	$(PYTHON) scripts/collect_experiments.py

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; done

clean:
	rm -rf .bench_cache benchmarks/results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
