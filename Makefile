# Convenience targets for the GANNS reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full experiments examples clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) scripts/collect_experiments.py

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; done

clean:
	rm -rf .bench_cache benchmarks/results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
