"""CI gate for the cluster smoke: 10x2 scatter-gather, nothing wrong.

Usage::

    python -m repro cluster-sim ... | tee cluster-sim.out
    python scripts/check_cluster_smoke.py cluster-sim.out

Checks, per the sharded-serving acceptance bar:

1. The captured ``cluster-sim`` output carries a report digest line
   (the command ran its zero-drift verification).
2. An in-process 10-shard x 2-replica replay at >= 10x the
   single-engine smoke's query volume (2,000 requests x 10 queries =
   20,000 queries vs the 2,000-query serve smoke) completes with a
   bounded p99.
3. Two replays of that scenario produce byte-identical
   ``ClusterReport`` encodings, and the report reconciles exactly with
   its metrics registry.
4. Zero silently-wrong answers under the seeded replica-loss plan:
   every *complete* answer equals the offline merge of direct
   per-shard GANNS searches over the same placement; every incomplete
   answer is explicitly flagged (``PARTIAL`` with named missing
   shards, or ``FAILED``).

Exit code 0 when all hold, 1 otherwise.
"""

from __future__ import annotations

import sys

import numpy as np

#: Frozen smoke scenario.
N_POINTS = 1000
N_POOL = 200
N_REQUESTS = 2000
QUERIES_PER_REQUEST = 10
MEAN_QPS = 10_000.0
N_SHARDS = 10
N_REPLICAS = 2
FAULT_SEED = 0
P99_BOUND_SECONDS = 0.25


def check_output_file(path: str) -> None:
    """Assert the captured cluster-sim output verified its report."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if "ClusterReport:" not in text:
        raise SystemExit(
            f"{path}: no ClusterReport summary found — did cluster-sim "
            f"run?")
    if "report digest" not in text:
        raise SystemExit(f"{path}: no report digest line found")


def run_smoke():
    """The in-process 10x2 battery; returns (report, n_wrong)."""
    from repro.cluster import ClusterEngine, merge_topk
    from repro.core.ganns import ganns_search
    from repro.core.params import SearchParams
    from repro.datasets.catalog import load_dataset
    from repro.faults import named_fault_plan
    from repro.serve import synthetic_trace

    dataset = load_dataset("sift1m", n_points=N_POINTS,
                           n_queries=N_POOL)
    params = SearchParams(k=10, l_n=64)
    trace = synthetic_trace(dataset.queries, N_REQUESTS,
                            mean_qps=MEAN_QPS,
                            queries_per_request=QUERIES_PER_REQUEST,
                            seed=0)
    n_queries = sum(req.n_queries for req in trace)
    assert n_queries >= 10 * 2000, (
        f"smoke volume {n_queries} below 10x the single-engine smoke")
    plan = named_fault_plan(
        "replica-loss",
        horizon_seconds=2.0 * N_REQUESTS / MEAN_QPS,
        seed=FAULT_SEED, n_workers=N_SHARDS * N_REPLICAS)
    engine = ClusterEngine(dataset.points, n_shards=N_SHARDS,
                           n_replicas=N_REPLICAS, params=params,
                           faults=plan)
    report = engine.replay(trace)
    report.verify_against_metrics()

    second = engine.replay(trace)
    if report.to_bytes() != second.to_bytes():
        raise SystemExit(
            "FAIL: two replays of the same scenario produced "
            "different report bytes")

    # Offline reference: direct per-shard GANNS over the query pool,
    # merged exactly — what every complete answer must equal.
    pool = dataset.queries
    pool_row = {pool[i].tobytes(): i for i in range(len(pool))}
    shard_ids, shard_dists = [], []
    for shard in range(N_SHARDS):
        result = ganns_search(engine.shard_graphs[shard],
                              engine.shard_points[shard], pool, params)
        shard_ids.append(
            engine.shard_map.to_global(shard, result.ids))
        shard_dists.append(result.dists)
    ref_ids, ref_dists = merge_topk(params.k, shard_ids, shard_dists)

    n_wrong = 0
    for pos, outcome in enumerate(report.outcomes):
        if not outcome.complete:
            # Never silent: partial answers must name missing shards.
            if outcome.answered and not outcome.missing_shards:
                n_wrong += 1
            continue
        if outcome.degraded_tier != 0:
            continue
        rows = [pool_row[q.tobytes()] for q in trace[pos].queries]
        if not (np.array_equal(outcome.ids, ref_ids[rows])
                and np.array_equal(outcome.dists, ref_dists[rows])):
            n_wrong += 1
    return report, n_wrong


def main(argv) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    check_output_file(argv[1])
    print("cluster-sim output: summary and digest present")
    report, n_wrong = run_smoke()
    print(f"replay: {report.n_requests} requests "
          f"({report.answered_queries} queries answered) on "
          f"{report.n_shards}x{report.n_replicas}, "
          f"p99 {report.p99_latency * 1e3:.3f} ms, "
          f"{report.n_failovers} failovers, "
          f"{report.n_partial} partial, {n_wrong} wrong answers")
    if report.n_served == 0:
        print("FAIL: no request was served completely",
              file=sys.stderr)
        return 1
    if report.p99_latency > P99_BOUND_SECONDS:
        print(f"FAIL: p99 {report.p99_latency:.3f} s exceeds the "
              f"{P99_BOUND_SECONDS} s bound", file=sys.stderr)
        return 1
    if n_wrong:
        print(f"FAIL: {n_wrong} answers diverge from the offline "
              f"per-shard merge or degrade silently", file=sys.stderr)
        return 1
    print("cluster smoke OK (byte-identical replays, bounded p99, "
          "zero silent wrong answers)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
