"""CI gate for the chaos smoke: faults fired, nothing silently wrong.

Usage::

    python -m repro chaos-sim ... --fault-seed 0 | tee chaos-sim.out
    python scripts/check_chaos_smoke.py chaos-sim.out

Two checks:

1. The captured ``chaos-sim`` output reports a *nonzero* number of
   delivered faults — a smoke run where no fault armed exercises
   nothing.
2. An in-process replay of the same seeded scenario confirms zero
   silently-wrong answers: every served request's results are
   byte-identical to a direct ``ganns_search`` at the tier the request
   was served at (full-quality requests at tier 0, degraded requests at
   their recorded tier).

Exit code 0 when both hold, 1 otherwise.
"""

from __future__ import annotations

import re
import sys

import numpy as np


def check_output_file(path: str) -> int:
    """Parse the FaultReport line and return the delivered-fault count."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    match = re.search(r"FaultReport: (\d+)/(\d+) scheduled faults "
                      r"delivered", text)
    if match is None:
        raise SystemExit(
            f"{path}: no FaultReport line found — did chaos-sim run?")
    delivered = int(match.group(1))
    if "report digest" not in text:
        raise SystemExit(f"{path}: no report digest line found")
    return delivered


def check_no_silent_wrong_answers() -> tuple:
    """Replay a seeded chaos scenario; count served-answer mismatches."""
    from repro.baselines.nsw_cpu import build_nsw_cpu
    from repro.core.ganns import ganns_search
    from repro.core.params import SearchParams
    from repro.datasets.catalog import load_dataset
    from repro.faults import AdmissionGovernor, named_fault_plan
    from repro.serve import (BatchPolicy, ResultCache, ServeEngine,
                             synthetic_trace)

    n_requests, mean_qps = 2000, 200_000.0
    dataset = load_dataset("sift1m", n_points=1000, n_queries=200)
    graph = build_nsw_cpu(dataset.points, d_min=8, d_max=16).graph
    params = SearchParams(k=10, l_n=64)
    governor = AdmissionGovernor.default_for(params)
    plan = named_fault_plan(
        "aggressive", horizon_seconds=2.0 * n_requests / mean_qps,
        seed=0)
    engine = ServeEngine(
        graph, dataset.points, params,
        policy=BatchPolicy(max_batch=128, max_wait_seconds=5e-4,
                           max_queue=1024),
        cache=ResultCache(capacity=1024),
        faults=plan, governor=governor,
        default_deadline_seconds=20e-3)
    trace = synthetic_trace(dataset.queries, n_requests,
                            mean_qps=mean_qps, seed=0)
    report = engine.replay(trace)

    pool = dataset.queries
    pool_row = {pool[i].tobytes(): i for i in range(len(pool))}
    direct = {tier: ganns_search(graph, dataset.points, pool,
                                 governor.params_for(tier, params))
              for tier in range(governor.n_tiers)}
    wrong = 0
    for req in trace:
        outcome = report.outcomes[req.request_id]
        if not outcome.served:
            continue
        row = pool_row[req.queries[0].tobytes()]
        ref = direct[outcome.degraded_tier]
        if not (np.array_equal(outcome.ids[0], ref.ids[row])
                and np.array_equal(outcome.dists[0], ref.dists[row])):
            wrong += 1
    return wrong, report


def main(argv) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    delivered = check_output_file(argv[1])
    print(f"chaos-sim output: {delivered} faults delivered")
    if delivered == 0:
        print("FAIL: the smoke run delivered zero faults",
              file=sys.stderr)
        return 1
    wrong, report = check_no_silent_wrong_answers()
    print(f"replay: {report.n_served} served "
          f"({report.n_degraded} degraded), {report.n_failed} failed, "
          f"{report.fault_report.n_injected} faults injected, "
          f"{wrong} silently-wrong answers")
    if report.fault_report.n_injected == 0:
        print("FAIL: the replay injected zero faults", file=sys.stderr)
        return 1
    if wrong:
        print(f"FAIL: {wrong} served answers diverge from direct "
              f"search at their tier", file=sys.stderr)
        return 1
    print("chaos smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
