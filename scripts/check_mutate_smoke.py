"""CI gate for the mutate smoke: crash-chaos workloads, exact recovery.

Usage::

    python -m repro mutate-sim ... | tee mutate-sim.out
    python scripts/check_mutate_smoke.py mutate-sim.out

Checks, per the crash-safe mutable-index acceptance bar:

1. The captured ``mutate-sim`` output carries a report digest line
   (the command ran its zero-drift verification).
2. An in-process crash-chaos battery at >= 3 workload seeds completes;
   every run is executed **twice** and must produce byte-identical
   ``MutationReport`` encodings.
3. Zero silently wrong answers: no search in any run ever returned a
   tombstoned id.
4. Recovery is exact: for every run, recovering from the surviving
   durable store yields an index whose digest is byte-identical to a
   clean replay of the surviving log AND to the workload's own final
   digest; each report also reconciles with its metrics registry with
   zero drift.
5. At least one seed actually delivers a crash (the chaos recipe must
   not silently degrade into a calm workload).

Exit code 0 when all hold, 1 otherwise.
"""

from __future__ import annotations

import sys

#: Frozen smoke scenario.
N_POINTS = 200
N_DIMS = 16
N_OPS = 24
SEEDS = (0, 1, 2)
BATCH = 8
K = 5
L_N = 32
COMPACT_EVERY = 6
CHECKPOINT_EVERY = 9
FAULT_PLAN = "compaction-crash"
FAULT_SEED = 0


def check_output_file(path: str) -> None:
    """Assert the captured mutate-sim output verified its report."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if "MutationReport:" not in text:
        raise SystemExit(
            f"{path}: no MutationReport summary found — did mutate-sim "
            f"run?")
    if "report digest" not in text:
        raise SystemExit(f"{path}: no report digest line found")


def run_battery():
    """The in-process multi-seed chaos battery.

    Returns ``(reports, n_wrong, n_crashes, n_recovery_mismatches)``.
    """
    from repro.faults import named_fault_plan
    from repro.mutable import clean_replay_digest, run_mutation_sim

    def one_run(seed):
        plan = named_fault_plan(FAULT_PLAN,
                                horizon_seconds=float(N_OPS + 1),
                                seed=FAULT_SEED)
        return run_mutation_sim(
            n_points=N_POINTS, n_dims=N_DIMS, n_ops=N_OPS, seed=seed,
            batch_size=BATCH, k=K, l_n=L_N,
            compact_every=COMPACT_EVERY,
            checkpoint_every=CHECKPOINT_EVERY, fault_plan=plan)

    reports = []
    n_wrong = 0
    n_crashes = 0
    n_recovery_mismatches = 0
    for seed in SEEDS:
        report = one_run(seed)
        second = one_run(seed)
        if report.to_bytes() != second.to_bytes():
            raise SystemExit(
                f"FAIL: seed {seed}: two runs of the same scenario "
                f"produced different report bytes")
        report.verify_against_metrics()
        n_wrong += report.n_wrong_answers
        n_crashes += report.n_crashes
        # Recovery exactness: the store each run leaves behind must
        # replay to the digest the live index reported.
        store = report.store
        recovered_digest = clean_replay_digest(store)
        if recovered_digest != report.final_digest:
            n_recovery_mismatches += 1
            print(f"FAIL: seed {seed}: clean-replay digest "
                  f"{recovered_digest[:16]} != surviving index digest "
                  f"{report.final_digest[:16]}", file=sys.stderr)
        reports.append(report)
    return reports, n_wrong, n_crashes, n_recovery_mismatches


def main(argv) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    check_output_file(argv[1])
    print("mutate-sim output: summary and digest present")
    reports, n_wrong, n_crashes, n_mismatches = run_battery()
    for seed, report in zip(SEEDS, reports):
        print(f"seed {seed}: {len(report.ops)} ops, "
              f"{report.n_crashes} crashes, "
              f"{report.n_recoveries} recoveries "
              f"({report.replayed_records} records replayed), "
              f"{report.n_searches} searches, "
              f"{report.n_wrong_answers} wrong answers, "
              f"digest {report.digest()[:16]}")
    if n_crashes == 0:
        print("FAIL: no seed delivered a crash — the chaos recipe is "
              "inert", file=sys.stderr)
        return 1
    if n_wrong:
        print(f"FAIL: {n_wrong} tombstoned ids leaked into search "
              f"results", file=sys.stderr)
        return 1
    if n_mismatches:
        print(f"FAIL: {n_mismatches} runs recovered to a digest that "
              f"differs from the clean log replay", file=sys.stderr)
        return 1
    print(f"mutate smoke OK ({len(SEEDS)} seeds, byte-identical "
          f"reruns, {n_crashes} crashes all recovered exactly, zero "
          f"wrong answers)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
