"""Regenerate committed golden artifacts under ``tests/data/``.

Golden files pin byte-for-byte determinism claims; regenerating one is
a *conscious* act that must be called out in the commit message.  Each
artifact has its own flag so an intentional format change regenerates
exactly the goldens it invalidates:

    PYTHONPATH=src python scripts/regen_golden.py --trace

``--trace`` rewrites ``tests/data/trace_golden.json.gz`` — the frozen
chaos-serving scenario of ``tests/test_trace_golden.py``, gzip-packed
with ``mtime=0`` so the archive bytes themselves are reproducible.
``--cluster-trace`` rewrites ``tests/data/cluster_trace_golden.json.gz``
— the frozen sharded-cluster scenario of
``tests/test_cluster_trace_golden.py``, same packing.
``--mutate-trace`` rewrites ``tests/data/mutate_trace_golden.json.gz``
— the frozen chaos-mutation scenario of
``tests/test_mutate_trace_golden.py``, same packing.
``--cagra`` rewrites ``tests/data/cagra_golden.npz`` — the frozen
CAGRA build digest + GANNS search results of
``tests/test_cagra_golden.py``.
(The GANNS search golden has its own legacy path:
``PYTHONPATH=src python tests/test_golden_determinism.py
--regenerate``.)
"""

import argparse
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, REPO_ROOT)
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def regen_trace() -> None:
    from tests.test_trace_golden import (
        GOLDEN_PATH,
        compute_golden_trace,
        write_golden,
    )
    payload = compute_golden_trace()
    write_golden(payload)
    print(f"wrote {GOLDEN_PATH} ({len(payload):,} bytes uncompressed)")


def regen_cluster_trace() -> None:
    from tests.test_cluster_trace_golden import (
        GOLDEN_PATH,
        compute_golden_cluster_trace,
        write_golden,
    )
    payload = compute_golden_cluster_trace()
    write_golden(payload)
    print(f"wrote {GOLDEN_PATH} ({len(payload):,} bytes uncompressed)")


def regen_mutate_trace() -> None:
    from tests.test_mutate_trace_golden import (
        GOLDEN_PATH,
        compute_golden_mutation,
        write_golden,
    )
    payload = compute_golden_mutation()
    write_golden(payload)
    print(f"wrote {GOLDEN_PATH} ({len(payload):,} bytes uncompressed)")


def regen_cagra() -> None:
    from tests.test_cagra_golden import (
        GOLDEN_PATH,
        compute_golden,
        write_golden,
    )
    graph, ids, dists = compute_golden()
    write_golden(graph, ids, dists)
    print(f"wrote {GOLDEN_PATH}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate committed golden artifacts")
    parser.add_argument("--trace", action="store_true",
                        help="regenerate tests/data/trace_golden.json.gz")
    parser.add_argument("--cluster-trace", action="store_true",
                        help="regenerate "
                             "tests/data/cluster_trace_golden.json.gz")
    parser.add_argument("--mutate-trace", action="store_true",
                        help="regenerate "
                             "tests/data/mutate_trace_golden.json.gz")
    parser.add_argument("--cagra", action="store_true",
                        help="regenerate tests/data/cagra_golden.npz")
    args = parser.parse_args(argv)
    if not (args.trace or args.cluster_trace or args.mutate_trace
            or args.cagra):
        parser.error("nothing selected; pass --trace, --cluster-trace, "
                     "--mutate-trace and/or --cagra")
    if args.trace:
        regen_trace()
    if args.cluster_trace:
        regen_cluster_trace()
    if args.mutate_trace:
        regen_mutate_trace()
    if args.cagra:
        regen_cagra()
    return 0


if __name__ == "__main__":
    sys.exit(main())
