"""CI gate for the self-healing soak: chaos survived, nothing wrong.

Usage::

    python -m repro soak-sim ... | tee soak-sim.out
    python scripts/check_heal_smoke.py soak-sim.out

Checks, per the self-healing acceptance bar:

1. The captured ``soak-sim`` output carries a soak digest line (the
   command ran every phase's zero-drift verification and the oracle
   gate).
2. Three in-process soak seeds each run twice and produce
   byte-identical :class:`repro.heal.soak.SoakReport` encodings.
3. Zero silently-wrong answers across every seed and phase: each
   complete tier-0 answer equals the offline per-shard GANNS merge,
   partial answers name their missing shards, tombstoned ids are
   never served, and mutation-sim recovery is digest-faithful.
4. Every induced single-replica loss heals within the MTTR bound —
   no repair is abandoned or re-admitted late.
5. The quarantine path actually exercised across the seed set, and a
   structural sweep over repair records proves a digest-mismatched
   rebuild is *never* the admitted one: for every healed repair the
   admitted attempt is the (only) digest-matched attempt, and an
   abandoned repair has no matched attempt and an infinite
   re-admission time.

Exit code 0 when all hold, 1 otherwise.
"""

from __future__ import annotations

import math
import sys

#: Frozen smoke scenario.
SOAK_SEEDS = (0, 1, 2)
MTTR_BOUND_SECONDS = 0.05


def check_output_file(path: str) -> None:
    """Assert the captured soak-sim output verified its report."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if "SoakReport:" not in text:
        raise SystemExit(
            f"{path}: no SoakReport summary found — did soak-sim run?")
    if "soak digest" not in text:
        raise SystemExit(f"{path}: no soak digest line found")


def run_soak_battery() -> int:
    """3 seeds x 2 runs; returns total quarantines exercised."""
    from repro.heal import run_soak_sim

    n_quarantines = 0
    for seed in SOAK_SEEDS:
        first = run_soak_sim(seed=seed,
                             mttr_bound_seconds=MTTR_BOUND_SECONDS)
        second = run_soak_sim(seed=seed,
                              mttr_bound_seconds=MTTR_BOUND_SECONDS)
        if first.to_bytes() != second.to_bytes():
            raise SystemExit(
                f"FAIL: seed {seed}: two soak runs produced different "
                f"report bytes")
        if first.n_wrong:
            raise SystemExit(
                f"FAIL: seed {seed}: {first.n_wrong} silently-wrong "
                f"answers survived the soak")
        if first.n_unhealed:
            raise SystemExit(
                f"FAIL: seed {seed}: {first.n_unhealed} replica losses "
                f"missed the {MTTR_BOUND_SECONDS * 1e3:g} ms MTTR "
                f"bound")
        if first.n_repairs == 0:
            raise SystemExit(
                f"FAIL: seed {seed}: the chaos plan induced no repairs "
                f"— the soak is not exercising the healing path")
        n_quarantines += first.n_quarantines
        print(f"  seed {seed}: byte-identical reruns, "
              f"{first.n_repairs} repairs "
              f"({first.n_quarantines} quarantined), "
              f"max MTTR {first.max_mttr_seconds * 1e3:.3f} ms, "
              f"0 wrong answers")
    return n_quarantines


def check_quarantine_never_admitted() -> None:
    """Structural sweep: a mismatched rebuild is never re-admitted.

    Runs a healing cluster replay with corruption cranked high enough
    that multiple rebuild attempts quarantine, then walks every
    :class:`repro.heal.controller.RepairRecord`: the admitted attempt
    must be the only digest-matched one.
    """
    from repro.cluster import ClusterEngine
    from repro.core.params import SearchParams
    from repro.datasets.catalog import load_dataset
    from repro.faults import named_fault_plan
    from repro.heal import HealPolicy
    from repro.serve import synthetic_trace

    dataset = load_dataset("sift1m", n_points=400, n_queries=50)
    params = SearchParams(k=8, l_n=32)
    trace = synthetic_trace(dataset.queries, 200, mean_qps=20_000.0,
                            queries_per_request=2, seed=7)
    plan = named_fault_plan("soak", horizon_seconds=0.05, seed=7,
                            n_workers=8)
    engine = ClusterEngine(
        dataset.points, n_shards=4, n_replicas=2, params=params,
        faults=plan,
        heal=HealPolicy(corruption_probability=0.8,
                        max_rebuild_attempts=6,
                        mttr_bound_seconds=MTTR_BOUND_SECONDS))
    report = engine.replay(trace)
    report.verify_against_metrics()
    if not report.repairs:
        raise SystemExit(
            "FAIL: structural sweep induced no repairs")
    for rec in report.repairs:
        for attempt in rec.attempts[:-1]:
            if attempt.digest_matched:
                raise SystemExit(
                    f"FAIL: repair s{rec.shard}r{rec.replica}: a "
                    f"digest-matched attempt was followed by more "
                    f"rebuilds — the controller kept rebuilding a "
                    f"verified replica")
        last = rec.attempts[-1]
        if rec.healed:
            if not last.digest_matched:
                raise SystemExit(
                    f"FAIL: repair s{rec.shard}r{rec.replica} was "
                    f"admitted on a digest-MISMATCHED rebuild")
            if rec.admitted_seconds != last.end_seconds:
                raise SystemExit(
                    f"FAIL: repair s{rec.shard}r{rec.replica} "
                    f"admitted at {rec.admitted_seconds!r}, not at "
                    f"its verified attempt's end "
                    f"{last.end_seconds!r}")
        else:
            if last.digest_matched:
                raise SystemExit(
                    f"FAIL: repair s{rec.shard}r{rec.replica} "
                    f"abandoned despite a digest-matched rebuild")
            if not math.isinf(rec.admitted_seconds):
                raise SystemExit(
                    f"FAIL: abandoned repair s{rec.shard}"
                    f"r{rec.replica} carries a finite admission time "
                    f"{rec.admitted_seconds!r}")
    n_quarantined = sum(rec.n_quarantined for rec in report.repairs)
    print(f"  structural sweep: {len(report.repairs)} repairs, "
          f"{n_quarantined} quarantined attempts, none admitted "
          f"unverified")


def main(argv) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    check_output_file(argv[1])
    print("soak-sim output: summary and digest present")
    n_quarantines = run_soak_battery()
    if n_quarantines == 0:
        print("FAIL: no seed exercised the quarantine path — raise "
              "corruption_probability or add seeds", file=sys.stderr)
        return 1
    check_quarantine_never_admitted()
    print("heal smoke OK (byte-identical reruns, zero wrong answers, "
          "every loss healed in bound, quarantine never admitted)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
