"""CI gate for the trace smoke: the emitted trace is the real thing.

Usage::

    python -m repro trace --seed 0 --requests 200 ... \
        --output trace.json --chrome-output trace_chrome.json
    python scripts/check_trace_smoke.py trace.json trace_chrome.json

Checks, in order:

1. The span trace parses (``SpanTracer.from_json_bytes``), which
   already rejects open spans, and passes the production
   well-formedness guard (``SpanTracer.validate``).
2. The structural skeleton is present: exactly one ``serve.replay``
   root, at least one ``request`` span and one ``batch`` span.
3. Fault-tolerance incidents were actually traced: at least one
   fault-tolerance span event (``fault`` / ``deadline_drop`` /
   ``breaker_open`` / ``degrade``) exists — and because events can only
   be stamped inside a recorded span's interval, every one of them is
   attached to a span by construction (validate re-checks the interval
   containment).
4. The Chrome export parses under the exporter's own validator
   (``parse_chrome_trace``): matched B/E pairs per thread,
   non-decreasing timestamps, instants inside open spans.

Exit code 0 when all hold, non-zero otherwise.
"""

from __future__ import annotations

import sys

FAULT_EVENT_NAMES = {"fault", "deadline_drop", "breaker_open",
                     "degrade"}


def main(argv) -> int:
    from repro.observability import SpanTracer, parse_chrome_trace

    if len(argv) != 2:
        raise SystemExit(
            "usage: check_trace_smoke.py <trace.json> <chrome.json>")
    trace_path, chrome_path = argv

    with open(trace_path, "rb") as handle:
        tracer = SpanTracer.from_json_bytes(handle.read())
    tracer.validate()
    print(f"{trace_path}: {len(tracer.spans)} spans, 0 open, "
          f"well-formed")

    roots = tracer.roots()
    if len(roots) != 1 or roots[0].name != "serve.replay":
        raise SystemExit(
            f"{trace_path}: expected one serve.replay root, got "
            f"{[r.name for r in roots]}")
    if not tracer.find("request") or not tracer.find("batch"):
        raise SystemExit(
            f"{trace_path}: missing request/batch spans — the replay "
            f"traced nothing")

    incidents = [
        (span.span_id, event.name)
        for span in tracer.spans for event in span.events
        if event.name in FAULT_EVENT_NAMES]
    if not incidents:
        raise SystemExit(
            f"{trace_path}: no fault-tolerance span events — the "
            f"chaos smoke exercised nothing")
    print(f"{trace_path}: {len(incidents)} fault-tolerance events, "
          f"all attached to spans")

    with open(chrome_path, "rb") as handle:
        events = parse_chrome_trace(handle.read())
    n_pairs = sum(1 for e in events if e["ph"] == "B")
    if n_pairs != len(tracer.spans):
        raise SystemExit(
            f"{chrome_path}: {n_pairs} B events for "
            f"{len(tracer.spans)} spans")
    print(f"{chrome_path}: {len(events)} events, Chrome-loadable")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
