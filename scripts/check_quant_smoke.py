#!/usr/bin/env python
"""CI gate for the quantized staged search (``docs/quantization.md``).

Two halves:

1. Gate the ``quant_smoke`` row of a ``bench_wallclock.py`` JSON
   document (produced with ``--quant-smoke``):

   - staged search >= 1.5x over the exact **fast** backend (the honest
     baseline — not the reference path),
   - recall@10 within 0.02 of the exact search on the same fixture,
   - byte-deterministic across two seeded runs.

2. Replay a small quantized serving trace in-process and reconcile the
   report against the live metric registry
   (:meth:`ServeReport.verify_against_metrics`, zero drift allowed):
   the quantized replay must publish ``quant.batches`` and the
   rerank-pool histogram; an exact replay of the same trace must
   publish **no** ``quant.*`` metrics — a quantized result must never
   masquerade as an exact one.

Exits non-zero with a diagnostic otherwise.

    PYTHONPATH=src python benchmarks/bench_wallclock.py \\
        --quant-smoke --output quant_smoke.json
    PYTHONPATH=src python scripts/check_quant_smoke.py quant_smoke.json
"""

from __future__ import annotations

import argparse
import json
import sys

EXPECTED_SCHEMA = "repro.bench_wallclock/v2"


def check_report(path, min_speedup, max_recall_delta):
    """Validate the benchmark document; returns an error string or None."""
    with open(path) as handle:
        doc = json.load(handle)
    if doc.get("schema") != EXPECTED_SCHEMA:
        return f"unexpected schema {doc.get('schema')!r} in {path}"
    workloads = {w["name"]: w for w in doc.get("workloads", [])}
    if "quant_smoke" not in workloads:
        return f"no 'quant_smoke' workload in {path}"
    row = workloads["quant_smoke"]
    if row["kind"] != "quant_search":
        return f"quant_smoke has kind {row['kind']!r}"
    if not row["deterministic"]:
        return "quantized search is not deterministic across runs"
    if row["speedup_vs_fast"] < min_speedup:
        return (f"quant speedup {row['speedup_vs_fast']:.2f}x over the "
                f"exact fast backend is below the {min_speedup:.2f}x "
                f"floor (fast {row['fast_seconds']:.2f}s, quant "
                f"{row['quant_seconds']:.2f}s)")
    if row["recall_delta"] > max_recall_delta:
        return (f"recall@10 delta {row['recall_delta']:+.4f} exceeds "
                f"{max_recall_delta:.2f} (exact {row['recall_exact']:.4f}"
                f", quant {row['recall_quant']:.4f})")
    if row["bytes_per_vector_quant"] >= row["bytes_per_vector_exact"]:
        return (f"quantized footprint "
                f"{row['bytes_per_vector_quant']:.0f} B/vec is not below "
                f"the exact {row['bytes_per_vector_exact']:.0f} B/vec")
    return None


def check_observability():
    """Replay quant + exact serving traces; returns error string or None."""
    import numpy as np

    from repro.baselines.nsw_cpu import build_nsw_cpu
    from repro.core.params import SearchParams
    from repro.datasets.synthetic import gaussian_mixture
    from repro.errors import ObservabilityError
    from repro.serve.engine import ServeEngine
    from repro.serve.scheduler import BatchPolicy
    from repro.serve.trace import synthetic_trace

    points = gaussian_mixture(600, 32, seed=0).astype(np.float32)
    pool = gaussian_mixture(200, 32, seed=1).astype(np.float32)
    graph = build_nsw_cpu(points, d_min=8, d_max=16).graph
    trace = synthetic_trace(pool, 120, mean_qps=50_000.0,
                            queries_per_request=4, seed=7)
    policy = BatchPolicy(max_batch=64, max_wait_seconds=0.002,
                         max_queue=4096)

    def replay(quant):
        engine = ServeEngine(
            graph, points,
            params=SearchParams(k=10, l_n=32, backend="fast",
                                quant=quant),
            policy=policy)
        return engine.replay(trace)

    quant_report = replay("pca")
    try:
        quant_report.verify_against_metrics()
    except ObservabilityError as exc:
        return f"quantized replay drifted from its registry: {exc}"
    if quant_report.quant != "pca":
        return (f"quantized replay reports quant="
                f"{quant_report.quant!r}, expected 'pca'")
    registry = quant_report.metrics
    published = registry.value("quant.batches", default=0.0)
    if published != quant_report.n_batches or published <= 0:
        return (f"quantized replay published quant.batches={published}, "
                f"expected {quant_report.n_batches}")

    exact_report = replay("off")
    try:
        exact_report.verify_against_metrics()
    except ObservabilityError as exc:
        return f"exact replay drifted from its registry: {exc}"
    if exact_report.quant is not None:
        return (f"exact replay reports quant={exact_report.quant!r}, "
                f"expected None")
    if "quant.batches" in exact_report.metrics:
        return "exact replay published quant.* metrics"
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="bench_wallclock.py --quant-smoke "
                        "JSON output")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="floor on quant speedup over the exact fast "
                        "backend (default 1.5)")
    parser.add_argument("--max-recall-delta", type=float, default=0.02,
                        help="ceiling on recall@10 lost to quantization "
                        "(default 0.02)")
    args = parser.parse_args(argv)

    problem = check_report(args.report, args.min_speedup,
                           args.max_recall_delta)
    if problem is None:
        problem = check_observability()
    if problem:
        print(f"quant smoke FAILED: {problem}", file=sys.stderr)
        return 1
    with open(args.report) as handle:
        doc = json.load(handle)
    row = {w["name"]: w for w in doc["workloads"]}["quant_smoke"]
    print(f"quant smoke ok: {row['speedup_vs_fast']:.2f}x over exact "
          f"fast, recall@10 delta {row['recall_delta']:+.4f}, "
          f"{row['bytes_per_vector_quant']:.0f} B/vec "
          f"({row['footprint_reduction']:.1f}x smaller), deterministic; "
          f"serve metrics reconciled")
    return 0


if __name__ == "__main__":
    sys.exit(main())
