#!/usr/bin/env python
"""CI gate over a ``bench_bakeoff.py`` JSON document.

Asserts the cross-family bake-off contract from
``docs/index_families.md``:

- the document covers at least the ``nsw``, ``hnsw`` and ``cagra``
  families,
- every family clears a recall@10 floor of 0.8 on the smoke dataset,
- ``nsw`` and ``cagra`` both clear the headline 0.9 recall floor,
- CAGRA's construction cycles land **below** NSW's at that recall,
- every cell reports the vector-footprint columns and each quantized
  representation (fp16/int8/pca) is strictly smaller per vector than
  the raw float32 points.

Exits non-zero with a diagnostic otherwise.

    python benchmarks/bench_bakeoff.py --quick --output bakeoff.json
    python scripts/check_bakeoff_smoke.py bakeoff.json
"""

from __future__ import annotations

import argparse
import json
import sys

EXPECTED_SCHEMA = "repro.bench_bakeoff/v2"
REQUIRED_FAMILIES = {"nsw", "hnsw", "cagra"}
REQUIRED_FOOTPRINTS = {"float64", "float32", "fp16", "int8", "pca"}


def check(path, min_recall, headline_recall):
    with open(path) as handle:
        doc = json.load(handle)
    if doc.get("schema") != EXPECTED_SCHEMA:
        return f"unexpected schema {doc.get('schema')!r} in {path}"
    cells = doc.get("cells", [])
    if not cells:
        return f"no bake-off cells in {path}"
    families = {cell["family"] for cell in cells}
    missing = REQUIRED_FAMILIES - families
    if missing:
        return f"missing families: {', '.join(sorted(missing))}"
    smoke = doc["datasets"][0]
    by_family = {c["family"]: c for c in cells if c["dataset"] == smoke}
    low = [f for f, c in sorted(by_family.items())
           if c["recall_at_10"] < min_recall]
    if low:
        return (f"families below the {min_recall:.2f} recall@10 floor on "
                f"{smoke}: {', '.join(low)}")
    for family in ("nsw", "cagra"):
        recall = by_family[family]["recall_at_10"]
        if recall < headline_recall:
            return (f"{family} recall@10 {recall:.3f} on {smoke} is below "
                    f"the {headline_recall:.2f} headline floor")
    nsw_cycles = by_family["nsw"]["construction_cycles"]
    cagra_cycles = by_family["cagra"]["construction_cycles"]
    if cagra_cycles >= nsw_cycles:
        return (f"cagra construction ({cagra_cycles:.0f} cycles) is not "
                f"below nsw ({nsw_cycles:.0f} cycles) on {smoke}")
    for cell in cells:
        vb = cell.get("vector_bytes", {})
        missing_cols = REQUIRED_FOOTPRINTS - set(vb)
        if missing_cols:
            return (f"{cell['family']}/{cell['dataset']} is missing "
                    f"footprint columns: "
                    f"{', '.join(sorted(missing_cols))}")
        fat = [mode for mode in ("fp16", "int8", "pca")
               if vb[mode] >= vb["float32"]]
        if fat:
            return (f"{cell['family']}/{cell['dataset']}: quantized "
                    f"representations not below float32 "
                    f"({', '.join(fat)})")
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="bench_bakeoff.py JSON output")
    parser.add_argument("--min-recall", type=float, default=0.8,
                        help="recall@10 floor for every family (default 0.8)")
    parser.add_argument("--headline-recall", type=float, default=0.9,
                        help="recall@10 floor for nsw/cagra (default 0.9)")
    args = parser.parse_args(argv)

    problem = check(args.report, args.min_recall, args.headline_recall)
    if problem:
        print(f"bakeoff smoke FAILED: {problem}", file=sys.stderr)
        return 1
    with open(args.report) as handle:
        doc = json.load(handle)
    smoke = doc["datasets"][0]
    for cell in doc["cells"]:
        if cell["dataset"] != smoke:
            continue
        print(f"bakeoff smoke ok: {cell['family']:<6} "
              f"recall@10 {cell['recall_at_10']:.3f}, "
              f"build {cell['construction_cycles']:.0f} cycles")
    return 0


if __name__ == "__main__":
    sys.exit(main())
