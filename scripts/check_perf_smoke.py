#!/usr/bin/env python
"""CI gate over a ``bench_wallclock.py`` JSON document.

Asserts that (a) every workload's backends agreed on neighbor ids and
(b) the smoke workload's fast-over-reference speedup clears the floor
(default 1.5x, per the perf-regression contract in
``docs/performance.md``).  Exits non-zero with a diagnostic otherwise.

    python benchmarks/bench_wallclock.py --quick --output wallclock.json
    python scripts/check_perf_smoke.py wallclock.json
"""

from __future__ import annotations

import argparse
import json
import sys

EXPECTED_SCHEMA = "repro.bench_wallclock/v1"


def check(path, min_speedup):
    with open(path) as handle:
        doc = json.load(handle)
    if doc.get("schema") != EXPECTED_SCHEMA:
        return f"unexpected schema {doc.get('schema')!r} in {path}"
    workloads = {w["name"]: w for w in doc.get("workloads", [])}
    if "smoke" not in workloads:
        return f"no 'smoke' workload in {path}"
    drifted = [name for name, w in workloads.items() if not w["ids_match"]]
    if drifted:
        return f"backends disagree on neighbor ids: {', '.join(drifted)}"
    smoke = workloads["smoke"]
    if smoke["speedup"] < min_speedup:
        return (f"smoke speedup {smoke['speedup']:.2f}x is below the "
                f"{min_speedup:.2f}x floor (reference "
                f"{smoke['reference_seconds']:.2f}s, fast "
                f"{smoke['fast_seconds']:.2f}s)")
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="bench_wallclock.py JSON output")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="smoke-workload speedup floor (default 1.5)")
    args = parser.parse_args(argv)

    problem = check(args.report, args.min_speedup)
    if problem:
        print(f"perf smoke FAILED: {problem}", file=sys.stderr)
        return 1
    with open(args.report) as handle:
        doc = json.load(handle)
    for w in doc["workloads"]:
        print(f"perf smoke ok: {w['name']} {w['speedup']:.2f}x "
              f"(ids match)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
