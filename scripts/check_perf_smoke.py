#!/usr/bin/env python
"""CI gate over a ``bench_wallclock.py`` JSON document.

Asserts that (a) every exact workload's backends agreed — neighbor ids
for searches, graph digests for constructions — and (b) the smoke
workload's fast-over-reference speedup clears the floor (default 1.5x,
per the perf-regression contract in ``docs/performance.md``).
Quantized workloads are lossy by design and have their own gate
(``scripts/check_quant_smoke.py``); here they only need their
``deterministic`` flag set.  Exits non-zero with a diagnostic
otherwise.

    python benchmarks/bench_wallclock.py --quick --output wallclock.json
    python scripts/check_perf_smoke.py wallclock.json
"""

from __future__ import annotations

import argparse
import json
import sys

EXPECTED_SCHEMA = "repro.bench_wallclock/v2"


def _agreement(workload):
    """The workload's exactness flag, or None when not applicable."""
    if workload["kind"] == "quant_search":
        return workload["deterministic"]
    if "ids_match" in workload:
        return workload["ids_match"]
    if "digest_match" in workload:
        return workload["digest_match"]
    return None


def check(path, min_speedup):
    with open(path) as handle:
        doc = json.load(handle)
    if doc.get("schema") != EXPECTED_SCHEMA:
        return f"unexpected schema {doc.get('schema')!r} in {path}"
    workloads = {w["name"]: w for w in doc.get("workloads", [])}
    if "smoke" not in workloads:
        return f"no 'smoke' workload in {path}"
    drifted = [name for name, w in workloads.items()
               if _agreement(w) is False]
    if drifted:
        return ("workloads failed their agreement check: "
                + ", ".join(drifted))
    smoke = workloads["smoke"]
    if smoke["speedup"] < min_speedup:
        return (f"smoke speedup {smoke['speedup']:.2f}x is below the "
                f"{min_speedup:.2f}x floor (reference "
                f"{smoke['reference_seconds']:.2f}s, fast "
                f"{smoke['fast_seconds']:.2f}s)")
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="bench_wallclock.py JSON output")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="smoke-workload speedup floor (default 1.5)")
    args = parser.parse_args(argv)

    problem = check(args.report, args.min_speedup)
    if problem:
        print(f"perf smoke FAILED: {problem}", file=sys.stderr)
        return 1
    with open(args.report) as handle:
        doc = json.load(handle)
    for w in doc["workloads"]:
        speedup = w.get("speedup")
        shown = "-" if speedup is None else f"{speedup:.2f}x"
        print(f"perf smoke ok: {w['name']} {shown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
