"""Assemble EXPERIMENTS.md from the benchmark result files.

Run the benchmark suite first::

    pytest benchmarks/ --benchmark-only

then::

    python scripts/collect_experiments.py

Each ``benchmarks/results/*.txt`` file holds one experiment's
paper-vs-measured table; this script stitches them into EXPERIMENTS.md
in the paper's order, with the standing commentary on what matches and
what is scale-limited.
"""

from __future__ import annotations

import os
import sys
from datetime import date

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "benchmarks",
                           "results")
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "EXPERIMENTS.md")

#: (section header, commentary, result-file prefixes) in paper order.
SECTIONS = [
    ("Figure 6 — throughput vs recall (GANNS vs SONG, k=10)",
     "Recall values are real computation; throughput is simulated. "
     "The calibration point is GANNS on the SIFT1M stand-in at recall "
     "≈0.795 (paper: 458.5k queries/s). The GANNS-over-SONG speedup at "
     "recall 0.8 reproduces the paper's ordering: largest on "
     "low-dimensional descriptor data, ~2x on the skewed text sets, "
     "smallest on 960-dim GIST (where our small-scale stand-in inflates "
     "GANNS's lazy-check recomputation, see notes below).",
     ["fig06_"]),
    ("Figure 7 — execution-time breakdown at recall ≈ 0.8",
     "SONG's structure share lands at the top of the paper's 50-90% "
     "band (our host-thread constants price dependent memory accesses "
     "at the high end); GANNS's share is far lower and shifts toward "
     "distance computation, as in the paper.",
     ["fig07_"]),
    ("Figure 8 — varying k (1..100) at recall 0.8",
     "The speedup stays within a small factor across k, matching 'the "
     "speedup remains relatively stable as k increases'.",
     ["fig08_"]),
    ("Figure 9 — varying dimensionality on GIST (960 → 60)",
     "The paper's crossover mechanism reproduces: as dimensionality "
     "falls, distance computation shrinks and SONG's serialized "
     "structure work dominates, so GANNS's advantage grows "
     "monotonically (paper: 1.5x → 6x).",
     ["fig09_"]),
    ("Figure 10 — varying threads per block (4 → 32) on SIFT1M",
     "Distance time scales with n_t for both algorithms; GANNS's "
     "structure time scales almost as well; SONG's structure time is "
     "flat — the host-thread serialization that motivates the paper.",
     ["fig10_"]),
    ("Figure 11 — NSW construction time across schemes",
     "GGraphCon_GANNS beats GGraphCon_SONG inside the paper's 2-3.3x "
     "band on regular datasets; GNaiveParallel is only slightly faster "
     "than GGraphCon_SONG; GSerial is catastrophically slower.",
     ["fig11_"]),
    ("Table II — NSW construction vs single-thread CPU",
     "All speedups are structural (shared cost model, shared "
     "calibration). Absolute speedups are scale-limited: stand-in "
     "searches are ~5x shallower than 1M-point searches, so the GPU's "
     "fixed per-iteration overheads amortize less (measured 5-14x vs "
     "the paper's 29-83x; the model extrapolates to the paper's band "
     "at full scale — raise REPRO_BENCH_SCALE to watch the gap close).",
     ["table2_"]),
    ("Figure 12 — graph quality (recall vs e) across constructions",
     "The paper's own ablation: GNaiveParallel's recall ceiling is "
     "visibly below GGraphCon's, and GGraphCon matches the sequential "
     "CPU construction.",
     ["fig12_"]),
    ("Figure 13 — construction time vs d_max (32 → 128)",
     "Near-linear growth (R² of a linear fit ≥ 0.9), matching 'the "
     "increase of running times ... are both almost linear'.",
     ["fig13_"]),
    ("Figure 14 — construction scaling with thread blocks",
     "Run on the scaled device (block sweep 4..64 ≙ the paper's 50..800 "
     "at the same device-fill ratios). Both the distance and structure "
     "components speed up together, below the theoretical 16x "
     "(measured ~6-8x vs the paper's 10-13x; the stand-in's smaller "
     "n/concurrency ratio leaves less local-phase work to parallelize).",
     ["fig14_"]),
    ("Table III — HNSW construction vs single-thread CPU",
     "Level-by-level GGraphCon with the ID shuffle. Same structure and "
     "same scale caveat as Table II.",
     ["table3_"]),
    ("Scalability (evaluation goal (4) of Section V)",
     "Dataset-size sweep on one distribution: recall at a fixed budget "
     "degrades gracefully, construction grows near-linearly in n.",
     ["scalability_"]),
    ("Ablations (design choices from DESIGN.md)",
     "Lazy check on/off (recall collapses without it), lazy update vs "
     "eager queues (per-iteration structure-cycle gap), GGraphCon group "
     "count (quality is partition-invariant), visited-marking "
     "strategies (hash vs bloom vs bitmap vs the fixed-2k deletion "
     "variant, Section III-A), diversity pruning composed with "
     "GGraphCon, and the PCIe-transfer remark.",
     ["ablation_", "transfer_"]),
]

HEADER = """# EXPERIMENTS — paper vs measured

Generated from `benchmarks/results/` by `scripts/collect_experiments.py`
(last run: {date}). Regenerate with:

```bash
pytest benchmarks/ --benchmark-only     # add REPRO_BENCH_FULL=1 for all 10 datasets
python scripts/collect_experiments.py
```

**Reading guide.** Recall, graph quality and all algorithm behaviour are
*real* computation on synthetic stand-ins of the paper's datasets
(Table I character preserved; ~10^4 points instead of 10^6-10^7).
Timing is *simulated*: cycle charges follow the paper's per-phase
complexity formulas; one calibration constant is fitted to the paper's
SIFT1M operating point and shared by every algorithm, so ratios are
model-driven. Where the stand-in scale limits a number, the commentary
says so explicitly.
"""


def main() -> int:
    if not os.path.isdir(RESULTS_DIR):
        print("no benchmarks/results directory; run the benchmarks first",
              file=sys.stderr)
        return 1
    available = sorted(os.listdir(RESULTS_DIR))
    used = set()
    parts = [HEADER.format(date=date.today().isoformat())]
    for title, commentary, prefixes in SECTIONS:
        files = [name for name in available
                 if any(name.startswith(p) for p in prefixes)]
        if not files:
            continue
        used.update(files)
        parts.append(f"\n## {title}\n\n{commentary}\n")
        for name in files:
            with open(os.path.join(RESULTS_DIR, name)) as handle:
                body = handle.read().rstrip()
            parts.append(f"\n```\n{body}\n```\n")
    leftovers = [name for name in available if name not in used]
    if leftovers:
        parts.append("\n## Other results\n")
        for name in leftovers:
            with open(os.path.join(RESULTS_DIR, name)) as handle:
                body = handle.read().rstrip()
            parts.append(f"\n```\n{body}\n```\n")
    with open(OUTPUT, "w") as handle:
        handle.write("".join(parts))
    print(f"wrote {OUTPUT} from {len(used) + len(leftovers)} result files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
