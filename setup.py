"""Setup shim for environments without the wheel package.

The project is fully described by pyproject.toml; this file only enables
legacy ``pip install -e .`` in offline environments.
"""

from setuptools import setup

setup()
