"""Index construction: every scheme, head to head.

For teams that rebuild their ANN index nightly, construction time is the
paper's second headline (Tables II/III: 40-50x over single-thread CPU).
This example builds the same dataset with every construction scheme in
the library and reports, for each: simulated build time, graph quality
(search recall at a fixed budget) and the structural story.

Schemes:

- GraphCon_NSW     — sequential CPU insertion (modeled single core)
- GSerial          — the same insertions on the GPU, one block at a time
- GNaiveParallel   — batch-parallel insertion that ignores in-batch links
- GGraphCon_SONG   — divide-and-conquer with SONG as the search kernel
- GGraphCon_GANNS  — divide-and-conquer with GANNS (the paper's winner)
- KNN (NN-Descent) — the Section IV-D KNN-graph extension

Run it with::

    python examples/index_construction_comparison.py
"""

from __future__ import annotations

from repro import (
    BuildParams,
    SearchParams,
    build_nsw_cpu,
    build_nsw_gpu,
    build_knn_graph_gpu,
    build_nsw_naive_parallel,
    build_nsw_serial_gpu,
    ganns_search,
    load_dataset,
    recall_at_k,
)
from repro.baselines.cpu_cost import DEFAULT_CPU
from repro.bench.workloads import construction_device


def main() -> None:
    dataset = load_dataset("sift1m", n_points=4000, n_queries=200)
    ground_truth = dataset.ground_truth(10)
    params = BuildParams(d_min=16, d_max=32, n_blocks=64)
    device = construction_device()
    search = SearchParams(k=10, l_n=64)

    rows = []

    cpu = build_nsw_cpu(dataset.points, params.d_min, params.d_max)
    cpu_seconds = DEFAULT_CPU.seconds(
        cpu.counters, dataset.metric.flops_per_distance(dataset.n_dims))
    rows.append(("GraphCon_NSW (CPU, 1 thread)", cpu_seconds, cpu.graph))

    serial = build_nsw_serial_gpu(dataset.points, params, device=device)
    rows.append(("GSerial", serial.seconds, serial.graph))

    naive = build_nsw_naive_parallel(dataset.points, params, device=device)
    rows.append(("GNaiveParallel", naive.seconds, naive.graph))

    song = build_nsw_gpu(dataset.points, params, search_kernel="song",
                         device=device)
    rows.append(("GGraphCon_SONG", song.seconds, song.graph))

    ganns = build_nsw_gpu(dataset.points, params, search_kernel="ganns",
                          device=device)
    rows.append(("GGraphCon_GANNS", ganns.seconds, ganns.graph))

    knn = build_knn_graph_gpu(dataset.points, k=16, params=params,
                              device=device)

    print(f"{'scheme':>32} {'build (s)':>10} {'vs CPU':>8} "
          f"{'recall@10':>10}")
    for name, seconds, graph in rows:
        report = ganns_search(graph, dataset.points, dataset.queries,
                              search)
        recall = recall_at_k(report.ids, ground_truth)
        speedup = cpu_seconds / seconds if seconds else float("inf")
        print(f"{name:>32} {seconds:>10.3f} {speedup:>7.1f}x "
              f"{recall:>10.3f}")

    # The KNN graph is a different animal: its edges are exact near
    # neighbors only, so on clustered data there are no long-range links
    # and greedy search from a fixed entry cannot cross clusters — which
    # is exactly why NSW adds them (Section II-B).  Judge it by edge
    # accuracy, not by beam-search recall.
    from repro.datasets import exact_knn
    true_knn = exact_knn(dataset.points, dataset.points, 17)[:, 1:]
    import numpy as np
    hits = sum(np.intersect1d(knn.graph.neighbors(v), true_knn[v]).size
               for v in range(dataset.n_points))
    knn_accuracy = hits / (dataset.n_points * 16)
    knn_speedup = cpu_seconds / knn.seconds
    print(f"{'KNN graph (batched NN-Descent)':>32} {knn.seconds:>10.3f} "
          f"{knn_speedup:>7.1f}x {'—':>10}   "
          f"(edge accuracy {knn_accuracy:.3f}; not beam-searchable "
          f"across clusters)")

    print("\ntakeaways (matching the paper):")
    print(" - GGraphCon_GANNS is the fastest high-quality build "
          f"({cpu_seconds / ganns.seconds:.0f}x over the CPU baseline; "
          "paper: 40-50x on most datasets)")
    print(" - GNaiveParallel is fast but its graph costs recall "
          "(Figure 12's quality collapse)")
    print(" - GSerial shows why naive GPU porting fails: "
          f"{serial.seconds / ganns.seconds:.0f}x slower than GGraphCon")


if __name__ == "__main__":
    main()
