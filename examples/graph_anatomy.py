"""Graph anatomy: why NSW navigates, why KNN graphs strand, what pruning buys.

A structural tour of the proximity graphs this library builds, using
the analysis toolkit (`repro.graphs.analysis`):

1. build an NSW graph (GGraphCon) and a pure KNN graph (NN-Descent)
   over the same points,
2. compare their long-link fractions and hop distances — the
   small-world property NSW has and KNN graphs lack (Section II-B's
   short-range/long-range link distinction),
3. apply diversity pruning and show the recall-per-budget effect,
4. print each construction phase as a bar chart.

Run it with::

    python examples/graph_anatomy.py
"""

from __future__ import annotations

from repro import BuildParams, SearchParams, ganns_search, load_dataset, \
    recall_at_k
from repro.bench.report import format_phase_bars
from repro.core.construction import build_nsw_gpu
from repro.core.knng import build_knn_graph_gpu
from repro.graphs.analysis import navigability_report
from repro.graphs.pruning import prune_diversify, pruning_stats


def describe(name, graph, entry=0):
    report = navigability_report(graph, entry)
    print(f"\n{name}:")
    print(f"  out-degree {report.degrees.out_mean:.1f} mean / "
          f"{report.degrees.out_max} max; in-degree skew "
          f"{report.degrees.in_degree_skew:.1f}")
    print(f"  long links (>4x median length): "
          f"{report.long_link_fraction:.1%}")
    print(f"  mean hops from entry: {report.mean_hops_from_entry:.1f}; "
          f"unreachable: {report.unreachable_fraction:.1%}")
    print(f"  neighborhood overlap: {report.neighborhood_overlap:.2f}")
    return report


def main() -> None:
    dataset = load_dataset("sift1m", n_points=4000, n_queries=300)
    ground_truth = dataset.ground_truth(10)
    params = BuildParams(d_min=16, d_max=32, n_blocks=64)

    nsw_report = build_nsw_gpu(dataset.points, params)
    nsw = nsw_report.graph
    knn = build_knn_graph_gpu(dataset.points, k=16, params=params).graph

    nsw_anatomy = describe("NSW (GGraphCon)", nsw)
    knn_anatomy = describe("KNN graph (NN-Descent)", knn)
    print(f"\nthe navigability gap: NSW carries "
          f"{nsw_anatomy.long_link_fraction:.1%} long links vs the KNN "
          f"graph's {knn_anatomy.long_link_fraction:.1%} — those are the "
          f"small-world shortcuts greedy search rides across clusters")

    # Pruning: drop redundant same-direction edges.  At a fixed explored
    # budget some recall is traded away; what you buy is cheaper
    # iterations (fewer distances per exploration) and a 3x smaller
    # graph — compare the trade at matched throughput, not matched e.
    pruned = prune_diversify(nsw, dataset.points, alpha=1.0, min_degree=8)
    stats = pruning_stats(nsw, pruned)
    print(f"\ndiversity pruning kept {stats['kept_fraction']:.1%} of "
          f"edges (mean degree {stats['mean_degree_before']:.1f} -> "
          f"{stats['mean_degree_after']:.1f})")
    for e in (8, 16, 32):
        search = SearchParams(k=10, l_n=64, e=e)
        raw = recall_at_k(ganns_search(nsw, dataset.points,
                                       dataset.queries, search).ids,
                          ground_truth)
        slim = recall_at_k(ganns_search(pruned, dataset.points,
                                        dataset.queries, search).ids,
                           ground_truth)
        print(f"  e={e:>3}: recall {raw:.3f} (raw) vs {slim:.3f} (pruned)")

    print("\nGGraphCon phase times:")
    print(format_phase_bars(nsw_report.phase_seconds, width=30))


if __name__ == "__main__":
    main()
