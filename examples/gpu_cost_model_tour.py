"""A tour of the simulated-GPU substrate.

The reproduction's substrate is a SIMT execution/cost model; this example
walks through the pieces the search kernels are made of, so you can see
what "running on the virtual GPU" means:

1. warp primitives (``shfl_down``, ``ballot``/``ffs``) computing a real
   distance reduction and a candidate-locating step,
2. the bitonic sorting network ordering a neighbor buffer,
3. a kernel launch turning per-block cycles into wall time via the
   occupancy model,
4. the PCIe transfer model behind the paper's "data transfer is
   negligible" remark,
5. the per-phase cost formulas from the paper's complexity table.

Run it with::

    python examples/gpu_cost_model_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.gpusim import (
    CycleTracker,
    DEFAULT_COSTS,
    KernelLaunch,
    QUADRO_P5000,
    TransferModel,
)
from repro.gpusim.sorting import bitonic_sort_network
from repro.gpusim.warp import first_set_lane, warp_reduce_sum


def main() -> None:
    device = QUADRO_P5000
    costs = DEFAULT_COSTS
    print(f"device: {device.name}: {device.num_sms} SMs x "
          f"{device.cores_per_sm} cores @ {device.clock_ghz} GHz")

    # 1a. A 32-lane warp computes one 128-dim squared distance: each lane
    # accumulates 4 dimensions, then shfl_down folds the partial sums.
    rng = np.random.default_rng(0)
    query, point = rng.normal(size=(2, 128))
    partials = np.array([((query - point) ** 2)[lane::32].sum()
                         for lane in range(32)])
    tracker = CycleTracker(1)
    total = warp_reduce_sum(partials, tracker=tracker, phase="reduce")
    print(f"\nwarp distance reduction: {total:.4f} "
          f"(numpy check {((query - point) ** 2).sum():.4f}), "
          f"{tracker.total_cycles():.0f} cycles")

    # 1b. Candidate locating: ballot over the explored flags, ffs picks
    # the first unexplored pool slot — GANNS phase (1).
    explored = np.ones(32, dtype=bool)
    explored[7] = explored[20] = False
    slot = first_set_lane(~explored)
    print(f"candidate locating: first unexplored slot = {slot}")

    # 2. Bitonic sort of a 32-entry neighbor buffer by (distance, id).
    dists = rng.normal(size=32) ** 2
    ids = rng.permutation(32).astype(np.float64)
    sorted_dists, sorted_ids = bitonic_sort_network(dists, ids)
    assert (np.diff(sorted_dists) >= 0).all()
    print(f"bitonic sort: 32 entries ordered, best id "
          f"{int(sorted_ids[0])} at distance {sorted_dists[0]:.4f}; "
          f"charged {costs.ganns_sort_cycles(32, 32):.0f} cycles")

    # 3. Kernel launch: 2000 one-warp blocks, 100k cycles each.
    kernel = KernelLaunch(device, n_threads=32)
    result = kernel.run(100_000.0, n_blocks=2000)
    print(f"\nlaunch: 2000 blocks, concurrency {result.concurrency}, "
          f"makespan {result.makespan_cycles:,.0f} cycles -> "
          f"{result.seconds * 1e3:.2f} ms "
          f"({kernel.queries_per_second(result):,.0f} queries/s)")

    # 4. The Section III-B remark, quantified.
    transfer = TransferModel(device)
    round_trip = transfer.round_trip_seconds(2000, 128, 100)
    print(f"PCIe round trip for that batch (k=100): "
          f"{round_trip * 1e3:.3f} ms — "
          f"{round_trip / result.seconds:.1%} of the kernel time, and "
          f"fully hidden by stream overlap")

    # 5. The per-iteration cost table (Section III-C).
    print("\nper-iteration cycles at l_n=64, l_t=32, n_d=128:")
    for n_t in (4, 8, 16, 32):
        structure = costs.ganns_structure_cycles(64, 32, n_t)
        distance = costs.bulk_distance_cycles(32, 128, n_t)
        song_structure = (costs.song_locate_cycles(32, 64)
                          + costs.song_update_cycles(16, 64))
        print(f"  n_t={n_t:>2}: GANNS structure {structure:>7.0f}  "
              f"distance {distance:>7.0f}  |  SONG structure "
              f"{song_structure:>7.0f} (host thread, does not scale)")


if __name__ == "__main__":
    main()
