"""Quickstart: build an index, search it, measure recall and throughput.

This is the 60-second tour of the library:

1. generate a SIFT-like synthetic dataset (a stand-in for the paper's
   SIFT1M),
2. build an NSW proximity graph with GGraphCon — the paper's
   divide-and-conquer GPU construction,
3. answer a batch of queries with GANNS — the paper's lazy-update /
   lazy-check GPU search,
4. compare against exact brute-force ground truth,
5. read the simulated-GPU timing that the benchmark suite is built on.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import GannsIndex, BuildParams, load_dataset, recall_at_k


def main() -> None:
    # 1. A scaled-down stand-in for SIFT1M: 128-dim clustered descriptors.
    dataset = load_dataset("sift1m", n_points=5000, n_queries=200)
    print(f"dataset: {dataset.name}, {dataset.n_points} points x "
          f"{dataset.n_dims} dims, metric={dataset.metric_name}")

    # 2. Build the NSW graph with GGraphCon (d_max=32, d_min=16 — the
    #    paper's evaluation defaults).
    index = GannsIndex.build(
        dataset.points,
        graph_type="nsw",
        strategy="ggraphcon",
        params=BuildParams(d_min=16, d_max=32, n_blocks=64),
    )
    build = index.build_report
    print(f"built {build.algorithm}: simulated {build.seconds * 1e3:.1f} ms "
          f"on the virtual GPU "
          f"({build.details['n_groups']:.0f} local graphs)")

    # 3. Search with GANNS.  l_n is the pool length; e trades accuracy for
    #    speed ("we only consider the first e vertices in N").
    ids, dists = index.search(dataset.queries, k=10, l_n=64)
    print(f"searched {len(ids)} queries; first query's neighbors: "
          f"{ids[0].tolist()}")

    # 4. Recall against exact brute force.
    ground_truth = dataset.ground_truth(10)
    print(f"recall@10: {recall_at_k(ids, ground_truth):.3f}")

    # 5. The full report carries the simulated timing and its breakdown.
    report = index.search_report(dataset.queries, k=10, l_n=64)
    print(f"simulated throughput: "
          f"{report.queries_per_second():,.0f} queries/s")
    print(f"time breakdown: "
          f"{ {k: round(v, 3) for k, v in report.breakdown().items()} }")

    # Bonus: the same index answers through SONG (the baseline) and the
    # CPU beam search, for comparison.
    for algorithm in ("song", "beam"):
        recall = index.evaluate_recall(dataset.queries, ground_truth,
                                       k=10, algorithm=algorithm, l_n=64)
        print(f"{algorithm} recall@10: {recall:.3f}")


if __name__ == "__main__":
    main()
