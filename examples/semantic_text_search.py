"""Semantic text search under cosine similarity, on a skewed corpus.

The paper's two "hard" text datasets (NYTimes, GloVe200) are heavily
skewed: a few dense topic clusters hold most documents.  This example
runs the cosine-metric path end to end on the NYTimes stand-in:

1. builds an HNSW index (the hierarchical extension of Section IV-D,
   with the ID-shuffle layer addressing),
2. demonstrates that searches route through the hierarchy to the right
   topic cluster,
3. compares the HNSW entry-descent against searching the flat bottom
   layer from a fixed entry — the hierarchy's value on skewed data,
4. shows the recall ceiling effect the paper reports for hard datasets.

Run it with::

    python examples/semantic_text_search.py
"""

from __future__ import annotations

import numpy as np

from repro import BuildParams, GannsIndex, load_dataset, recall_at_k


def main() -> None:
    dataset = load_dataset("nytimes", n_points=4000, n_queries=300)
    ground_truth = dataset.ground_truth(10)
    print(f"corpus: {dataset.n_points} document embeddings x "
          f"{dataset.n_dims} dims, cosine distance (skewed clusters)")

    params = BuildParams(d_min=16, d_max=32, n_blocks=64)
    hnsw = GannsIndex.build(dataset.points, graph_type="hnsw",
                            metric="cosine", params=params)
    sizes = hnsw.graph.layer_sizes
    print(f"HNSW: {len(sizes)} layers, sizes {sizes}")

    # Self-search sanity: each document's nearest neighbor is itself.
    ids, dists = hnsw.search(dataset.points[:5], k=3, l_n=64)
    assert np.array_equal(ids[:, 0], np.arange(5))
    print("self-search: every document retrieves itself first "
          f"(distances {np.round(dists[:, 0], 6).tolist()})")

    # The hard-dataset effect: recall climbs slowly with the budget and
    # plateaus below the easy datasets' ceiling (paper, Figure 6).
    print(f"\n{'e':>6} {'recall@10':>10} {'queries/s':>12}")
    for e in (16, 32, 64, 128):
        report = hnsw.search_report(dataset.queries, k=10, l_n=128, e=e)
        recall = recall_at_k(report.ids, ground_truth)
        print(f"{e:>6} {recall:>10.3f} "
              f"{report.queries_per_second():>12,.0f}")

    # Compare against a flat NSW searched from a fixed entry: the
    # hierarchy buys its keep by routing past the skew.
    flat = GannsIndex.build(dataset.points, graph_type="nsw",
                            metric="cosine", params=params)
    hnsw_recall = hnsw.evaluate_recall(dataset.queries, ground_truth,
                                       k=10, l_n=128, e=64)
    flat_recall = flat.evaluate_recall(dataset.queries, ground_truth,
                                       k=10, l_n=128, e=64)
    print(f"\nrecall at e=64: HNSW {hnsw_recall:.3f} vs flat NSW "
          f"{flat_recall:.3f} (hierarchical entry descent helps on "
          f"skewed data)")


if __name__ == "__main__":
    main()
