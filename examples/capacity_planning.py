"""Capacity planning: SLO tuning, streamed serving, terminal plots.

Putting the production-facing pieces together: a service owner has a
recall SLO and a query stream, and wants to know (a) the cheapest
search setting that meets the SLO, (b) the sustained throughput when
queries arrive in batches with PCIe transfers overlapped (the paper's
stream remark), and (c) the full trade-off curve at a glance.

Run it with::

    python examples/capacity_planning.py
"""

from __future__ import annotations

from repro import BuildParams, SearchParams, load_dataset, tune_search
from repro.bench.plotting import curve_plot
from repro.bench.runner import sweep_ganns, sweep_song
from repro.core.construction import build_nsw_gpu
from repro.core.pipeline import stream_batches

RECALL_SLO = 0.85


def main() -> None:
    dataset = load_dataset("sift1m", n_points=6000, n_queries=400)
    graph = build_nsw_gpu(dataset.points,
                          BuildParams(d_min=16, d_max=32, n_blocks=64)
                          ).graph

    # (a) SLO tuning: binary search over the budget grid.
    result = tune_search(graph, dataset.points, dataset.queries[:200],
                         target_recall=RECALL_SLO, k=10)
    print(f"SLO recall >= {RECALL_SLO}: "
          f"{'met' if result.target_met else 'NOT met'} with "
          f"l_n={result.setting[0]}, e={result.setting[1]} "
          f"(validation recall {result.recall:.3f}, "
          f"{result.qps:,.0f} q/s) after "
          f"{len(result.evaluations)} evaluations")

    # (b) Streamed serving at the chosen setting.
    l_n, e = result.setting
    streamed = stream_batches(graph, dataset.points, dataset.queries,
                              SearchParams(k=10, l_n=l_n, e=e),
                              batch_size=100)
    print(f"\nstreamed {len(dataset.queries)} queries in "
          f"{len(streamed.batches)} batches:")
    print(f"  serial (no overlap):  {streamed.serial_seconds * 1e3:.3f} ms")
    print(f"  double-buffered:      "
          f"{streamed.overlapped_seconds * 1e3:.3f} ms "
          f"({streamed.overlap_saving:.1%} saved — the paper's remark: "
          f"transfer hides behind compute)")
    sustained = len(dataset.queries) / streamed.overlapped_seconds
    print(f"  sustained throughput: {sustained:,.0f} queries/s")

    # (c) The whole trade-off, plotted in the terminal.
    ganns_curve = sweep_ganns(graph, dataset, 10,
                              [(32, 16), (64, 32), (64, 64), (128, 96),
                               (128, 128), (256, 192)])
    song_curve = sweep_song(graph, dataset, 10,
                            [16, 32, 64, 96, 128, 192])
    print()
    print(curve_plot({"ganns": ganns_curve, "song": song_curve},
                     width=56, height=14))


if __name__ == "__main__":
    main()
