"""Image-descriptor retrieval: GANNS vs SONG on a SIFT-style workload.

The scenario the paper's introduction motivates: a content-based image
retrieval service holds millions of local descriptors and must answer
"which database images look like this one?" within a tight latency
budget.  This example:

1. builds the index once (GGraphCon),
2. sweeps the accuracy knob of both GANNS and SONG,
3. prints the throughput-vs-recall trade-off table — a miniature of the
   paper's Figure 6 — and the point where each algorithm clears a recall
   SLO of 0.9,
4. shows the time breakdown that explains the gap (Figure 7's story:
   SONG burns 50-90% of its time maintaining queues on one thread).

Run it with::

    python examples/image_retrieval.py
"""

from __future__ import annotations

from repro import (
    BuildParams,
    SearchParams,
    SongParams,
    ganns_search,
    load_dataset,
    recall_at_k,
    song_search,
)
from repro.core.construction import build_nsw_gpu

RECALL_SLO = 0.9


def main() -> None:
    dataset = load_dataset("sift1m", n_points=6000, n_queries=300)
    ground_truth = dataset.ground_truth(10)
    print(f"workload: {dataset.n_points} SIFT-like descriptors, "
          f"{dataset.n_queries} queries, k=10, recall SLO {RECALL_SLO}")

    graph = build_nsw_gpu(dataset.points,
                          BuildParams(d_min=16, d_max=32, n_blocks=64)).graph

    print(f"\n{'algo':>6} {'setting':>16} {'recall':>8} {'queries/s':>12}")
    slo_qps = {}
    for l_n, e in ((32, 16), (64, 32), (64, 64), (128, 96), (128, 128),
                   (256, 192)):
        report = ganns_search(graph, dataset.points, dataset.queries,
                              SearchParams(k=10, l_n=l_n, e=e))
        recall = recall_at_k(report.ids, ground_truth)
        qps = report.queries_per_second()
        print(f"{'ganns':>6} {f'l_n={l_n} e={e}':>16} {recall:>8.3f} "
              f"{qps:>12,.0f}")
        if recall >= RECALL_SLO and "ganns" not in slo_qps:
            slo_qps["ganns"] = (qps, recall)

    song_report = None
    for pq in (16, 32, 64, 96, 128, 192):
        report = song_search(graph, dataset.points, dataset.queries,
                             SongParams(k=10, pq_bound=pq))
        recall = recall_at_k(report.ids, ground_truth)
        qps = report.queries_per_second()
        print(f"{'song':>6} {f'pq={pq}':>16} {recall:>8.3f} {qps:>12,.0f}")
        if recall >= RECALL_SLO and "song" not in slo_qps:
            slo_qps["song"] = (qps, recall)
            song_report = report

    if "ganns" in slo_qps and "song" in slo_qps:
        g_qps, _ = slo_qps["ganns"]
        s_qps, _ = slo_qps["song"]
        print(f"\nat the {RECALL_SLO} recall SLO: GANNS serves "
              f"{g_qps:,.0f} q/s, SONG {s_qps:,.0f} q/s -> "
              f"{g_qps / s_qps:.1f}x more capacity per GPU")

    if song_report is not None:
        share = song_report.structure_fraction()
        print(f"why: SONG spends {share:.0%} of its time on host-thread "
              f"data-structure maintenance (paper: 50-90%); GANNS "
              f"parallelizes those phases across the block")


if __name__ == "__main__":
    main()
