"""Recommendation retrieval: maximum inner-product search (extension).

Recommendation and advertising — applications the paper's introduction
cites for GPU ANN — rank items by the *inner product* of user and item
latent factors.  Inner product is not a metric, but proximity-graph
search only needs a comparable score; the :mod:`repro.extensions.mips`
extension registers ``metric="ip"`` across the whole stack.

This example builds an item index from matrix-factorization-style
embeddings, serves top-k recommendations for a batch of users with
GANNS, and verifies against exact MIPS.  It also demonstrates the
multicore GGraphCon extension (Section IV-B's portability remark)
building the same index on CPU cores.

Run it with::

    python examples/recommendation_mips.py
"""

from __future__ import annotations

import numpy as np

from repro import BuildParams, SearchParams, ganns_search, recall_at_k
from repro.baselines.nsw_cpu import build_nsw_cpu
from repro.datasets.ground_truth import exact_knn
from repro.extensions import build_nsw_multicore, register_ip_metric


def make_embeddings(n_items: int, n_users: int, latent_dim: int,
                    ambient_dim: int, seed: int = 0):
    """Latent-factor embeddings: low-rank structure + popularity skew."""
    rng = np.random.default_rng(seed)
    basis = rng.normal(size=(latent_dim, ambient_dim))
    items = rng.normal(size=(n_items, latent_dim)) @ basis
    # Popular items have larger norms (the MIPS hub effect).
    popularity = rng.pareto(2.5, size=n_items) + 1.0
    items *= popularity[:, None] / popularity.mean()
    users = rng.normal(size=(n_users, latent_dim)) @ basis
    return items.astype(np.float32), users.astype(np.float32)


def main() -> None:
    register_ip_metric()
    items, users = make_embeddings(n_items=5000, n_users=300,
                                   latent_dim=12, ambient_dim=48)
    print(f"catalog: {len(items)} items x {items.shape[1]} dims; "
          f"{len(users)} user queries; objective: top-10 inner product")

    # Exact MIPS ground truth (brute force).
    ground_truth = exact_knn(items, users, 10, metric="ip")

    # Build the item graph under the IP "distance".
    params = BuildParams(d_min=16, d_max=32, n_blocks=64)
    graph = build_nsw_cpu(items, params.d_min, params.d_max,
                          metric="ip").graph

    print(f"\n{'l_n/e':>12} {'recall@10':>10} {'queries/s':>12}")
    for l_n, e in ((64, 32), (64, 64), (128, 128), (256, 256)):
        report = ganns_search(graph, items, users,
                              SearchParams(k=10, l_n=l_n, e=e))
        recall = recall_at_k(report.ids, ground_truth)
        print(f"{f'{l_n}/{e}':>12} {recall:>10.3f} "
              f"{report.queries_per_second():>12,.0f}")

    # Same construction on a 26-core CPU (the paper's Section IV-B
    # remark: GGraphCon is substrate-independent).
    multicore = build_nsw_multicore(items, params, n_cores=26, metric="ip")
    report = ganns_search(multicore.graph, items, users,
                          SearchParams(k=10, l_n=128))
    print(f"\nmulticore GGraphCon (26 cores): built in "
          f"{multicore.seconds:.2f} modeled seconds, recall@10 = "
          f"{recall_at_k(report.ids, ground_truth):.3f}")

    # Show one user's recommendations with their scores.
    ids, dists = report.ids[0], -report.dists[0]
    print(f"user 0 top-5 items: {ids[:5].tolist()} "
          f"(inner products {np.round(dists[:5], 3).tolist()})")


if __name__ == "__main__":
    main()
