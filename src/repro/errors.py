"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch one base class.  Each subclass names the subsystem that
raised it; message text carries the specifics.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An invalid parameter or device configuration was supplied.

    Raised eagerly, at construction time, so that a bad run fails before any
    expensive work is performed.
    """


class UnknownFamilyError(ConfigurationError):
    """A graph_type / index-family name is not in the backend registry.

    Raised by :func:`repro.core.backend.get_backend` (and therefore by
    every entry point that selects an index family by name: the
    :class:`~repro.core.index.GannsIndex` constructors, the serving and
    cluster engines, and the ``repro build`` CLI).  Subclasses
    :class:`ConfigurationError` so existing ``except ConfigurationError``
    call sites keep working.
    """


class UnsupportedOperationError(ReproError):
    """A registered index family does not support the requested operation.

    Examples: asking the mutable index to stream inserts into a family
    whose builder is batch-only (CAGRA), or sharding a cluster over a
    family with no flat serving graph.  Raised eagerly at configuration
    time, never mid-mutation.
    """


class DeviceError(ReproError):
    """A simulated-device constraint was violated.

    Examples: a kernel requests more shared memory per block than the device
    spec provides, or a warp primitive is invoked with a lane count that does
    not match the warp width.
    """


class GraphError(ReproError):
    """A proximity graph is structurally invalid for the requested operation.

    Examples: adjacency rows that are not distance-ordered, vertex ids out of
    range, or a graph whose degree bound does not match the search
    parameters.
    """


class ValidationError(GraphError):
    """Tombstone-aware validation failed: a dead vertex is still wired in.

    Raised by :func:`repro.graphs.validation.validate_graph` when a
    tombstone mask is supplied and either a live adjacency row still
    references a tombstoned vertex (the dead node is *reachable*) or a
    tombstoned vertex still carries edges after compaction claimed to
    have detached it.
    """


class MutableIndexError(ReproError):
    """The mutable index was misused or reached an unrecoverable state.

    Examples: deleting an id that is already tombstoned or out of range,
    inserting points whose dimensionality does not match the index, or
    deleting the last live point (an index must always keep a search
    entry).
    """


class DatasetError(ReproError):
    """A dataset could not be generated, loaded, or validated."""


class SearchError(ReproError):
    """A search invocation was inconsistent with the index it targets."""


class ConstructionError(ReproError):
    """A graph-construction invocation failed or was misconfigured."""


class ServeError(ReproError):
    """The query-serving engine was misused or misconfigured.

    Examples: a replay trace whose arrival times are not sorted, or a
    request whose query dimensionality does not match the served index.
    """


class OverloadError(ServeError):
    """A request was rejected by admission control.

    The serving engine bounds its queue; when the backlog (waiting plus
    in-flight requests) reaches the bound, new requests are rejected
    explicitly instead of growing latency without limit.
    """


class ClusterError(ServeError):
    """The sharded serving cluster was misused or misconfigured.

    Examples: a shard placement that leaves a shard empty or smaller
    than ``k``, a replica topology with no replicas, or a scatter-gather
    merge over mismatched per-shard result shapes.
    """


class DeadlineExceededError(ServeError):
    """A request's deadline cannot be met and it was failed fast.

    Raised (and recorded as an outcome detail) by the cluster
    coordinator when a request arrives within one scatter round-trip of
    its deadline: fanning it out to every shard would burn cluster-wide
    work on an answer that is already guaranteed to be late, so the
    coordinator rejects it *before* scatter instead.
    """


class HealError(ClusterError):
    """The self-healing layer was misused or misconfigured.

    Examples: a repair policy with a non-positive bandwidth fraction,
    a repair source whose digest cannot be computed, or a controller
    driven with revival times that precede the death they repair.
    """


class ObservabilityError(ReproError):
    """The observability layer was misused, or a trace is malformed.

    Examples: closing a span that is not open, a span tree whose child
    interval escapes its parent, a Chrome trace export whose B/E pairs
    do not match, or an attribute value that cannot be serialized
    deterministically.
    """


class FaultError(ReproError):
    """An injected (simulated) hardware or infrastructure fault fired.

    Raised by the fault-injection layer (:mod:`repro.faults`) inside the
    dispatch path.  Carries the simulated time the failed attempt
    consumed on each device engine before dying, so the serving engine
    can charge the wasted work to its clock.

    Attributes:
        kind: Fault taxonomy name (one of the ``FAULT_*`` constants in
            :mod:`repro.faults.plan`).
        upload_seconds: Upload-engine time consumed by the failed attempt.
        compute_seconds: Compute-engine time consumed by the failed attempt.
    """

    def __init__(self, message: str, kind: str = "fault",
                 upload_seconds: float = 0.0,
                 compute_seconds: float = 0.0):
        super().__init__(message)
        self.kind = kind
        self.upload_seconds = float(upload_seconds)
        self.compute_seconds = float(compute_seconds)


class KernelTimeoutError(FaultError):
    """The simulated driver killed a kernel that exceeded its watchdog.

    The attempt consumed the full watchdog interval on the compute
    engine before being killed; no results were produced.
    """


class MemoryFaultError(FaultError):
    """An uncorrectable (simulated) ECC error hit a distance buffer.

    The kernel ran to completion, so its whole compute time is wasted,
    but the corruption is *detected* — the result buffer is discarded
    and never served, preserving the no-silent-wrong-answers guarantee.
    """


class DeviceMemoryError(FaultError):
    """Device memory exhaustion: a batch's buffers could not be allocated.

    Fails before any compute; only the attempted upload is charged.
    """


class ProcessCrashError(FaultError):
    """The (simulated) index process died at a named lifecycle phase.

    Delivered by :class:`repro.faults.injector.CrashInjector` when a
    ``crash`` fault arms during a mutation phase (compaction,
    checkpointing).  Everything in volatile memory is lost; only the
    durable store (checkpoint + write-ahead log) survives, and recovery
    must rebuild the index from it.

    Attributes:
        phase: The lifecycle phase name the process died in (e.g.
            ``"compaction.repair"``).
    """

    def __init__(self, message: str, phase: str = "",
                 kind: str = "crash"):
        super().__init__(message, kind=kind)
        self.phase = phase
