"""Visited-vertex marking strategies (the Section III-A design space).

Before settling on *lazy check*, the paper weighs the ways a GPU search
can remember which vertices it has seen:

- an **open-addressing hash table** — what SONG ships; compact, but its
  probes serialise on the host thread;
- a **bloom filter** — SONG's alternative for low memory; false
  positives silently *drop* candidates;
- a **bitmap** — trivially parallel, "but this is not efficient on the
  GPU because of the high latency of the random memory accesses involved
  in the warp threads and the limited on-chip memory": one bit per
  vertex cannot fit in shared memory for million-point datasets.

This module implements all three behind one interface with per-operation
cycle charges, so SONG can be run under any of them and the ablation
benchmark can reproduce the paper's argument quantitatively.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim.costs import CostTable, DEFAULT_COSTS


class VisitedSet(abc.ABC):
    """Interface: mark vertices as visited and query membership.

    Implementations accumulate the simulated cycle cost of their own
    operations in :attr:`cycles`; membership answers are exact or
    one-sided approximate depending on the structure.
    """

    def __init__(self, costs: CostTable = DEFAULT_COSTS):
        self.costs = costs
        #: Accumulated simulated cycles of all probe/insert operations.
        self.cycles = 0.0

    @abc.abstractmethod
    def add(self, vertex: int) -> None:
        """Mark ``vertex`` visited."""

    @abc.abstractmethod
    def __contains__(self, vertex: int) -> bool:
        """Whether ``vertex`` is (believed to be) visited."""

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """On-chip memory footprint of the structure."""


class OpenAddressingHash(VisitedSet):
    """SONG's fixed-size open-addressing hash with linear probing.

    The table's size is fixed up front (SONG uses ``2k`` slots for the
    points in ``N ∪ C``); when it overflows, the oldest semantics don't
    matter for search correctness — SONG sizes it to never overflow, and
    so do we (raising if violated keeps the model honest).
    """

    _EMPTY = -1

    def __init__(self, capacity: int, costs: CostTable = DEFAULT_COSTS):
        super().__init__(costs)
        if capacity <= 0:
            raise ConfigurationError(
                f"hash capacity must be positive, got {capacity}"
            )
        # Size to the next power of two at twice the capacity so linear
        # probing stays short.
        size = 1
        while size < 2 * capacity:
            size *= 2
        self._slots = np.full(size, self._EMPTY, dtype=np.int64)
        self._mask = size - 1
        self._count = 0

    def _probe(self, vertex: int) -> int:
        """Return the slot holding ``vertex`` or the first empty slot."""
        index = (vertex * 0x9E3779B1) & self._mask
        probes = 1
        while (self._slots[index] != self._EMPTY
               and self._slots[index] != vertex):
            index = (index + 1) & self._mask
            probes += 1
        self.cycles += probes * self.costs.hash_probe_cycles
        return index

    def add(self, vertex: int) -> None:
        index = self._probe(vertex)
        if self._slots[index] == self._EMPTY:
            if self._count >= len(self._slots) - 1:
                raise ConfigurationError(
                    "open-addressing hash overflow: size the table to "
                    "the search budget"
                )
            self._slots[index] = vertex
            self._count += 1

    def __contains__(self, vertex: int) -> bool:
        return self._slots[self._probe(vertex)] == vertex

    def memory_bytes(self) -> int:
        return self._slots.nbytes


class BloomFilter(VisitedSet):
    """A counting-free bloom filter over vertex ids.

    One-sided error: a membership answer of True may be wrong (false
    positive), which makes the *search* silently skip a genuinely new
    candidate — the accuracy hazard the paper notes.
    """

    def __init__(self, n_bits: int, n_hashes: int = 3,
                 costs: CostTable = DEFAULT_COSTS):
        super().__init__(costs)
        if n_bits <= 0:
            raise ConfigurationError(
                f"bloom filter size must be positive, got {n_bits}"
            )
        if n_hashes <= 0:
            raise ConfigurationError(
                f"bloom filter needs at least one hash, got {n_hashes}"
            )
        self._bits = np.zeros(n_bits, dtype=bool)
        self._n_hashes = n_hashes

    def _positions(self, vertex: int) -> np.ndarray:
        positions = np.empty(self._n_hashes, dtype=np.int64)
        h = np.int64(vertex)
        for i in range(self._n_hashes):
            h = np.int64((int(h) * 0x9E3779B1 + i * 0x85EBCA77)
                         & 0x7FFFFFFF)
            positions[i] = int(h) % len(self._bits)
        return positions

    def add(self, vertex: int) -> None:
        self._bits[self._positions(vertex)] = True
        self.cycles += self._n_hashes * self.costs.hash_probe_cycles

    def __contains__(self, vertex: int) -> bool:
        self.cycles += self._n_hashes * self.costs.hash_probe_cycles
        return bool(self._bits[self._positions(vertex)].all())

    def memory_bytes(self) -> int:
        # One bit per entry; the numpy bool array is the simulation's
        # stand-in for the packed words.
        return (len(self._bits) + 7) // 8

    def false_positive_rate(self, n_inserted: int) -> float:
        """Expected false-positive rate after ``n_inserted`` adds."""
        m = len(self._bits)
        k = self._n_hashes
        return (1.0 - np.exp(-k * n_inserted / m)) ** k


class Bitmap(VisitedSet):
    """One bit per vertex in (simulated) off-chip memory.

    Parallel and exact, but each touch is a random global-memory access
    (charged at full latency) and the footprint is ``n/8`` bytes — the
    two reasons Section III-A rejects it.
    """

    #: Cycles of one random global-memory access (uncoalesced).
    RANDOM_ACCESS_CYCLES = 380.0

    def __init__(self, n_vertices: int, costs: CostTable = DEFAULT_COSTS):
        super().__init__(costs)
        if n_vertices <= 0:
            raise ConfigurationError(
                f"bitmap needs a positive vertex count, got {n_vertices}"
            )
        self._bits = np.zeros(n_vertices, dtype=bool)

    def add(self, vertex: int) -> None:
        self._bits[vertex] = True
        self.cycles += self.RANDOM_ACCESS_CYCLES

    def __contains__(self, vertex: int) -> bool:
        self.cycles += self.RANDOM_ACCESS_CYCLES
        return bool(self._bits[vertex])

    def memory_bytes(self) -> int:
        return (len(self._bits) + 7) // 8


def make_visited_set(strategy: str, n_vertices: int, budget: int,
                     costs: CostTable = DEFAULT_COSTS,
                     bloom_bits: Optional[int] = None) -> VisitedSet:
    """Factory over the three Section III-A strategies.

    Args:
        strategy: ``"hash"``, ``"bloom"`` or ``"bitmap"``.
        n_vertices: Total vertices in the graph (bitmap sizing).
        budget: Expected number of visited vertices (hash/bloom sizing).
        costs: Cycle cost table.
        bloom_bits: Bloom filter size; defaults to ``8 * budget`` bits.
    """
    if strategy == "hash":
        return OpenAddressingHash(capacity=max(budget, 1), costs=costs)
    if strategy == "bloom":
        return BloomFilter(n_bits=bloom_bits or max(8 * budget, 64),
                           costs=costs)
    if strategy == "bitmap":
        return Bitmap(n_vertices=n_vertices, costs=costs)
    raise ConfigurationError(
        f"unknown visited strategy {strategy!r}; valid: hash, bloom, "
        f"bitmap"
    )
