"""GraphCon_NSW: single-thread sequential NSW construction.

The classical NSW build (Section II-B): points are inserted one at a time;
each new point searches its ``d_min`` nearest neighbors in the *current*
graph and links to them bidirectionally, with every adjacency row bounded
at ``d_max`` (worst entry evicted when full).

Two search modes are provided:

- ``exact=False`` (default): neighbors come from Algorithm 1 beam search on
  the partial graph — what the real CPU baseline does.
- ``exact=True``: neighbors come from brute force over the already-inserted
  prefix.  This mode exists to exercise the paper's Section IV-C theorem —
  "given exact nearest neighbors, Algorithm 2 can generate the NSW graph
  which is the same as that constructed by sequential insertions" — the
  test suite builds both constructions in exact mode and asserts edge-set
  equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.beam import beam_search
from repro.baselines.cpu_cost import CpuOpCounters
from repro.errors import ConstructionError
from repro.graphs.adjacency import ProximityGraph
from repro.metrics.distance import Metric, get_metric


@dataclass
class NswBuildReport:
    """Outcome of one sequential NSW construction.

    Attributes:
        graph: The built NSW graph.
        counters: CPU operation counts for the timing model.
        n_points: Points inserted.
    """

    graph: ProximityGraph
    counters: CpuOpCounters
    n_points: int


def exact_prefix_knn(points: np.ndarray, vertex: int, k: int,
                     metric: Metric) -> np.ndarray:
    """Exact ``k`` nearest earlier points of ``points[vertex]``.

    "Earlier" means smaller insertion id — the set the sequential insertion
    searches.  Ties break by id, matching the library-wide rule.
    """
    if vertex == 0:
        return np.empty(0, dtype=np.int64)
    dists = metric.one_to_many(points[vertex], points[:vertex])
    k = min(k, vertex)
    part = np.argpartition(dists, k - 1)[:k] if k < vertex else np.arange(vertex)
    order = np.lexsort((part, dists[part]))
    return part[order][:k].astype(np.int64)


def build_nsw_cpu(points: np.ndarray, d_min: int, d_max: int,
                  metric: str = "euclidean", ef_construction: Optional[int] = None,
                  exact: bool = False) -> NswBuildReport:
    """Build an NSW graph by sequential insertion (GraphCon_NSW).

    Args:
        points: ``(n, d)`` float matrix, insertion order = row order.
        d_min: Nearest neighbors linked per insertion (lower degree bound).
        d_max: Adjacency-row capacity (upper degree bound).
        metric: Metric name.
        ef_construction: Beam width of the insertion-time search; defaults
            to ``2 * d_min``, the setting the CPU baseline uses.
        exact: Use brute-force exact neighbor search (theorem mode).

    Returns:
        An :class:`NswBuildReport`.

    Raises:
        ConstructionError: On inconsistent parameters.
    """
    points = np.asarray(points)
    if points.ndim != 2 or len(points) == 0:
        raise ConstructionError(
            f"points must be a non-empty 2-D matrix, got shape {points.shape}"
        )
    if d_min <= 0 or d_max <= 0:
        raise ConstructionError(
            f"d_min and d_max must be positive, got {d_min}, {d_max}"
        )
    if d_min > d_max:
        raise ConstructionError(
            f"d_min ({d_min}) cannot exceed d_max ({d_max})"
        )
    if ef_construction is None:
        ef_construction = 2 * d_min
    if ef_construction < d_min:
        raise ConstructionError(
            f"ef_construction ({ef_construction}) must be >= d_min ({d_min})"
        )

    metric_obj = get_metric(metric)
    n = len(points)
    graph = ProximityGraph(n, d_max, metric)
    counters = CpuOpCounters()

    for vertex in range(1, n):
        if exact:
            neighbor_ids = exact_prefix_knn(points, vertex, d_min, metric_obj)
            counters.n_distances += vertex
        elif vertex <= d_min:
            # Fewer points than d_min in the graph: select all of them.
            neighbor_ids = np.arange(vertex, dtype=np.int64)
            counters.n_distances += vertex
        else:
            result = beam_search(graph, points, points[vertex],
                                 k=d_min, ef=ef_construction, entry=0,
                                 metric=metric_obj)
            neighbor_ids = result.ids
            counters.n_distances += result.n_distance_computations
            counters.n_heap_ops += result.n_heap_ops
            counters.n_hash_probes += result.n_hash_probes

        if len(neighbor_ids):
            dists = metric_obj.one_to_many(points[vertex],
                                           points[neighbor_ids])
            counters.n_distances += len(neighbor_ids)
            for u, dist in zip(neighbor_ids, dists):
                graph.insert_edge(vertex, int(u), float(dist))
                graph.insert_edge(int(u), vertex, float(dist))
                counters.n_adjacency_inserts += 2

    return NswBuildReport(graph=graph, counters=counters, n_points=n)
