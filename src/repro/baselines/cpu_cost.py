"""Single-core CPU timing model for the construction baselines.

Tables II and III compare GPU construction against *single-thread* CPU
construction (GraphCon_NSW from the SONG repository, GraphCon_HNSW from
nmslib) on a Xeon Gold 6238R at 2.2 GHz.  Re-running those C++ codes is out
of scope here, so the CPU baselines in this package count their abstract
operations (distance computations, heap operations, hash probes, adjacency
insertions) and this model prices the counts in seconds.

The model's one free parameter — the *effective* scalar throughput of the
distance loop — is calibrated to the paper's measured 355 s for SIFT1M NSW
construction (~355 us per insertion at 128 dims, d_min=16, d_max=32), which
corresponds to roughly 1.6 GFLOP/s sustained: a plausible figure for a
cache-miss-bound scalar C++ inner loop on that part.  All baselines share
the model, so every reported *ratio* is structural.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CpuOpCounters:
    """Abstract operation counts of one CPU-side run.

    Attributes:
        n_distances: Full point-to-point distance evaluations.
        n_heap_ops: Priority-queue pushes/pops (binary-heap steps).
        n_hash_probes: Visited-set membership checks/inserts.
        n_adjacency_inserts: Sorted adjacency-row insertions.
    """

    n_distances: int = 0
    n_heap_ops: int = 0
    n_hash_probes: int = 0
    n_adjacency_inserts: int = 0

    def add(self, other: "CpuOpCounters") -> None:
        """Accumulate another run's counts into this one."""
        self.n_distances += other.n_distances
        self.n_heap_ops += other.n_heap_ops
        self.n_hash_probes += other.n_hash_probes
        self.n_adjacency_inserts += other.n_adjacency_inserts


@dataclass(frozen=True)
class CpuModel:
    """Timing model of one CPU core.

    Attributes:
        name: Display name.
        clock_ghz: Core clock (documentation; folded into the throughputs).
        effective_flops: Sustained FLOP/s of the distance inner loop,
            including its memory stalls.
        heap_op_ns: One binary-heap push/pop step.
        hash_probe_ns: One hash-table probe/insert.
        adjacency_insert_ns: One sorted fixed-row insertion (binary search
            plus the element shift).
    """

    name: str = "Intel Xeon Gold 6238R (single thread, modeled)"
    clock_ghz: float = 2.2
    effective_flops: float = 1.6e9
    heap_op_ns: float = 25.0
    hash_probe_ns: float = 15.0
    adjacency_insert_ns: float = 60.0

    def distance_seconds(self, n_distances: int, flops_per_distance: int) -> float:
        """Seconds spent on ``n_distances`` distance evaluations."""
        return n_distances * flops_per_distance / self.effective_flops

    def seconds(self, counters: CpuOpCounters, flops_per_distance: int) -> float:
        """Total modeled seconds for a counted run.

        Args:
            counters: Operation counts collected by a CPU baseline.
            flops_per_distance: FLOPs of one distance at the workload's
                dimensionality (ask the metric via
                :meth:`repro.metrics.distance.Metric.flops_per_distance`).
        """
        total = self.distance_seconds(counters.n_distances,
                                      flops_per_distance)
        total += counters.n_heap_ops * self.heap_op_ns * 1e-9
        total += counters.n_hash_probes * self.hash_probe_ns * 1e-9
        total += counters.n_adjacency_inserts * self.adjacency_insert_ns * 1e-9
        return total


DEFAULT_CPU = CpuModel()
"""The paper's evaluation CPU, single-threaded."""


@dataclass
class TimedCounters:
    """Counters plus the resolved seconds, for report tables."""

    counters: CpuOpCounters = field(default_factory=CpuOpCounters)
    seconds: float = 0.0
