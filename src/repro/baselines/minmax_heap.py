"""Bounded min-max heap — SONG's candidate-queue data structure.

SONG implements its candidate set ``C`` "in the form of a min-max heap
with size k, which can save memory consumption without sacrificing
performance" (Section II-D): a single array supporting O(1) access to
both the minimum and the maximum, O(log n) insertion, delete-min and
delete-max — exactly what a bounded priority queue needs (pop the best
candidate, evict the worst when full).

This is the classical Atkinson et al. (1986) structure: a binary heap
whose even levels (the root is level 0) are *min levels* and odd levels
are *max levels*.  Keys are ``(distance, id)`` tuples so ordering matches
the library-wide tie-break rule.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ConfigurationError

Key = Tuple[float, int]


def _level(index: int) -> int:
    """Tree level of a 0-based array index (root = level 0)."""
    return (index + 1).bit_length() - 1


def _is_min_level(index: int) -> bool:
    return _level(index) % 2 == 0


class MinMaxHeap:
    """A bounded min-max heap over ``(distance, id)`` keys.

    Args:
        bound: Maximum number of elements.  Pushing into a full heap
            evicts the maximum if the new key is smaller, else the push
            is rejected — the bounded-priority-queue semantics of SONG's
            "if C is full and the new point is better than the worst
            point in C, the worst point is removed".
    """

    def __init__(self, bound: int):
        if bound <= 0:
            raise ConfigurationError(
                f"heap bound must be positive, got {bound}"
            )
        self.bound = bound
        self._items: List[Key] = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def is_full(self) -> bool:
        """Whether the heap holds ``bound`` elements."""
        return len(self._items) >= self.bound

    def min(self) -> Key:
        """Smallest key (the best candidate).  Raises on empty."""
        if not self._items:
            raise ConfigurationError("min() on an empty heap")
        return self._items[0]

    def max(self) -> Key:
        """Largest key (the eviction victim).  Raises on empty."""
        if not self._items:
            raise ConfigurationError("max() on an empty heap")
        return self._items[self._max_index()]

    def _max_index(self) -> int:
        if len(self._items) == 1:
            return 0
        if len(self._items) == 2:
            return 1
        return 1 if self._items[1] >= self._items[2] else 2

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def push(self, key: Key) -> bool:
        """Insert a key, evicting the maximum if full.

        Returns:
            True if the key now resides in the heap; False if it was
            rejected (full and not better than the current maximum).
        """
        inserted, _ = self.push_with_eviction(key)
        return inserted

    def push_with_eviction(self, key: Key) -> Tuple[bool, Optional[Key]]:
        """Insert a key; also report any evicted maximum.

        SONG's visited-deletion optimization needs to know *which* entry
        the bounded queue dropped, so the fixed-size hash can forget it.

        Returns:
            ``(inserted, evicted)``: whether ``key`` resides in the heap
            now, and the key that was evicted to make room (or None).
        """
        evicted: Optional[Key] = None
        if self.is_full:
            if key >= self.max():
                return False, None
            evicted = self.max()
            self._delete(self._max_index())
        self._items.append(key)
        self._bubble_up(len(self._items) - 1)
        return True, evicted

    def pop_min(self) -> Key:
        """Remove and return the smallest key."""
        smallest = self.min()
        self._delete(0)
        return smallest

    def pop_max(self) -> Key:
        """Remove and return the largest key."""
        index = self._max_index()
        largest = self._items[index]
        self._delete(index)
        return largest

    # ------------------------------------------------------------------
    # Internals (Atkinson et al. trickle operations)
    # ------------------------------------------------------------------

    def _delete(self, index: int) -> None:
        last = self._items.pop()
        if index < len(self._items):
            self._items[index] = last
            self._trickle_down(index)
            self._bubble_up(index)

    def _bubble_up(self, index: int) -> None:
        if index == 0:
            return
        parent = (index - 1) // 2
        items = self._items
        if _is_min_level(index):
            if items[index] > items[parent]:
                items[index], items[parent] = items[parent], items[index]
                self._bubble_up_max(parent)
            else:
                self._bubble_up_min(index)
        else:
            if items[index] < items[parent]:
                items[index], items[parent] = items[parent], items[index]
                self._bubble_up_min(parent)
            else:
                self._bubble_up_max(index)

    def _bubble_up_min(self, index: int) -> None:
        items = self._items
        while index >= 3:
            grandparent = ((index - 1) // 2 - 1) // 2
            if items[index] < items[grandparent]:
                items[index], items[grandparent] = (items[grandparent],
                                                    items[index])
                index = grandparent
            else:
                break

    def _bubble_up_max(self, index: int) -> None:
        items = self._items
        while index >= 3:
            grandparent = ((index - 1) // 2 - 1) // 2
            if items[index] > items[grandparent]:
                items[index], items[grandparent] = (items[grandparent],
                                                    items[index])
                index = grandparent
            else:
                break

    def _descendants(self, index: int) -> List[int]:
        """Children and grandchildren indices of ``index``."""
        n = len(self._items)
        out = []
        for child in (2 * index + 1, 2 * index + 2):
            if child < n:
                out.append(child)
                for grandchild in (2 * child + 1, 2 * child + 2):
                    if grandchild < n:
                        out.append(grandchild)
        return out

    def _trickle_down(self, index: int) -> None:
        if _is_min_level(index):
            self._trickle_down_dir(index, smallest=True)
        else:
            self._trickle_down_dir(index, smallest=False)

    def _trickle_down_dir(self, index: int, smallest: bool) -> None:
        items = self._items
        while True:
            descendants = self._descendants(index)
            if not descendants:
                return
            if smallest:
                target = min(descendants, key=lambda i: items[i])
                should_swap = items[target] < items[index]
            else:
                target = max(descendants, key=lambda i: items[i])
                should_swap = items[target] > items[index]
            if not should_swap:
                return
            items[index], items[target] = items[target], items[index]
            # If the target was a grandchild, fix the parent relation.
            if target > 2 * index + 2:
                parent = (target - 1) // 2
                if smallest and items[target] > items[parent]:
                    items[target], items[parent] = (items[parent],
                                                    items[target])
                elif not smallest and items[target] < items[parent]:
                    items[target], items[parent] = (items[parent],
                                                    items[target])
                index = target
            else:
                return

    def as_sorted_list(self) -> List[Key]:
        """All keys in ascending order (non-destructive; for tests)."""
        return sorted(self._items)
