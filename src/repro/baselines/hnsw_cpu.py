"""GraphCon_HNSW: single-thread hierarchical NSW construction.

An HNSW graph (Section IV-D) is a hierarchy of NSW graphs over nested
random subsets: layer 0 holds every point, higher layers hold geometrically
fewer.  This module implements the CPU baseline and the shared
level-assignment machinery:

- :func:`draw_levels` — the standard exponential level draw
  (``level = floor(-ln(U) * mL)``).
- :func:`shuffled_order_from_levels` — the paper's ID-shuffle trick: order
  vertices by descending level so that the vertices of layer ``i`` are
  exactly ids ``0 .. layer_size_i - 1`` and layer adjacency rows are
  addressable by vertex id with no per-layer index.
- :func:`build_hnsw_cpu` — layer-by-layer sequential NSW insertion, the
  single-thread baseline of Table III.
- :func:`hnsw_entry_descent` — greedy top-down routing that turns a
  hierarchical graph into a good entry vertex for a bottom-layer search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.beam import beam_search
from repro.baselines.cpu_cost import CpuOpCounters
from repro.baselines.nsw_cpu import build_nsw_cpu
from repro.errors import ConstructionError
from repro.graphs.adjacency import HierarchicalGraph, ProximityGraph
from repro.metrics.distance import get_metric


def draw_levels(n_points: int, d_min: int, seed: int = 0,
                max_levels: int = 16) -> np.ndarray:
    """Draw an HNSW level for each point.

    Uses the standard exponential rule ``level = floor(-ln(U) * mL)`` with
    ``mL = 1 / ln(d_min)``, capped at ``max_levels - 1``.

    Returns:
        ``(n_points,)`` int array of levels (0 = bottom only).
    """
    if n_points <= 0:
        raise ConstructionError(f"n_points must be positive, got {n_points}")
    if d_min < 2:
        raise ConstructionError(f"d_min must be >= 2 for HNSW, got {d_min}")
    rng = np.random.default_rng(seed)
    m_l = 1.0 / math.log(d_min)
    uniforms = rng.uniform(np.finfo(np.float64).tiny, 1.0, size=n_points)
    levels = np.floor(-np.log(uniforms) * m_l).astype(np.int64)
    return np.minimum(levels, max_levels - 1)


def shuffled_order_from_levels(levels: np.ndarray,
                               seed: int = 0) -> np.ndarray:
    """Permutation placing high-level vertices first (the ID shuffle).

    Section IV-D: "we shuffle IDs of vertices and record the mapping ...
    vertices with smaller IDs can reach higher levels".  Within one level
    the order is random.

    Returns:
        ``order`` such that ``order[new_id] = original_id`` and levels are
        non-increasing along ``new_id``.
    """
    rng = np.random.default_rng(seed)
    jitter = rng.random(len(levels))
    # Sort by (-level, jitter): descending level, random within level.
    return np.lexsort((jitter, -levels)).astype(np.int64)


def layer_sizes_from_levels(levels: np.ndarray) -> List[int]:
    """Vertices per layer: ``size[i] = #{v : level_v >= i}``."""
    top = int(levels.max())
    return [int(np.count_nonzero(levels >= layer)) for layer in range(top + 1)]


@dataclass
class HnswBuildReport:
    """Outcome of one CPU HNSW construction.

    Attributes:
        graph: The hierarchical graph (layers over *shuffled* ids).
        order: ``order[new_id] = original_id`` mapping of the ID shuffle.
        counters: CPU operation counts for the timing model.
        n_points: Points inserted.
    """

    graph: HierarchicalGraph
    order: np.ndarray
    counters: CpuOpCounters
    n_points: int


def build_hnsw_cpu(points: np.ndarray, d_min: int, d_max: int,
                   metric: str = "euclidean",
                   ef_construction: Optional[int] = None,
                   seed: int = 0) -> HnswBuildReport:
    """Build an HNSW graph by layer-wise sequential insertion.

    Each layer is an NSW graph over the shuffled-id prefix it owns, built
    with :func:`repro.baselines.nsw_cpu.build_nsw_cpu`; counters from all
    layers accumulate into one total, which is what Table III prices.

    Returns:
        An :class:`HnswBuildReport`; the points seen by the hierarchical
        graph are ``points[report.order]``.
    """
    points = np.asarray(points)
    if points.ndim != 2 or len(points) == 0:
        raise ConstructionError(
            f"points must be a non-empty 2-D matrix, got shape {points.shape}"
        )
    levels = draw_levels(len(points), d_min, seed=seed)
    order = shuffled_order_from_levels(levels, seed=seed)
    shuffled_points = points[order]
    sizes = layer_sizes_from_levels(levels)

    counters = CpuOpCounters()
    layers: List[ProximityGraph] = []
    for layer, size in enumerate(sizes):
        report = build_nsw_cpu(shuffled_points[:size], d_min, d_max,
                               metric=metric,
                               ef_construction=ef_construction)
        # Layer graphs must all address the full id space for uniformity.
        if size < len(points):
            widened = ProximityGraph(len(points), d_max, metric)
            widened.neighbor_ids[:size] = report.graph.neighbor_ids
            widened.neighbor_dists[:size] = report.graph.neighbor_dists
            widened.degrees[:size] = report.graph.degrees
            layers.append(widened)
        else:
            layers.append(report.graph)
        counters.add(report.counters)

    hierarchical = HierarchicalGraph(layers, sizes)
    return HnswBuildReport(graph=hierarchical, order=order,
                           counters=counters, n_points=len(points))


def hnsw_entry_descent(graph: HierarchicalGraph, points: np.ndarray,
                       query: np.ndarray,
                       metric_name: Optional[str] = None
                       ) -> Tuple[int, int]:
    """Greedy top-down descent; returns (entry vertex, distance count).

    From the top layer down to layer 1, repeatedly hop to the closest
    neighbor of the current vertex until no improvement, then drop a layer.
    The resulting vertex seeds the bottom-layer beam search.
    """
    if metric_name is None:
        metric_name = graph.bottom.metric_name
    metric = get_metric(metric_name)
    query = np.asarray(query, dtype=np.float64)
    current = graph.entry_vertex()
    current_dist = float(metric.one_to_many(query,
                                            points[current:current + 1])[0])
    n_dist = 1
    for layer_idx in range(graph.n_layers - 1, 0, -1):
        layer = graph.layers[layer_idx]
        improved = True
        while improved:
            improved = False
            degree = layer.degrees[current]
            if degree == 0:
                break
            neighbor_ids = layer.neighbor_ids[current, :degree]
            dists = metric.one_to_many(query, points[neighbor_ids])
            n_dist += int(degree)
            best = int(np.argmin(dists))
            if dists[best] < current_dist:
                current = int(neighbor_ids[best])
                current_dist = float(dists[best])
                improved = True
    return current, n_dist


def hnsw_search(graph: HierarchicalGraph, points: np.ndarray,
                query: np.ndarray, k: int, ef: Optional[int] = None):
    """Full CPU HNSW search: descent + bottom-layer beam search."""
    entry, n_dist = hnsw_entry_descent(graph, points, query)
    result = beam_search(graph.bottom, points, query, k, ef, entry=entry)
    result.n_distance_computations += n_dist
    return result
