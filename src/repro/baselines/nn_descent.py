"""NN-Descent: KNN-graph construction by neighbor-of-neighbor refinement.

The iterative method of Dong et al. [9] that Section IV-D adopts for KNN
graphs: start from random adjacency lists; in each iteration, every pair of
neighbors ``(u1, u2)`` of every vertex proposes the edges ``u1 -> u2`` and
``u2 -> u1``; proposals that improve an adjacency list are applied.  The
process stops when an iteration changes too little ("the precision
improvement of the KNN graph is small enough").

This CPU implementation is the reference the GPU-style batched version in
:mod:`repro.core.knng` is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.baselines.cpu_cost import CpuOpCounters
from repro.errors import ConstructionError
from repro.graphs.adjacency import ProximityGraph
from repro.metrics.distance import get_metric


@dataclass
class NnDescentReport:
    """Outcome of one NN-Descent run.

    Attributes:
        graph: The KNN graph (``d_max == k``; degrees == k).
        counters: CPU operation counts.
        n_iterations: Refinement iterations executed.
        updates_per_iteration: Adjacency updates applied each iteration, a
            direct view of convergence.
    """

    graph: ProximityGraph
    counters: CpuOpCounters
    n_iterations: int
    updates_per_iteration: List[int] = field(default_factory=list)


def _random_initial_graph(n: int, k: int, points: np.ndarray, metric,
                          counters: CpuOpCounters,
                          rng: np.random.Generator) -> ProximityGraph:
    """Random k-regular starting graph with true distances attached."""
    graph = ProximityGraph(n, k, metric.name)
    for v in range(n):
        choices = rng.choice(n - 1, size=k, replace=False)
        choices[choices >= v] += 1  # skip self
        dists = metric.one_to_many(points[v], points[choices])
        counters.n_distances += k
        order = np.lexsort((choices, dists))
        graph.set_row(v, choices[order], dists[order])
    return graph


def build_knn_graph_nn_descent(points: np.ndarray, k: int,
                               metric: str = "euclidean",
                               max_iterations: int = 12,
                               sample_rate: float = 1.0,
                               min_update_fraction: float = 0.001,
                               seed: int = 0) -> NnDescentReport:
    """Construct a KNN graph with NN-Descent.

    Args:
        points: ``(n, d)`` float matrix.
        k: Neighbors per vertex (``d_min == d_max == k`` for KNN graphs).
        metric: Metric name.
        max_iterations: Hard iteration cap.
        sample_rate: Fraction of neighbor pairs proposed per iteration
            (1.0 = the full quadratic pass of the basic algorithm).
        min_update_fraction: Stop when an iteration applies fewer than
            ``min_update_fraction * n * k`` updates.
        seed: RNG seed.

    Returns:
        An :class:`NnDescentReport`.
    """
    points = np.asarray(points)
    if points.ndim != 2 or len(points) == 0:
        raise ConstructionError(
            f"points must be a non-empty 2-D matrix, got shape {points.shape}"
        )
    n = len(points)
    if not 1 <= k < n:
        raise ConstructionError(f"k must lie in [1, {n - 1}], got {k}")
    if not 0.0 < sample_rate <= 1.0:
        raise ConstructionError(
            f"sample_rate must lie in (0, 1], got {sample_rate}"
        )
    metric_obj = get_metric(metric)
    rng = np.random.default_rng(seed)
    counters = CpuOpCounters()
    graph = _random_initial_graph(n, k, points, metric_obj, counters, rng)

    updates_history: List[int] = []
    threshold = max(1, int(min_update_fraction * n * k))
    for _ in range(max_iterations):
        updates = 0
        # General neighborhoods B[v] = forward ∪ reverse neighbors, as in
        # Dong et al.: reverse edges are what lets improvements propagate
        # against the edge direction.
        reverse: List[List[int]] = [[] for _ in range(n)]
        for v in range(n):
            for u in graph.neighbors(v):
                reverse[int(u)].append(v)
        for v in range(n):
            forward = graph.neighbors(v)
            neighbors = np.unique(np.concatenate(
                [forward, np.asarray(reverse[v], dtype=np.int64)]))
            degree = len(neighbors)
            if degree < 2:
                continue
            pair_count = degree * (degree - 1) // 2
            pairs = [(a, b) for i, a in enumerate(neighbors)
                     for b in neighbors[i + 1:]]
            if sample_rate < 1.0 and pair_count > 1:
                keep = rng.random(pair_count) < sample_rate
                pairs = [p for p, kept in zip(pairs, keep) if kept]
            for u1, u2 in pairs:
                u1, u2 = int(u1), int(u2)
                if u1 == u2:
                    continue
                dist = float(metric_obj.one_to_many(
                    points[u1], points[u2:u2 + 1])[0])
                counters.n_distances += 1
                if graph.insert_edge(u1, u2, dist):
                    updates += 1
                    counters.n_adjacency_inserts += 1
                if graph.insert_edge(u2, u1, dist):
                    updates += 1
                    counters.n_adjacency_inserts += 1
        updates_history.append(updates)
        if updates < threshold:
            break

    return NnDescentReport(
        graph=graph,
        counters=counters,
        n_iterations=len(updates_history),
        updates_per_iteration=updates_history,
    )
