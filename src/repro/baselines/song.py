"""SONG: the state-of-the-art GPU proximity-graph search (Section II-D).

SONG keeps Algorithm 1's data structures — a bounded min-max candidate
queue ``C``, a bounded result queue ``N`` and an open-addressing visited
hash ``H`` over ``N ∪ C`` — and decomposes each iteration into three
stages:

1. *candidates locating* — the host thread pops the best candidate,
   compares it against the worst result, and walks the popped vertex's
   neighbors one by one, probing the hash to keep only unvisited ones;
2. *bulk distance computation* — the block's threads cooperate on the
   distances of the recorded candidates (the only parallel stage);
3. *data structures updating* — the host thread pushes each computed
   candidate back into the bounded queue and the hash, sequentially.

Stages 1 and 3 run on a single "host thread" per block — the execution
dependency the paper identifies as SONG's bottleneck — so their cycle
charges deliberately do not divide by ``n_t``.

The traversal itself is executed faithfully (visited-hash semantics mean
SONG never recomputes a distance, unlike GANNS's lazy check), so recall
numbers are real.
"""

from __future__ import annotations

import math
from bisect import insort
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.baselines.minmax_heap import MinMaxHeap
from repro.baselines.visited import make_visited_set
from repro.core.results import SearchReport, make_search_tracker
from repro.errors import ConfigurationError, SearchError
from repro.graphs.adjacency import ProximityGraph
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.memory import SharedMemoryBudget


@dataclass(frozen=True)
class SongParams:
    """Parameters of one SONG search invocation.

    Attributes:
        k: Neighbors returned per query.
        pq_bound: Bound of the candidate/result priority queues — SONG's
            accuracy/efficiency knob, the counterpart of GANNS's ``l_n``.
        n_threads: Threads per block; only the bulk-distance stage
            benefits from them.
        visited_strategy: Visited-marking structure — ``"hash"`` (SONG's
            open-addressing table, the default), ``"bloom"`` or
            ``"bitmap"`` (the Section III-A alternatives; see
            :mod:`repro.baselines.visited`).
        visited_deletion: SONG's visited-deletion optimization: keep H at
            its fixed ``2k`` size by holding exactly the members of
            ``N ∪ C`` and *deleting* entries the bounded queues evict.
            Evicted vertices may be revisited (their distances recomputed)
            — the memory/recomputation trade the SONG paper accepts.
            Only meaningful with the ``"hash"`` strategy.
    """

    k: int = 10
    pq_bound: int = 64
    n_threads: int = 32
    visited_strategy: str = "hash"
    visited_deletion: bool = False

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ConfigurationError(f"k must be positive, got {self.k}")
        if self.pq_bound < self.k:
            raise ConfigurationError(
                f"pq_bound ({self.pq_bound}) must be >= k ({self.k})"
            )
        if self.n_threads <= 0:
            raise ConfigurationError(
                f"n_threads must be positive, got {self.n_threads}"
            )
        if self.visited_strategy not in ("hash", "bloom", "bitmap"):
            raise ConfigurationError(
                f"unknown visited_strategy {self.visited_strategy!r}; "
                f"valid: hash, bloom, bitmap"
            )
        if self.visited_deletion and self.visited_strategy != "hash":
            raise ConfigurationError(
                "visited_deletion applies to the hash strategy only"
            )


def song_search(graph: ProximityGraph, points: np.ndarray,
                queries: np.ndarray, params: SongParams,
                entry: Union[int, np.ndarray] = 0,
                costs: CostTable = DEFAULT_COSTS) -> SearchReport:
    """Run SONG's three-stage search for a batch of queries.

    Args:
        graph: Proximity graph over ``points``.
        points: ``(n, d)`` data matrix.
        queries: ``(m, d)`` query matrix.
        params: SONG parameters.
        entry: Start vertex, or per-query ``(m,)`` id array.
        costs: Cycle cost table (shared with GANNS).

    Returns:
        A :class:`repro.core.results.SearchReport` with
        ``algorithm == "song"``.
    """
    points = np.asarray(points)
    queries = np.asarray(queries)
    if queries.ndim != 2:
        raise SearchError(
            f"queries must be 2-D (n_queries, d), got shape {queries.shape}"
        )
    if points.ndim != 2 or points.shape[1] != queries.shape[1]:
        raise SearchError(
            f"points {points.shape} and queries {queries.shape} disagree "
            f"on dimensionality"
        )
    n_queries = len(queries)
    if n_queries == 0:
        raise SearchError("queries must not be empty")
    n_dims = points.shape[1]
    metric = graph.metric
    bound = params.pq_bound
    n_t = params.n_threads

    entries = np.broadcast_to(np.asarray(entry, dtype=np.int64),
                              (n_queries,)).copy()
    if entries.min() < 0 or entries.max() >= graph.n_vertices:
        raise SearchError(
            f"entry vertices must lie in [0, {graph.n_vertices})"
        )

    tracker = make_search_tracker(n_queries, "song")
    ids_out = np.full((n_queries, params.k), -1, dtype=np.int64)
    dists_out = np.full((n_queries, params.k), np.inf, dtype=np.float64)
    iterations = np.zeros(n_queries, dtype=np.int64)
    n_distance_computations = 0

    per_vector_cost = costs.single_distance_cycles(n_dims, n_t)

    for row in range(n_queries):
        query = queries[row]
        start = int(entries[row])
        start_dist = float(metric.one_to_many(query,
                                              points[start:start + 1])[0])
        tracker.charge("bulk_distance", per_vector_cost, np.asarray([row]))
        n_distance_computations += 1

        # C: a bounded min-max heap of (dist, id) — SONG's actual
        # candidate structure.  N: ascending (dist, id) list of the best
        # results, bounded.  H: the visited structure over N ∪ C.
        candidates = MinMaxHeap(bound=bound)
        candidates.push((start_dist, start))
        results = []
        if params.visited_strategy == "hash":
            # The calibrated default: a plain set with hash probes priced
            # inside the stage formulas (one probe per scanned neighbor,
            # one per insertion).
            visited = {start}
            visited_obj = None
        else:
            visited_obj = make_visited_set(
                params.visited_strategy, graph.n_vertices,
                budget=4 * bound, costs=costs)
            visited_obj.add(start)
            visited = visited_obj
        n_iter = 0
        locate_cycles = 0.0
        distance_cycles = 0.0
        update_cycles = 0.0

        while candidates:
            n_iter += 1
            # Stage 1 — candidates locating (host thread).
            cand_dist, cand_id = candidates.pop_min()
            if len(results) == bound and cand_dist > results[-1][0]:
                locate_cycles += costs.song_locate_cycles(0, bound)
                break
            insort(results, (cand_dist, cand_id))
            if len(results) > bound:
                dropped = results.pop()
                if params.visited_deletion and visited_obj is None:
                    visited.discard(dropped[1])
            degree = int(graph.degrees[cand_id])
            neighbor_ids = graph.neighbor_ids[cand_id, :degree]
            if visited_obj is None:
                locate_cycles += costs.song_locate_cycles(degree, bound)
            else:
                # Extract-min and bookkeeping priced by the formula with
                # no probes; the structure charges its own accesses.
                before = visited_obj.cycles
                fresh_probe = [int(u) for u in neighbor_ids
                               if int(u) not in visited]
                locate_cycles += (costs.song_locate_cycles(0, bound)
                                  + degree * costs.alu_cycles
                                  + visited_obj.cycles - before)
            fresh = [int(u) for u in neighbor_ids if int(u) not in visited] \
                if visited_obj is None else fresh_probe

            if fresh:
                # Stage 2 — bulk distance computation (parallel threads).
                fresh_arr = np.asarray(fresh)
                dists = metric.one_to_many(query, points[fresh_arr])
                distance_cycles += len(fresh) * per_vector_cost
                n_distance_computations += len(fresh)

                # Stage 3 — data structures updating (host thread).
                if visited_obj is None:
                    update_cycles += costs.song_update_cycles(len(fresh),
                                                              bound)
                    for u, dist in zip(fresh, dists):
                        visited.add(u)
                        inserted, evicted = candidates.push_with_eviction(
                            (float(dist), u))
                        if params.visited_deletion:
                            # H mirrors N ∪ C exactly (fixed 2k size):
                            # rejected or evicted vertices leave H and
                            # may be revisited later.
                            if not inserted:
                                visited.discard(u)
                            elif evicted is not None:
                                visited.discard(evicted[1])
                else:
                    sift = (math.ceil(math.log2(max(bound, 2)))
                            * costs.host_insert_cycles)
                    before = visited_obj.cycles
                    for u, dist in zip(fresh, dists):
                        visited_obj.add(u)
                        candidates.push((float(dist), u))
                    update_cycles += (len(fresh) * sift
                                      + visited_obj.cycles - before)

        lane = np.asarray([row])
        tracker.charge("candidates_locating", locate_cycles, lane)
        tracker.charge("bulk_distance", distance_cycles, lane)
        tracker.charge("structures_updating", update_cycles, lane)
        iterations[row] = n_iter

        top = results[:params.k]
        ids_out[row, :len(top)] = [vid for _, vid in top]
        dists_out[row, :len(top)] = [d for d, _ in top]

    # SONG keeps the query vector plus the cand/dist auxiliary arrays in
    # shared memory (Section II-D); N, C and H live in local memory.
    shared_mem = SharedMemoryBudget(
        l_n=0, l_t=0, query_dims=n_dims,
        scratch_entries=graph.d_max).total_bytes()
    return SearchReport(
        algorithm="song",
        ids=ids_out,
        dists=dists_out,
        tracker=tracker,
        n_threads=n_t,
        shared_mem_bytes=shared_mem,
        iterations=iterations,
        n_distance_computations=n_distance_computations,
    )
