"""Baselines the paper compares against.

- :mod:`repro.baselines.beam` — Algorithm 1, the classical CPU beam search
  on a proximity graph (min-heap candidates, max-heap results, visited set).
- :mod:`repro.baselines.nsw_cpu` — GraphCon_NSW: single-thread sequential
  NSW insertion.
- :mod:`repro.baselines.hnsw_cpu` — GraphCon_HNSW: single-thread HNSW
  construction.
- :mod:`repro.baselines.nn_descent` — NN-Descent KNN-graph construction.
- :mod:`repro.baselines.song` — SONG, the state-of-the-art GPU search the
  paper benchmarks against, under the shared gpusim cost model.
- :mod:`repro.baselines.cpu_cost` — single-core CPU timing model for the
  construction baselines (Tables II/III).
"""

from repro.baselines.beam import BeamSearchResult, beam_search, beam_search_batch
from repro.baselines.nsw_cpu import build_nsw_cpu, NswBuildReport
from repro.baselines.hnsw_cpu import build_hnsw_cpu, HnswBuildReport, draw_levels
from repro.baselines.nn_descent import build_knn_graph_nn_descent, NnDescentReport
from repro.baselines.song import song_search, SongParams
from repro.baselines.cpu_cost import CpuModel, DEFAULT_CPU

__all__ = [
    "BeamSearchResult",
    "beam_search",
    "beam_search_batch",
    "build_nsw_cpu",
    "NswBuildReport",
    "build_hnsw_cpu",
    "HnswBuildReport",
    "draw_levels",
    "build_knn_graph_nn_descent",
    "NnDescentReport",
    "song_search",
    "SongParams",
    "CpuModel",
    "DEFAULT_CPU",
]
