"""Algorithm 1: beam search on a proximity graph (CPU reference).

This is the paper's Algorithm 1 verbatim: a min-heap candidate set ``C``, a
bounded max-heap result set ``N``, and a visited set ``H`` containing
everything ever pushed.  The *beam width* ``ef`` plays the role of the
backtracking budget: the search maintains the best ``ef`` results and
terminates once the closest open candidate is worse than the ``ef``-th best
("search more nearest neighbors than required for exploring neighbors of
local optimum"); callers take the first ``k``.

Every result carries operation counters (iterations, distance computations,
heap operations, hash probes) so the single-core CPU cost model can price a
run — that is how Tables II/III obtain CPU construction times.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import SearchError
from repro.graphs.adjacency import ProximityGraph
from repro.metrics.distance import Metric


@dataclass
class BeamSearchResult:
    """Outcome of one beam search.

    Attributes:
        ids: Neighbor ids, closest first, length ``min(k, reachable)``.
        dists: Matching distances.
        n_iterations: Loop iterations executed (candidate pops).
        n_distance_computations: Point-to-query distances evaluated.
        n_heap_ops: Heap pushes + pops across both heaps.
        n_hash_probes: Visited-set membership checks.
    """

    ids: np.ndarray
    dists: np.ndarray
    n_iterations: int
    n_distance_computations: int
    n_heap_ops: int
    n_hash_probes: int


def beam_search(graph: ProximityGraph, points: np.ndarray,
                query: np.ndarray, k: int, ef: Optional[int] = None,
                entry: int = 0,
                metric: Optional[Metric] = None) -> BeamSearchResult:
    """Search ``k`` approximate nearest neighbors of ``query`` (Algorithm 1).

    Args:
        graph: Proximity graph over ``points``.
        points: ``(n, d)`` data matrix the graph was built on.
        query: ``(d,)`` query vector.
        k: Number of neighbors to return.
        ef: Beam width (backtracking budget); defaults to ``k``.  Must be
            ``>= k``.
        entry: Start vertex ``v_s``.
        metric: Distance metric; defaults to the graph's metric.

    Returns:
        A :class:`BeamSearchResult` with ids closest-first and counters.
    """
    if k <= 0:
        raise SearchError(f"k must be positive, got {k}")
    if ef is None:
        ef = k
    if ef < k:
        raise SearchError(f"ef ({ef}) must be at least k ({k})")
    if not 0 <= entry < graph.n_vertices:
        raise SearchError(
            f"entry vertex {entry} out of range [0, {graph.n_vertices})"
        )
    if metric is None:
        metric = graph.metric
    query = np.asarray(query, dtype=np.float64)

    n_dist = 0
    n_heap = 0
    n_hash = 0
    n_iter = 0

    entry_dist = float(metric.one_to_many(query, points[entry:entry + 1])[0])
    n_dist += 1

    # C: min-heap of (dist, id).  N: max-heap of (-dist, -id) bounded at ef.
    candidates = [(entry_dist, entry)]
    results = []
    visited = {entry}
    n_heap += 1
    n_hash += 1

    while candidates:
        n_iter += 1
        cand_dist, cand_id = heapq.heappop(candidates)
        n_heap += 1
        if len(results) == ef:
            worst = -results[0][0]
            if cand_dist > worst:
                break
        heapq.heappush(results, (-cand_dist, -cand_id))
        n_heap += 1
        if len(results) > ef:
            heapq.heappop(results)
            n_heap += 1

        neighbor_ids = graph.neighbor_ids[cand_id, :graph.degrees[cand_id]]
        fresh = []
        for u in neighbor_ids:
            u = int(u)
            n_hash += 1
            if u not in visited:
                visited.add(u)
                fresh.append(u)
        if fresh:
            fresh_arr = np.asarray(fresh)
            dists = metric.one_to_many(query, points[fresh_arr])
            n_dist += len(fresh)
            for u, dist in zip(fresh, dists):
                heapq.heappush(candidates, (float(dist), u))
                n_heap += 1

    ordered = sorted((-neg_d, -neg_i) for neg_d, neg_i in results)
    top = ordered[:k]
    ids = np.asarray([i for _, i in top], dtype=np.int64)
    dists = np.asarray([d for d, _ in top], dtype=np.float64)
    return BeamSearchResult(
        ids=ids,
        dists=dists,
        n_iterations=n_iter,
        n_distance_computations=n_dist,
        n_heap_ops=n_heap,
        n_hash_probes=n_hash,
    )


def beam_search_batch(graph: ProximityGraph, points: np.ndarray,
                      queries: np.ndarray, k: int, ef: Optional[int] = None,
                      entry: int = 0,
                      metric: Optional[Metric] = None) -> np.ndarray:
    """Beam-search many queries; returns ``(n_queries, k)`` ids.

    Rows whose search returns fewer than ``k`` reachable vertices are padded
    with ``-1``.
    """
    queries = np.asarray(queries)
    if queries.ndim != 2:
        raise SearchError(
            f"queries must be 2-D (n_queries, d), got shape {queries.shape}"
        )
    out = np.full((len(queries), k), -1, dtype=np.int64)
    for row, query in enumerate(queries):
        result = beam_search(graph, points, query, k, ef, entry, metric)
        out[row, :len(result.ids)] = result.ids
    return out
