"""Simulated SIMT GPU substrate.

The paper's algorithms are CUDA kernels; this package replaces the physical
GPU with an *execution and cost model* so the same algorithms can run, and be
timed, on a laptop:

- :mod:`repro.gpusim.device` — device specifications (streaming
  multiprocessors, warp width, clock, memory) with a preset modelled on the
  NVIDIA Quadro P5000 used in the paper.
- :mod:`repro.gpusim.costs` — cycle cost tables and per-phase cost formulas
  taken from the paper's complexity analysis (Sections III-C and IV-C).
- :mod:`repro.gpusim.tracker` — per-phase cycle accounting, vectorised over
  queries so a batched search can charge each query lane independently.
- :mod:`repro.gpusim.warp` — functional semantics of the warp-level
  primitives the paper relies on (``__shfl_down_sync``, ``__shfl_xor_sync``,
  ``__ballot_sync``, ``__ffs``).
- :mod:`repro.gpusim.sorting` — bitonic sorting/merging networks (Batcher),
  both a faithful compare-exchange network and batched helpers.
- :mod:`repro.gpusim.scan` — work-efficient parallel prefix sum.
- :mod:`repro.gpusim.memory` — shared-memory budgets and the PCIe transfer
  model used in the paper's "Remarks" on CPU-GPU data transfer.
- :mod:`repro.gpusim.kernel` — kernel-launch scheduling: maps per-block cycle
  counts to elapsed wall time given the device's occupancy limits.

The algorithm logic that runs on top of this substrate is executed for real
(actual graph traversals, actual floating-point distances), so accuracy
numbers are genuine; only the *clock* is simulated.
"""

from repro.gpusim.device import DeviceSpec, QUADRO_P5000, quadro_p5000
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.tracker import CycleTracker, PhaseCategory
from repro.gpusim.kernel import (
    KernelLaunch,
    LaunchResult,
    ScheduledBlock,
    schedule_blocks,
    render_timeline,
)
from repro.gpusim.memory import SharedMemoryBudget, TransferModel

__all__ = [
    "DeviceSpec",
    "QUADRO_P5000",
    "quadro_p5000",
    "CostTable",
    "DEFAULT_COSTS",
    "CycleTracker",
    "PhaseCategory",
    "KernelLaunch",
    "LaunchResult",
    "ScheduledBlock",
    "schedule_blocks",
    "render_timeline",
    "SharedMemoryBudget",
    "TransferModel",
]
