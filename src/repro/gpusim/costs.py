"""Cycle cost tables and per-phase cost formulas.

The paper analyses every phase of both GANNS (Section III-C) and SONG
(Section II-D) in terms of the pool length ``l_n``, the neighbor-buffer
length ``l_t``, the point dimensionality ``n_d`` and the threads-per-block
``n_t``.  This module turns those complexity formulas into cycle counts by
attaching calibrated per-step constants.

Two kinds of constants appear:

- *Microarchitectural* constants (shuffle, ballot, shared-memory access,
  compare-exchange step, global-memory word streaming) with values in the
  range published for Pascal-class GPUs.
- A single *calibration* constant, :attr:`CostTable.time_scale`, applied only
  when cycles are converted to seconds (see :mod:`repro.gpusim.kernel`).  It
  absorbs effects the model does not represent (kernel-launch overhead,
  memory-controller contention, exposed latency) and is fitted once to the
  paper's measured SIFT1M operating point (GANNS, 458.5k queries/s at recall
  0.795).  Both GANNS and SONG — and every construction kernel — share it, so
  every *ratio* the evaluation reports is produced by the model, not by the
  calibration.

All formula helpers return float cycles for a single thread block; batched
callers multiply or vectorise as needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


def _log2_ceil(n: int) -> int:
    """Smallest ``j`` with ``2**j >= n`` (0 for ``n <= 1``)."""
    if n <= 1:
        return 0
    return int(math.ceil(math.log2(n)))


@dataclass(frozen=True)
class CostTable:
    """Per-operation cycle costs for the simulated device.

    Attributes:
        alu_cycles: One integer/logic instruction per thread.
        fma_cycles: One fused multiply-add per thread.
        shared_access_cycles: One shared-memory read or write.
        mem_word_cycles: Streaming one 4-byte word per thread from global
            memory once the access is pipelined (bandwidth-side cost).
        mem_fixed_cycles: Residual non-hidden latency charged once per
            coalesced vector load.
        shuffle_cycles: One warp shuffle (``__shfl_down_sync`` /
            ``__shfl_xor_sync``) step.
        ballot_cycles: One ``__ballot_sync`` evaluation.
        ffs_cycles: One ``__ffs`` on a 32-bit mask.
        sync_cycles: One ``__syncthreads`` barrier.
        compare_exchange_cycles: One bitonic compare-exchange step including
            its shared-memory traffic and barrier share.
        hash_probe_cycles: One open-addressing hash-table probe performed by
            SONG's host thread (global/local memory traffic dominated).
        heap_op_cycles: One sequential heap sift step on the host thread.
        host_insert_cycles: One host-thread bounded-priority-queue insertion
            step (SONG's data-structures-updating stage).
        time_scale: Cycles-to-seconds calibration multiplier (see module
            docstring).
    """

    alu_cycles: float = 1.0
    fma_cycles: float = 1.0
    shared_access_cycles: float = 3.0
    mem_word_cycles: float = 6.0
    mem_fixed_cycles: float = 8.0
    shuffle_cycles: float = 2.0
    ballot_cycles: float = 2.0
    ffs_cycles: float = 1.0
    sync_cycles: float = 6.0
    compare_exchange_cycles: float = 18.0
    hash_probe_cycles: float = 112.0
    heap_op_cycles: float = 40.0
    host_insert_cycles: float = 88.0
    time_scale: float = 6.3

    def __post_init__(self) -> None:
        for field_name, value in self.__dict__.items():
            if value <= 0:
                raise ConfigurationError(
                    f"CostTable.{field_name} must be positive, got {value!r}"
                )

    def with_overrides(self, **kwargs) -> "CostTable":
        """Return a copy of this table with some fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Shared building blocks
    # ------------------------------------------------------------------

    def vector_load_cycles(self, n_dims: int, n_threads: int) -> float:
        """Cost of cooperatively loading one ``n_dims`` float vector.

        The ``n_threads`` threads of the block each stream a contiguous
        sub-vector from global memory into registers (the paper stages both
        the query and candidate vectors in the register file).
        """
        words_per_thread = math.ceil(n_dims / n_threads)
        return words_per_thread * self.mem_word_cycles + self.mem_fixed_cycles

    def distance_compute_cycles(self, n_dims: int, n_threads: int) -> float:
        """Arithmetic cost of one distance once the vectors are loaded.

        Each thread handles ``ceil(n_dims / n_threads)`` dimensions (one
        subtract + one FMA per dimension for squared Euclidean; the dot
        products of cosine cost the same shape), then the warp reduces the
        partial sums with ``log2(n_threads)`` shuffle steps — the
        ``__shfl_down_sync`` aggregation of Section III-B phase (3).
        """
        dims_per_thread = math.ceil(n_dims / n_threads)
        compute = dims_per_thread * (self.alu_cycles + self.fma_cycles)
        reduce = _log2_ceil(n_threads) * self.shuffle_cycles
        return compute + reduce

    def single_distance_cycles(self, n_dims: int, n_threads: int) -> float:
        """Load + compute + reduce for one candidate point."""
        return (self.vector_load_cycles(n_dims, n_threads)
                + self.distance_compute_cycles(n_dims, n_threads))

    def bulk_distance_cycles(self, n_candidates: int, n_dims: int,
                             n_threads: int) -> float:
        """Phase (3) of GANNS / stage 2 of SONG: ``n_candidates`` distances.

        Candidates are processed one after another by the whole block, as in
        the paper: "Distances between vertices in T and q are computed one by
        one."
        """
        if n_candidates <= 0:
            return 0.0
        return n_candidates * self.single_distance_cycles(n_dims, n_threads)

    def adjacency_load_cycles(self, degree: int, n_threads: int) -> float:
        """Cooperative load of one fixed-degree adjacency row (int32 ids)."""
        words_per_thread = math.ceil(max(degree, 1) / n_threads)
        return words_per_thread * self.mem_word_cycles + self.mem_fixed_cycles

    # ------------------------------------------------------------------
    # GANNS per-iteration phases (Section III-B / III-C)
    # ------------------------------------------------------------------

    def ganns_candidate_locate_cycles(self, l_n: int, n_threads: int) -> float:
        """Phase (1): find the first unexplored vertex in ``N``.

        Threads read the ``explored`` flags in parallel, aggregate them with
        ``__ballot_sync`` and select the first set bit with ``__ffs``:
        ``O(l_n / n_t)`` rounds.
        """
        rounds = math.ceil(l_n / n_threads)
        per_round = (self.shared_access_cycles + self.ballot_cycles
                     + self.ffs_cycles + self.sync_cycles)
        return rounds * per_round

    def ganns_explore_cycles(self, l_t: int, n_threads: int) -> float:
        """Phase (2): load the exploring vertex's neighbors into ``T``.

        ``O(l_t / n_t)``: the adjacency row is streamed from global memory
        and the ``explored`` flags in ``T`` are initialised in parallel.
        """
        rounds = math.ceil(l_t / n_threads)
        flag_init = rounds * 2 * self.shared_access_cycles
        return self.adjacency_load_cycles(l_t, n_threads) + flag_init

    def ganns_lazy_check_cycles(self, l_n: int, l_t: int,
                                n_threads: int) -> float:
        """Phase (4): parallel binary search of ``T`` entries against ``N``.

        ``O(log(l_n) * l_t / n_t)``: each thread binary-searches the sorted
        pool ``N`` for one of its assigned ``T`` entries.
        """
        rounds = math.ceil(l_t / n_threads)
        per_probe = _log2_ceil(max(l_n, 2)) * (self.shared_access_cycles
                                               + self.alu_cycles)
        return rounds * per_probe + self.sync_cycles

    def ganns_sort_cycles(self, l_t: int, n_threads: int) -> float:
        """Phase (5): bitonic sort of ``T``.

        ``O(log^2(l_t) * l_t / n_t)`` compare-exchange steps (Batcher's
        network has ``log2(l_t) * (log2(l_t) + 1) / 2`` stages, each touching
        ``l_t / 2`` pairs).
        """
        if l_t <= 1:
            return 0.0
        log_l = _log2_ceil(l_t)
        stages = log_l * (log_l + 1) // 2
        pairs_per_stage = max(l_t // 2, 1)
        rounds_per_stage = math.ceil(pairs_per_stage / n_threads)
        return stages * rounds_per_stage * self.compare_exchange_cycles

    def ganns_merge_cycles(self, l_n: int, l_t: int, n_threads: int) -> float:
        """Phase (6): bitonic merge keeping the ``l_n`` best of ``N ∪ T``.

        ``O(log(l_n) * l_n / n_t)``: merging two sorted sequences with a
        bitonic merger needs ``log2`` stages over the combined length.
        """
        combined = l_n + l_t
        stages = _log2_ceil(max(combined, 2))
        rounds_per_stage = math.ceil(max(combined // 2, 1) / n_threads)
        return stages * rounds_per_stage * self.compare_exchange_cycles

    def ganns_structure_cycles(self, l_n: int, l_t: int,
                               n_threads: int) -> float:
        """All GANNS non-distance phases of one iteration, summed."""
        return (self.ganns_candidate_locate_cycles(l_n, n_threads)
                + self.ganns_explore_cycles(l_t, n_threads)
                + self.ganns_lazy_check_cycles(l_n, l_t, n_threads)
                + self.ganns_sort_cycles(l_t, n_threads)
                + self.ganns_merge_cycles(l_n, l_t, n_threads))

    # ------------------------------------------------------------------
    # SONG per-iteration stages (Section II-D; host-thread serialized)
    # ------------------------------------------------------------------

    def song_locate_cycles(self, degree: int, queue_len: int) -> float:
        """SONG stage 1 on the host thread: ``O(l_t)`` serial work.

        Extract-min from the candidate queue, the termination comparison
        against the worst of ``N``, then one hash probe per neighbor while
        filling ``cand``.  Nothing here divides by ``n_t`` — this is the
        serialization the paper identifies as SONG's bottleneck.
        """
        extract = self.heap_op_cycles * _log2_ceil(max(queue_len, 2))
        probes = degree * (self.hash_probe_cycles + self.alu_cycles)
        return extract + probes + self.alu_cycles

    def song_update_cycles(self, n_inserted: int, queue_len: int) -> float:
        """SONG stage 3 on the host thread: ``O(l_t * log(l_n))`` serial work.

        Each candidate is pushed into the bounded priority queue (a sift of
        ``log2(queue_len)`` host-thread steps) and recorded in the hash
        table.
        """
        sift = _log2_ceil(max(queue_len, 2)) * self.host_insert_cycles
        return n_inserted * (sift + self.hash_probe_cycles)

    # ------------------------------------------------------------------
    # Construction-side kernels (Section IV-C)
    # ------------------------------------------------------------------

    def backward_insert_cycles(self, d_max: int, n_threads: int) -> float:
        """Insert one vertex into a sorted fixed-degree adjacency row.

        Binary-search the position, then shift the tail — ``O(d_max)`` moves
        spread over the block's threads (local-graph-construction Step 2).
        """
        locate = _log2_ceil(max(d_max, 2)) * self.shared_access_cycles
        shift = math.ceil(d_max / n_threads) * 2 * self.shared_access_cycles
        return locate + shift + self.sync_cycles

    def bitonic_sort_cycles(self, n_items: int, n_threads: int) -> float:
        """Sort ``n_items`` records with a bitonic network across a block."""
        if n_items <= 1:
            return 0.0
        log_n = _log2_ceil(n_items)
        stages = log_n * (log_n + 1) // 2
        rounds = math.ceil(max(n_items // 2, 1) / n_threads)
        return stages * rounds * self.compare_exchange_cycles

    def prefix_sum_cycles(self, n_items: int, n_threads: int) -> float:
        """Work-efficient parallel scan over ``n_items`` flags."""
        if n_items <= 1:
            return float(self.alu_cycles)
        stages = 2 * _log2_ceil(n_items)
        rounds = math.ceil(n_items / max(n_threads, 1))
        per_step = self.shared_access_cycles * 2 + self.alu_cycles
        return stages * rounds * per_step

    def adjacency_merge_cycles(self, d_max: int, n_new: int,
                               n_threads: int) -> float:
        """Merge a batch of backward edges into one adjacency row.

        Step 3 of the merge phase: both lists sit in shared memory and a
        bitonic merger keeps the best ``d_max``.
        """
        combined = d_max + max(n_new, 1)
        stages = _log2_ceil(max(combined, 2))
        rounds = math.ceil(max(combined // 2, 1) / n_threads)
        load = self.adjacency_load_cycles(d_max, n_threads)
        return load + stages * rounds * self.compare_exchange_cycles


DEFAULT_COSTS = CostTable()
"""Cost table calibrated to the paper's Quadro P5000 measurements."""
