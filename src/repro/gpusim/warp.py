"""Functional semantics of the warp-level primitives used by the paper.

GANNS leans on four CUDA warp intrinsics:

- ``__shfl_down_sync`` — partial-sum aggregation in bulk distance
  computation (Section III-B, phase 3);
- ``__shfl_xor_sync`` — SONG's butterfly reduction for the same purpose;
- ``__ballot_sync`` + ``__ffs`` — locating the first unexplored vertex in
  ``N`` (Section III-B, phase 1).

This module implements their semantics over NumPy arrays, one warp at a
time, and optionally charges their cycle costs to a tracker.  The faithful
single-query GANNS kernel (:mod:`repro.core.ganns_kernel`) is written in
terms of these, which lets the test suite check that the fast batched
implementation matches an implementation assembled from the primitives the
paper actually names.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DeviceError
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.tracker import CycleTracker


def _check_lane_count(values: np.ndarray, warp_size: int) -> None:
    if values.ndim != 1:
        raise DeviceError(
            f"warp primitive expects a 1-D lane array, got shape {values.shape}"
        )
    if len(values) != warp_size:
        raise DeviceError(
            f"warp primitive expects exactly {warp_size} lanes, "
            f"got {len(values)}"
        )


def shfl_down_sync(values: np.ndarray, delta: int,
                   warp_size: int = 32) -> np.ndarray:
    """Semantics of ``__shfl_down_sync(0xffffffff, value, delta)``.

    Each lane ``i`` receives the value held by lane ``i + delta``; lanes
    whose source falls off the end of the warp keep their own value, matching
    CUDA's behaviour.
    """
    _check_lane_count(values, warp_size)
    if delta < 0:
        raise DeviceError(f"shuffle delta must be non-negative, got {delta}")
    result = values.copy()
    if delta == 0:
        return result
    sources = np.arange(warp_size) + delta
    in_range = sources < warp_size
    result[in_range] = values[sources[in_range]]
    return result


def shfl_xor_sync(values: np.ndarray, lane_mask: int,
                  warp_size: int = 32) -> np.ndarray:
    """Semantics of ``__shfl_xor_sync(0xffffffff, value, lane_mask)``.

    Lane ``i`` receives the value held by lane ``i ^ lane_mask`` — the
    butterfly exchange pattern SONG uses to aggregate partial distances.
    """
    _check_lane_count(values, warp_size)
    if lane_mask < 0 or lane_mask >= warp_size:
        raise DeviceError(
            f"xor lane mask must lie in [0, {warp_size}), got {lane_mask}"
        )
    sources = np.arange(warp_size) ^ lane_mask
    return values[sources]


def warp_reduce_sum(values: np.ndarray, warp_size: int = 32,
                    tracker: Optional[CycleTracker] = None,
                    phase: str = "warp_reduce",
                    costs: CostTable = DEFAULT_COSTS) -> float:
    """Sum all lanes with ``log2(warp_size)`` ``shfl_down`` steps.

    Returns the value lane 0 would hold after the reduction, i.e. the warp
    sum.  Charges one shuffle plus one add per step when a tracker is given.
    """
    _check_lane_count(values, warp_size)
    acc = values.astype(np.float64, copy=True)
    delta = warp_size // 2
    steps = 0
    while delta >= 1:
        acc = acc + shfl_down_sync(acc, delta, warp_size)
        delta //= 2
        steps += 1
    if tracker is not None:
        tracker.charge(phase, steps * (costs.shuffle_cycles + costs.alu_cycles))
    return float(acc[0])


def warp_reduce_sum_xor(values: np.ndarray, warp_size: int = 32,
                        tracker: Optional[CycleTracker] = None,
                        phase: str = "warp_reduce",
                        costs: CostTable = DEFAULT_COSTS) -> float:
    """Butterfly (``shfl_xor``) all-reduce; every lane ends with the sum.

    This is the aggregation SONG describes; returns the (shared) sum.
    """
    _check_lane_count(values, warp_size)
    acc = values.astype(np.float64, copy=True)
    lane_mask = warp_size // 2
    steps = 0
    while lane_mask >= 1:
        acc = acc + shfl_xor_sync(acc, lane_mask, warp_size)
        lane_mask //= 2
        steps += 1
    if tracker is not None:
        tracker.charge(phase, steps * (costs.shuffle_cycles + costs.alu_cycles))
    if not np.allclose(acc, acc[0]):
        raise DeviceError("xor butterfly reduction produced divergent lanes")
    return float(acc[0])


def ballot_sync(predicates: np.ndarray, warp_size: int = 32,
                tracker: Optional[CycleTracker] = None,
                phase: str = "ballot",
                costs: CostTable = DEFAULT_COSTS) -> int:
    """Semantics of ``__ballot_sync``: pack lane predicates into a bit mask.

    Lane ``i`` contributes bit ``i``; the full mask is returned to every
    lane (we return it once).
    """
    _check_lane_count(predicates, warp_size)
    mask = 0
    for lane, flag in enumerate(predicates):
        if flag:
            mask |= 1 << lane
    if tracker is not None:
        tracker.charge(phase, costs.ballot_cycles)
    return mask


def ffs(mask: int, tracker: Optional[CycleTracker] = None,
        phase: str = "ffs", costs: CostTable = DEFAULT_COSTS) -> int:
    """Semantics of ``__ffs``: 1-based position of the least-significant set
    bit, 0 when the mask is empty."""
    if mask < 0:
        raise DeviceError(f"ffs mask must be non-negative, got {mask}")
    if tracker is not None:
        tracker.charge(phase, costs.ffs_cycles)
    if mask == 0:
        return 0
    return (mask & -mask).bit_length()


def first_set_lane(predicates: np.ndarray, warp_size: int = 32,
                   tracker: Optional[CycleTracker] = None,
                   phase: str = "candidate_locating",
                   costs: CostTable = DEFAULT_COSTS) -> int:
    """The ballot + ffs idiom of GANNS phase (1).

    Returns the index of the first true lane, or ``-1`` when no lane's
    predicate holds.
    """
    mask = ballot_sync(predicates, warp_size, tracker, phase, costs)
    position = ffs(mask, tracker, phase, costs)
    return position - 1
