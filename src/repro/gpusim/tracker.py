"""Per-phase cycle accounting for simulated kernels.

A :class:`CycleTracker` accumulates cycles charged by algorithm code.  It is
vectorised over *lanes* so that a batched search — where each thread block
(query) progresses through its own number of iterations — can charge each
query independently: pass an index array or boolean mask to
:meth:`CycleTracker.charge` and only the active lanes are billed.

Phases carry a :class:`PhaseCategory` so the Figure 7 breakdown (distance
computation vs data-structure operations) falls straight out of the
accounting.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Iterable, List, Mapping, Optional, \
    Union

import numpy as np

from repro.errors import ConfigurationError


class PhaseCategory(enum.Enum):
    """Coarse classification of kernel phases, used for time breakdowns."""

    DISTANCE = "distance"
    STRUCTURE = "structure"
    MEMORY = "memory"
    OTHER = "other"


LaneSelector = Union[None, np.ndarray]


class CycleTracker:
    """Accumulates simulated cycles per phase across a set of lanes.

    Args:
        n_lanes: Number of independent lanes (e.g. queries, one thread block
            each).  ``1`` gives scalar accounting.
        phase_categories: Optional mapping from phase name to
            :class:`PhaseCategory`.  Phases charged without a registered
            category fall into :attr:`PhaseCategory.OTHER`.
    """

    def __init__(self, n_lanes: int = 1,
                 phase_categories: Optional[Mapping[str, PhaseCategory]] = None):
        if n_lanes <= 0:
            raise ConfigurationError(
                f"CycleTracker n_lanes must be positive, got {n_lanes}"
            )
        self._n_lanes = int(n_lanes)
        self._phases: Dict[str, np.ndarray] = {}
        self._categories: Dict[str, PhaseCategory] = dict(phase_categories or {})
        #: Observability hooks notified on every charge (see
        #: :meth:`add_listener`).
        self._listeners: List[Callable[..., None]] = []

    @property
    def n_lanes(self) -> int:
        """Number of lanes this tracker bills independently."""
        return self._n_lanes

    @property
    def phase_names(self) -> Iterable[str]:
        """Names of all phases that have been charged at least once."""
        return tuple(self._phases)

    def add_listener(self, listener: Callable[..., None]) -> None:
        """Subscribe a charge hook: ``listener(phase, cycles, lanes)``.

        The hook fires after every :meth:`charge`, with exactly the
        arguments the charge applied — this is the attachment point the
        observability layer uses to mirror kernel phase accounting into
        spans and metrics without the algorithm code knowing tracing
        exists.  Listeners must not mutate their arguments.
        """
        if not callable(listener):
            raise ConfigurationError(
                f"tracker listener must be callable, got {listener!r}"
            )
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[..., None]) -> None:
        """Unsubscribe a hook added with :meth:`add_listener`."""
        self._listeners.remove(listener)

    def register_category(self, phase: str, category: PhaseCategory) -> None:
        """Associate ``phase`` with ``category`` for breakdown reports."""
        self._categories[phase] = category

    def category_of(self, phase: str) -> PhaseCategory:
        """Category of ``phase`` (:attr:`PhaseCategory.OTHER` if unknown)."""
        return self._categories.get(phase, PhaseCategory.OTHER)

    def charge(self, phase: str, cycles: Union[float, np.ndarray],
               lanes: LaneSelector = None) -> None:
        """Add ``cycles`` to ``phase``.

        Args:
            phase: Phase name (free-form; register a category for nice
                breakdowns).
            cycles: Scalar, or an array matching the selected lanes.
            lanes: ``None`` to charge every lane; a boolean mask of length
                ``n_lanes``; or an integer index array.
        """
        bucket = self._phases.get(phase)
        if bucket is None:
            bucket = np.zeros(self._n_lanes, dtype=np.float64)
            self._phases[phase] = bucket
        if lanes is None:
            bucket += cycles
            self._notify(phase, cycles, None)
            return
        lanes = np.asarray(lanes)
        if lanes.dtype == bool:
            if lanes.shape != (self._n_lanes,):
                raise ConfigurationError(
                    f"boolean lane mask must have shape ({self._n_lanes},), "
                    f"got {lanes.shape}"
                )
            bucket[lanes] += cycles
        else:
            bucket[lanes] += cycles
        self._notify(phase, cycles, lanes)

    def _notify(self, phase: str, cycles: Union[float, np.ndarray],
                lanes: LaneSelector) -> None:
        for listener in self._listeners:
            listener(phase, cycles, lanes)

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------

    def lane_cycles(self, phase: Optional[str] = None) -> np.ndarray:
        """Per-lane cycle totals for one phase (or all phases summed)."""
        if phase is not None:
            bucket = self._phases.get(phase)
            if bucket is None:
                return np.zeros(self._n_lanes, dtype=np.float64)
            return bucket.copy()
        total = np.zeros(self._n_lanes, dtype=np.float64)
        for bucket in self._phases.values():
            total += bucket
        return total

    def total_cycles(self, phase: Optional[str] = None) -> float:
        """Sum of cycles across all lanes for one phase (or all)."""
        return float(self.lane_cycles(phase).sum())

    def phase_totals(self) -> Dict[str, float]:
        """Mapping of phase name to total cycles across lanes."""
        return {name: float(bucket.sum())
                for name, bucket in self._phases.items()}

    def category_totals(self) -> Dict[PhaseCategory, float]:
        """Total cycles per :class:`PhaseCategory` across lanes."""
        totals: Dict[PhaseCategory, float] = {}
        for name, bucket in self._phases.items():
            category = self.category_of(name)
            totals[category] = totals.get(category, 0.0) + float(bucket.sum())
        return totals

    def category_lane_cycles(self, category: PhaseCategory) -> np.ndarray:
        """Per-lane cycle totals restricted to one category."""
        total = np.zeros(self._n_lanes, dtype=np.float64)
        for name, bucket in self._phases.items():
            if self.category_of(name) is category:
                total += bucket
        return total

    def breakdown(self) -> Dict[str, float]:
        """Fractional share of total cycles per phase (sums to 1.0)."""
        totals = self.phase_totals()
        grand = sum(totals.values())
        if grand <= 0.0:
            return {name: 0.0 for name in totals}
        return {name: value / grand for name, value in totals.items()}

    def merge_from(self, other: "CycleTracker") -> None:
        """Fold another tracker's totals into this one, lane-wise.

        Both trackers must have the same number of lanes.  Categories
        registered on ``other`` are adopted for phases this tracker has not
        categorised yet.
        """
        if other.n_lanes != self._n_lanes:
            raise ConfigurationError(
                f"cannot merge trackers with different lane counts "
                f"({other.n_lanes} != {self._n_lanes})"
            )
        for name in other.phase_names:
            self.charge(name, other.lane_cycles(name))
            if name not in self._categories:
                self._categories[name] = other.category_of(name)

    def reset(self) -> None:
        """Zero all accumulated cycles, keeping category registrations."""
        self._phases.clear()
