"""Simulated GPU device specifications.

A :class:`DeviceSpec` captures the handful of hardware parameters that the
paper's complexity analysis and our cost model depend on: the number of
streaming multiprocessors (SMs), how many threads and blocks an SM can host
concurrently, warp width, clock rate, shared-memory capacity, and the PCIe
bandwidth used in the paper's data-transfer remarks.

The preset :data:`QUADRO_P5000` models the NVIDIA Quadro P5000 used in the
paper's evaluation (2560 CUDA cores across 20 SMs, 16 GB of device memory,
PCI Express 3.0 x16).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware parameters of a simulated SIMT device.

    Attributes:
        name: Human-readable device name.
        num_sms: Number of streaming multiprocessors.
        cores_per_sm: CUDA cores per SM (determines peak ALU throughput).
        warp_size: Threads per warp; the SIMT execution granularity.
        clock_ghz: Core clock in GHz used to convert cycles to seconds.
        max_threads_per_sm: Resident-thread limit per SM (occupancy bound).
        max_blocks_per_sm: Resident-block limit per SM (occupancy bound).
        max_threads_per_block: Largest legal block size.
        shared_mem_per_sm_bytes: Shared memory capacity per SM.
        shared_mem_per_block_bytes: Shared memory limit for a single block.
        register_file_per_sm_bytes: Register-file size per SM.  The paper
            (Section III-C) highlights the register file as the largest SRAM
            on chip, around 256 KB per SM, and deliberately stages query and
            point vectors there.
        global_mem_bytes: Device (global) memory capacity.
        pcie_bandwidth_gbps: Host-device transfer bandwidth in GB/s.
        pcie_latency_us: Fixed per-transfer latency in microseconds.
    """

    name: str
    num_sms: int
    cores_per_sm: int
    warp_size: int
    clock_ghz: float
    max_threads_per_sm: int
    max_blocks_per_sm: int
    max_threads_per_block: int
    shared_mem_per_sm_bytes: int
    shared_mem_per_block_bytes: int
    register_file_per_sm_bytes: int
    global_mem_bytes: int
    pcie_bandwidth_gbps: float
    pcie_latency_us: float

    def __post_init__(self) -> None:
        positive_fields = (
            "num_sms",
            "cores_per_sm",
            "warp_size",
            "clock_ghz",
            "max_threads_per_sm",
            "max_blocks_per_sm",
            "max_threads_per_block",
            "shared_mem_per_sm_bytes",
            "shared_mem_per_block_bytes",
            "register_file_per_sm_bytes",
            "global_mem_bytes",
            "pcie_bandwidth_gbps",
        )
        for field_name in positive_fields:
            value = getattr(self, field_name)
            if value <= 0:
                raise ConfigurationError(
                    f"DeviceSpec.{field_name} must be positive, got {value!r}"
                )
        if self.pcie_latency_us < 0:
            raise ConfigurationError(
                f"DeviceSpec.pcie_latency_us must be non-negative, "
                f"got {self.pcie_latency_us!r}"
            )
        if self.warp_size & (self.warp_size - 1):
            raise ConfigurationError(
                f"DeviceSpec.warp_size must be a power of two, "
                f"got {self.warp_size}"
            )
        if self.max_threads_per_block % self.warp_size:
            raise ConfigurationError(
                "DeviceSpec.max_threads_per_block must be a multiple of the "
                f"warp size ({self.warp_size}), got {self.max_threads_per_block}"
            )
        if self.shared_mem_per_block_bytes > self.shared_mem_per_sm_bytes:
            raise ConfigurationError(
                "DeviceSpec.shared_mem_per_block_bytes cannot exceed "
                "shared_mem_per_sm_bytes"
            )

    @property
    def total_cores(self) -> int:
        """Total CUDA cores on the device."""
        return self.num_sms * self.cores_per_sm

    @property
    def clock_hz(self) -> float:
        """Core clock in Hz."""
        return self.clock_ghz * 1e9

    def concurrent_blocks(self, threads_per_block: int,
                          shared_mem_per_block: int = 0) -> int:
        """Number of thread blocks the device can run concurrently.

        This is the occupancy calculation: per SM, residency is limited by
        the thread budget, the block-slot budget, and (if the kernel uses
        shared memory) the shared-memory budget.  The device-wide figure is
        the per-SM figure times the SM count.

        Args:
            threads_per_block: Threads launched per block.
            shared_mem_per_block: Bytes of shared memory each block uses.

        Returns:
            The number of blocks resident at once, at least 1 per SM grid.

        Raises:
            ConfigurationError: If the block shape is not launchable at all.
        """
        if threads_per_block <= 0:
            raise ConfigurationError(
                f"threads_per_block must be positive, got {threads_per_block}"
            )
        if threads_per_block > self.max_threads_per_block:
            raise ConfigurationError(
                f"threads_per_block={threads_per_block} exceeds device limit "
                f"{self.max_threads_per_block}"
            )
        if shared_mem_per_block > self.shared_mem_per_block_bytes:
            raise ConfigurationError(
                f"shared_mem_per_block={shared_mem_per_block} exceeds device "
                f"limit {self.shared_mem_per_block_bytes}"
            )
        by_threads = self.max_threads_per_sm // threads_per_block
        by_slots = self.max_blocks_per_sm
        per_sm = min(by_threads, by_slots)
        if shared_mem_per_block > 0:
            by_smem = self.shared_mem_per_sm_bytes // shared_mem_per_block
            per_sm = min(per_sm, by_smem)
        per_sm = max(per_sm, 1)
        return per_sm * self.num_sms

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """Return a copy of this spec with some fields replaced."""
        return replace(self, **kwargs)


QUADRO_P5000 = DeviceSpec(
    name="NVIDIA Quadro P5000 (simulated)",
    num_sms=20,
    cores_per_sm=128,
    warp_size=32,
    clock_ghz=1.607,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    max_threads_per_block=1024,
    shared_mem_per_sm_bytes=96 * 1024,
    shared_mem_per_block_bytes=48 * 1024,
    register_file_per_sm_bytes=256 * 1024,
    global_mem_bytes=16 * 1024 ** 3,
    pcie_bandwidth_gbps=10.0,
    pcie_latency_us=10.0,
)
"""The paper's evaluation GPU: 2560 cores / 20 SMs, 16 GB, PCIe 3.0 x16."""


def quadro_p5000() -> DeviceSpec:
    """Return a fresh reference to the Quadro P5000 preset.

    Provided as a callable for symmetry with test fixtures; the preset is a
    frozen dataclass, so sharing the module-level instance is also safe.
    """
    return QUADRO_P5000
