"""Memory-side models: shared-memory budgets and PCIe transfers.

Two concerns from the paper live here:

- Section III-C argues GANNS keeps per-block shared memory small (``N`` and
  ``T`` only) to preserve occupancy, and stages vectors in registers.
  :class:`SharedMemoryBudget` computes the footprint of a search block and
  validates it against the device limits.
- The "Remarks" of Section III-B argue CPU-GPU transfer is negligible
  relative to querying (~1 MB of results for 2000 queries at k=100 against
  ~10 GB/s of PCIe 3.0 x16 bandwidth).  :class:`TransferModel` quantifies
  that claim so the benchmark suite can reproduce it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError
from repro.gpusim.device import DeviceSpec


#: Bytes of one pool/buffer entry: float32 distance + int32 vertex id +
#: int32 explored flag (flags are packed into a word for alignment).
POOL_ENTRY_BYTES = 12

#: Bytes of one float32 feature-vector element.
FLOAT_BYTES = 4

#: Bytes of one int32 vertex id in an adjacency row.
ID_BYTES = 4


@dataclass(frozen=True)
class SharedMemoryBudget:
    """Shared-memory footprint of one GANNS search block.

    Attributes:
        l_n: Length of the result/candidate pool ``N``.
        l_t: Length of the neighbor buffer ``T`` (= ``d_max``).
        query_dims: Dimensions of the query vector, or 0 when the query is
            register-staged (the GANNS choice; SONG keeps it in shared
            memory).
        scratch_entries: Extra scratch entries (SONG's ``cand``/``dist``
            auxiliary arrays; 0 for GANNS).
    """

    l_n: int
    l_t: int
    query_dims: int = 0
    scratch_entries: int = 0

    def total_bytes(self) -> int:
        """Total shared-memory bytes the block requests."""
        pools = (self.l_n + self.l_t) * POOL_ENTRY_BYTES
        query = self.query_dims * FLOAT_BYTES
        scratch = self.scratch_entries * (FLOAT_BYTES + ID_BYTES)
        return pools + query + scratch

    def validate(self, device: DeviceSpec) -> int:
        """Check the footprint against the device's per-block limit.

        Returns:
            The footprint in bytes, for convenience.

        Raises:
            DeviceError: If the block would not fit.
        """
        total = self.total_bytes()
        if total > device.shared_mem_per_block_bytes:
            raise DeviceError(
                f"block shared-memory footprint {total} B exceeds the device "
                f"limit of {device.shared_mem_per_block_bytes} B "
                f"(l_n={self.l_n}, l_t={self.l_t})"
            )
        return total


@dataclass(frozen=True)
class TransferModel:
    """Host-device transfer timing over the PCIe link.

    A transfer of ``n`` bytes costs ``latency + n / bandwidth``.  The
    :meth:`overlappable` helper reflects the paper's point that CUDA streams
    let transfer overlap with kernel execution, so the *exposed* transfer
    cost of a pipelined workload is what exceeds the compute time.
    """

    device: DeviceSpec

    def transfer_seconds(self, n_bytes: int) -> float:
        """Wall time to move ``n_bytes`` across PCIe, one direction."""
        if n_bytes < 0:
            raise DeviceError(f"transfer size must be non-negative, got {n_bytes}")
        bandwidth = self.device.pcie_bandwidth_gbps * 1e9
        return self.device.pcie_latency_us * 1e-6 + n_bytes / bandwidth

    def query_upload_bytes(self, n_queries: int, n_dims: int) -> int:
        """Bytes uploaded for one batch of float32 query vectors."""
        return n_queries * n_dims * FLOAT_BYTES

    def result_download_bytes(self, n_queries: int, k: int) -> int:
        """Bytes downloaded for one batch of results (id + distance)."""
        return n_queries * k * (ID_BYTES + FLOAT_BYTES)

    def round_trip_seconds(self, n_queries: int, n_dims: int, k: int) -> float:
        """Upload queries + download results for one batch."""
        up = self.transfer_seconds(self.query_upload_bytes(n_queries, n_dims))
        down = self.transfer_seconds(self.result_download_bytes(n_queries, k))
        return up + down

    def overlappable(self, transfer_seconds: float,
                     compute_seconds: float) -> float:
        """Exposed transfer time once stream overlap hides it behind compute."""
        return max(0.0, transfer_seconds - compute_seconds)
