"""Bitonic sorting and merging networks (Batcher, 1968).

GANNS sorts the neighbor buffer ``T`` with a bitonic network (phase 5) and
merges it into the pool ``N`` with a bitonic merger (phase 6, the
Faiss-style sorted-list merge).  GGraphCon's merge phase bitonic-sorts the
backward-edge list ``E``.

Two layers are provided:

- A *faithful network*: the exact compare-exchange schedule a GPU block
  would execute, operating on one or many rows at once.  Used by the
  reference kernel and by property tests.
- Convenience wrappers that sort records keyed lexicographically by
  ``(primary, secondary, ..., id)`` — the paper breaks distance ties "by
  vertex ID", which also makes every network output deterministic.

All lengths must be powers of two; :func:`pad_pow2` pads with ``+inf`` keys
and ``-1`` ids exactly as a fixed-size GPU buffer would be padded.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import DeviceError


def is_pow2(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_pow2(n: int) -> int:
    """Smallest power of two that is ``>= n`` (1 for ``n <= 1``)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def pad_pow2(keys: np.ndarray, *payloads: np.ndarray,
             key_fill: float = np.inf,
             payload_fill: int = -1) -> Tuple[np.ndarray, ...]:
    """Pad 1-D arrays along their last axis to a power-of-two length.

    Keys are padded with ``key_fill`` (defaults to ``+inf`` so padding sinks
    to the tail under ascending order); payloads with ``payload_fill``.
    """
    n = keys.shape[-1]
    target = next_pow2(n)
    if target == n:
        return (keys,) + payloads
    pad_width = [(0, 0)] * (keys.ndim - 1) + [(0, target - n)]
    padded_keys = np.pad(keys, pad_width, constant_values=key_fill)
    padded_payloads = tuple(
        np.pad(p, pad_width, constant_values=payload_fill) for p in payloads
    )
    return (padded_keys,) + padded_payloads


def _lexicographic_greater(keys_a: Sequence[np.ndarray],
                           keys_b: Sequence[np.ndarray]) -> np.ndarray:
    """Elementwise ``a > b`` under lexicographic multi-key comparison."""
    greater = np.zeros(keys_a[0].shape, dtype=bool)
    tied = np.ones(keys_a[0].shape, dtype=bool)
    for a, b in zip(keys_a, keys_b):
        greater |= tied & (a > b)
        tied &= (a == b)
    return greater


def _compare_exchange(keys: List[np.ndarray], idx_lo: np.ndarray,
                      idx_hi: np.ndarray) -> None:
    """Swap records at (idx_lo, idx_hi) wherever lo's keys exceed hi's.

    Operates in place on every key array, along the last axis; rows (if any)
    are processed simultaneously, which mirrors the per-thread-block
    execution of the network across a batch of blocks.
    """
    lo_keys = [k[..., idx_lo] for k in keys]
    hi_keys = [k[..., idx_hi] for k in keys]
    swap = _lexicographic_greater(lo_keys, hi_keys)
    for k, lo_vals, hi_vals in zip(keys, lo_keys, hi_keys):
        k[..., idx_lo] = np.where(swap, hi_vals, lo_vals)
        k[..., idx_hi] = np.where(swap, lo_vals, hi_vals)


def bitonic_sort_network(*keys: np.ndarray) -> Tuple[np.ndarray, ...]:
    """Sort records ascending with Batcher's bitonic sorting network.

    Args:
        *keys: One or more arrays of identical shape; the last axis is
            sorted.  Records are compared lexicographically across the key
            arrays in order, so passing ``(distance, vertex_id)`` gives the
            paper's distance-then-id ordering.  Every array is both a sort
            key and a carried payload.

    Returns:
        New arrays with each row sorted.  The input arrays are not modified.

    Raises:
        DeviceError: If the last-axis length is not a power of two (pad with
            :func:`pad_pow2` first, as a GPU buffer would be).
    """
    if not keys:
        raise DeviceError("bitonic_sort_network requires at least one key array")
    n = keys[0].shape[-1]
    for k in keys:
        if k.shape != keys[0].shape:
            raise DeviceError("all key arrays must share one shape")
    if not is_pow2(n):
        raise DeviceError(
            f"bitonic network length must be a power of two, got {n}"
        )
    work = [np.array(k, copy=True) for k in keys]
    if n == 1:
        return tuple(work)
    indices = np.arange(n)
    size = 2
    while size <= n:
        # First stage of each size: "green" compare against the mirrored
        # partner, which turns two sorted runs into a bitonic sequence
        # sorted ascending.
        half = size // 2
        lo = indices[(indices % size) < half]
        hi = (lo // size) * size + (size - 1 - (lo % size))
        _compare_exchange(work, lo, hi)
        stride = half // 2
        while stride >= 1:
            lo = indices[(indices % (stride * 2)) < stride]
            hi = lo + stride
            _compare_exchange(work, lo, hi)
            stride //= 2
        size *= 2
    return tuple(work)


def bitonic_merge_network(*keys: np.ndarray) -> Tuple[np.ndarray, ...]:
    """Merge two equal-halves-sorted rows into one sorted row.

    The first half of the last axis and the second half must each already be
    sorted ascending; the second half is reversed internally to form a
    bitonic sequence and the merge stages of Batcher's network finish the
    job in ``log2(n)`` stages — the phase-(6) candidate update.
    """
    if not keys:
        raise DeviceError("bitonic_merge_network requires at least one key array")
    n = keys[0].shape[-1]
    if not is_pow2(n):
        raise DeviceError(
            f"bitonic network length must be a power of two, got {n}"
        )
    work = [np.array(k, copy=True) for k in keys]
    if n == 1:
        return tuple(work)
    half = n // 2
    for k in work:
        k[..., half:] = k[..., half:][..., ::-1]
    indices = np.arange(n)
    stride = half
    while stride >= 1:
        lo = indices[(indices % (stride * 2)) < stride]
        hi = lo + stride
        _compare_exchange(work, lo, hi)
        stride //= 2
    return tuple(work)


def merge_sorted_topm(a_keys: Sequence[np.ndarray],
                      b_keys: Sequence[np.ndarray],
                      m: int) -> Tuple[np.ndarray, ...]:
    """Keep the ``m`` smallest records of two sorted runs, sorted.

    This is the semantic contract of GANNS phase (6): ``N`` (length
    ``l_n``, sorted) and ``T`` (length ``l_t``, sorted) are merged and the
    best ``l_n`` survive.  Implemented here by concatenation + lexicographic
    argsort, which a bitonic merger provably equals when ids are unique; the
    faithful network path lives in :func:`bitonic_merge_network` and the two
    are cross-checked by the test suite.

    Args:
        a_keys: Key arrays for run A, each shaped ``(..., la)``, row-sorted.
        b_keys: Key arrays for run B, each shaped ``(..., lb)``, row-sorted.
        m: Number of records to keep.

    Returns:
        Key arrays shaped ``(..., m)``.
    """
    if len(a_keys) != len(b_keys):
        raise DeviceError("runs must carry the same number of key arrays")
    merged = [np.concatenate([a, b], axis=-1) for a, b in zip(a_keys, b_keys)]
    # np.lexsort sorts by the last key as primary, so reverse the order.
    order = np.lexsort(tuple(k for k in reversed(merged)))
    taken = tuple(np.take_along_axis(k, order, axis=-1)[..., :m]
                  for k in merged)
    return taken
