"""Work-efficient parallel prefix sum (Blelloch scan).

GGraphCon's merge phase organises the backward-edge list ``E`` into CSR
form by flagging the first edge of each starting vertex and prefix-summing
the flags (Section IV-B, merge Step 2).  This module provides the scan with
the up-sweep/down-sweep schedule a GPU block would run, plus the plain
NumPy fast path used by batched code.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceError
from repro.gpusim.sorting import is_pow2, next_pow2


def exclusive_scan(values: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum along the last axis (NumPy fast path).

    ``out[..., i] = sum(values[..., :i])``; ``out[..., 0] = 0``.
    """
    values = np.asarray(values)
    out = np.zeros_like(values)
    np.cumsum(values[..., :-1], axis=-1, out=out[..., 1:])
    return out


def inclusive_scan(values: np.ndarray) -> np.ndarray:
    """Inclusive prefix sum along the last axis (NumPy fast path)."""
    return np.cumsum(np.asarray(values), axis=-1)


def blelloch_exclusive_scan(values: np.ndarray) -> np.ndarray:
    """Exclusive scan via the Blelloch up-sweep/down-sweep schedule.

    Runs the exact sequence of compare-free add/swap steps a GPU block
    performs in shared memory.  Input length is padded to a power of two
    internally; the result has the input's length.

    Raises:
        DeviceError: If the input is not 1-D (the per-block kernel operates
            on a single shared-memory buffer).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise DeviceError(
            f"blelloch scan operates on a 1-D block buffer, got shape "
            f"{values.shape}"
        )
    n = len(values)
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    size = n if is_pow2(n) else next_pow2(n)
    buf = np.zeros(size, dtype=np.float64)
    buf[:n] = values
    # Up-sweep (reduce) phase.
    stride = 1
    while stride < size:
        idx = np.arange(2 * stride - 1, size, 2 * stride)
        buf[idx] += buf[idx - stride]
        stride *= 2
    # Down-sweep phase.
    buf[size - 1] = 0.0
    stride = size // 2
    while stride >= 1:
        idx = np.arange(2 * stride - 1, size, 2 * stride)
        left = buf[idx - stride].copy()
        buf[idx - stride] = buf[idx]
        buf[idx] += left
        stride //= 2
    return buf[:n]


def segment_starts(sorted_ids: np.ndarray) -> np.ndarray:
    """Flag array ``I``: 1 where a run of equal ids begins, else 0.

    This is exactly the flagging step of GGraphCon merge Step 2: after
    bitonic-sorting ``E`` by starting vertex, ``I[i] = 1`` iff edge ``i`` is
    the first edge of its starting vertex.
    """
    sorted_ids = np.asarray(sorted_ids)
    if sorted_ids.ndim != 1:
        raise DeviceError(
            f"segment_starts expects a 1-D id array, got shape "
            f"{sorted_ids.shape}"
        )
    if len(sorted_ids) == 0:
        return np.zeros(0, dtype=np.int64)
    flags = np.ones(len(sorted_ids), dtype=np.int64)
    flags[1:] = (sorted_ids[1:] != sorted_ids[:-1]).astype(np.int64)
    return flags


def csr_offsets_from_sorted_ids(sorted_ids: np.ndarray) -> np.ndarray:
    """Start offsets of each id run in a sorted id array (CSR row pointer).

    Returns the positions where each distinct starting vertex's edges begin,
    with a terminating sentinel equal to the array length, so segment ``i``
    spans ``[offsets[i], offsets[i + 1])`` — the ``I`` array of merge Step 3.
    """
    flags = segment_starts(sorted_ids)
    starts = np.flatnonzero(flags)
    return np.concatenate([starts, [len(sorted_ids)]]).astype(np.int64)
