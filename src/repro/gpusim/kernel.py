"""Kernel-launch scheduling: per-block cycles to elapsed wall time.

A simulated kernel launch is described by the device, the block shape
(threads, shared memory) and the per-block cycle counts produced by a
:class:`repro.gpusim.tracker.CycleTracker`.  The device can keep a limited
number of blocks resident at once (the occupancy calculation in
:meth:`repro.gpusim.device.DeviceSpec.concurrent_blocks`); excess blocks
queue, exactly as the hardware scheduler drains a grid.  The makespan of the
resulting schedule, converted through the core clock and the calibration
scale, is the launch's elapsed time.

This is the piece that turns "GANNS does fewer serialized steps per
iteration" into "GANNS answers more queries per second".
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.device import DeviceSpec, QUADRO_P5000


@dataclass(frozen=True)
class LaunchResult:
    """Outcome of scheduling one simulated kernel launch.

    Attributes:
        n_blocks: Number of thread blocks in the grid.
        concurrency: Blocks the device kept resident at once.
        total_cycles: Sum of cycles across all blocks (device *work*).
        makespan_cycles: Longest-finishing slot (device *time*, in cycles).
        seconds: Elapsed wall time after clock conversion and calibration.
    """

    n_blocks: int
    concurrency: int
    total_cycles: float
    makespan_cycles: float
    seconds: float

    @property
    def parallel_efficiency(self) -> float:
        """Work / (time x concurrency): 1.0 means a perfectly packed schedule."""
        denom = self.makespan_cycles * self.concurrency
        if denom <= 0:
            return 1.0
        return min(1.0, self.total_cycles / denom)


def _makespan(block_cycles: np.ndarray, concurrency: int) -> float:
    """Makespan of a longest-processing-time greedy schedule.

    Blocks are dispatched to the earliest-free slot in descending cost
    order, which models (and slightly idealises) the hardware block
    scheduler back-filling SMs as blocks retire.
    """
    n_blocks = len(block_cycles)
    if n_blocks == 0:
        return 0.0
    if concurrency >= n_blocks:
        return float(block_cycles.max())
    if np.all(block_cycles == block_cycles[0]):
        # Uniform blocks: closed form avoids the heap entirely.
        waves = -(-n_blocks // concurrency)
        return float(waves * block_cycles[0])
    order = np.argsort(block_cycles)[::-1]
    slots = [0.0] * concurrency
    heapq.heapify(slots)
    for idx in order:
        earliest = heapq.heappop(slots)
        heapq.heappush(slots, earliest + float(block_cycles[idx]))
    return max(slots)


class KernelLaunch:
    """One simulated kernel launch against a device.

    Args:
        device: Device to launch on (defaults to the paper's P5000).
        n_threads: Threads per block (``n_t``); must be a positive multiple
            of nothing in particular — sub-warp blocks of 4..32 threads are
            exactly what Figure 10 sweeps.
        shared_mem_bytes: Shared memory per block, for the occupancy bound.
        costs: Cost table supplying the calibration ``time_scale``.
    """

    def __init__(self, device: DeviceSpec = QUADRO_P5000, n_threads: int = 32,
                 shared_mem_bytes: int = 0,
                 costs: CostTable = DEFAULT_COSTS):
        if n_threads <= 0:
            raise ConfigurationError(
                f"n_threads must be positive, got {n_threads}"
            )
        self.device = device
        self.n_threads = int(n_threads)
        self.shared_mem_bytes = int(shared_mem_bytes)
        self.costs = costs
        # Scheduling granularity is one warp even for sub-warp blocks: a
        # 4-thread block still occupies a full warp slot on the SM.
        slot_threads = max(self.n_threads, device.warp_size)
        self._concurrency = device.concurrent_blocks(
            slot_threads, shared_mem_bytes)

    @property
    def concurrency(self) -> int:
        """Blocks the device keeps resident for this launch."""
        return self._concurrency

    def run(self, block_cycles: Union[float, Sequence[float], np.ndarray],
            n_blocks: int = 0) -> LaunchResult:
        """Schedule the grid and return its elapsed time.

        Args:
            block_cycles: Per-block cycle counts.  A scalar means every
                block costs the same; pass ``n_blocks`` alongside it.
            n_blocks: Grid size when ``block_cycles`` is a scalar; ignored
                (and validated) otherwise.

        Returns:
            A :class:`LaunchResult` with work, makespan and seconds.
        """
        if np.isscalar(block_cycles):
            if n_blocks <= 0:
                raise ConfigurationError(
                    "scalar block_cycles requires a positive n_blocks"
                )
            cycles = np.full(n_blocks, float(block_cycles))
        else:
            cycles = np.asarray(block_cycles, dtype=np.float64).ravel()
            if n_blocks and n_blocks != len(cycles):
                raise ConfigurationError(
                    f"n_blocks={n_blocks} disagrees with "
                    f"len(block_cycles)={len(cycles)}"
                )
        if np.any(cycles < 0):
            raise ConfigurationError("block cycle counts must be non-negative")
        makespan = _makespan(cycles, self._concurrency)
        seconds = self.cycles_to_seconds(makespan)
        return LaunchResult(
            n_blocks=len(cycles),
            concurrency=self._concurrency,
            total_cycles=float(cycles.sum()),
            makespan_cycles=float(makespan),
            seconds=seconds,
        )

    def cycles_to_seconds(self, cycles: float) -> float:
        """Clock conversion including the calibration ``time_scale``."""
        return float(cycles) * self.costs.time_scale / self.device.clock_hz

    def queries_per_second(self, result: LaunchResult) -> float:
        """Throughput of a one-block-per-query launch."""
        if result.seconds <= 0:
            return float("inf")
        return result.n_blocks / result.seconds


@dataclass(frozen=True)
class ScheduledBlock:
    """Placement of one block in a simulated launch schedule."""

    block: int
    slot: int
    start_cycles: float
    end_cycles: float


def schedule_blocks(block_cycles: Union[Sequence[float], np.ndarray],
                    concurrency: int) -> "list[ScheduledBlock]":
    """Full schedule of the LPT dispatch used by :func:`_makespan`.

    Returns one :class:`ScheduledBlock` per block with its slot and
    start/end times, so callers can render timelines or compute slot
    utilisation.  ``max(end_cycles)`` equals the makespan the launch
    reports.
    """
    cycles = np.asarray(block_cycles, dtype=np.float64).ravel()
    if concurrency <= 0:
        raise ConfigurationError(
            f"concurrency must be positive, got {concurrency}"
        )
    if np.any(cycles < 0):
        raise ConfigurationError("block cycle counts must be non-negative")
    order = np.argsort(cycles)[::-1]
    slots = [(0.0, s) for s in range(concurrency)]
    heapq.heapify(slots)
    placements = []
    for idx in order:
        start, slot = heapq.heappop(slots)
        end = start + float(cycles[idx])
        placements.append(ScheduledBlock(block=int(idx), slot=slot,
                                         start_cycles=start,
                                         end_cycles=end))
        heapq.heappush(slots, (end, slot))
    placements.sort(key=lambda p: p.block)
    return placements


def render_timeline(placements: "list[ScheduledBlock]", width: int = 60,
                    max_slots: int = 12) -> str:
    """ASCII Gantt chart of a launch schedule (one row per slot)."""
    if not placements:
        return "(empty schedule)"
    makespan = max(p.end_cycles for p in placements)
    if makespan <= 0:
        return "(zero-length schedule)"
    n_slots = max(p.slot for p in placements) + 1
    rows = []
    for slot in range(min(n_slots, max_slots)):
        line = [" "] * width
        for p in placements:
            if p.slot != slot:
                continue
            lo = int(p.start_cycles / makespan * (width - 1))
            hi = max(int(p.end_cycles / makespan * (width - 1)), lo)
            marker = str(p.block % 10)
            for col in range(lo, hi + 1):
                line[col] = marker
        rows.append(f"slot {slot:>3} |{''.join(line)}|")
    if n_slots > max_slots:
        rows.append(f"... {n_slots - max_slots} more slots ...")
    rows.append(f"0 cycles {' ' * (width - 18)} {makespan:,.0f} cycles")
    return "\n".join(rows)
