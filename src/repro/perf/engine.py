"""Arena-backed GANNS search: the ``fast`` execution backend.

Same six phases, same cycle charges, same results as
:func:`repro.core.ganns.ganns_search` — different execution strategy:

- work buffers come from a reused :class:`repro.perf.arena.SearchArena`;
  active queries occupy compact rows and finished queries are scattered
  to the output arrays the moment they retire, so no phase ever gathers
  ``pool[act]`` or pays for queries that are done;
- distances come from :class:`repro.perf.distance.GroupDistanceEngine`
  (precomputed norms, one gather + one einsum per iteration, compute
  dtype preserved);
- phase 4's duplicate check runs as a row-offset ``searchsorted`` over
  id-sorted pool rows — O(l_t log l_n) per query instead of the
  reference's ``(m, l_t, l_n)`` broadcast equality;
- phase 6's merge is a rank-based two-run merge — one broadcast
  comparison prices every record's merged position, instead of a
  ``lexsort`` over ``l_n + l_t`` keys.

Equivalence contract (enforced by ``tests/test_perf_equivalence.py``):
ids, iteration counts and per-phase cycle charges are *identical* to the
reference path — the charge calls below are issued with the same lane
sets, the same amounts and in the same order, so tracker listeners (e.g.
the serve engine's mirrors) observe identical streams.  The merge tie
rule ``(a_dist < b_dist) | ((a_dist == b_dist) & (a_id <= b_id))``
reproduces the reference lexsort's stability exactly (pool entries win
ties against T entries).  Distances are bit-identical for cosine/ip and
agree to last-ulp rounding for euclidean (GEMM norm expansion).

NaN distances are outside the contract: the reference lexsort and this
merge may order NaNs differently.  Finite inputs — which every dataset
loader and generator in this repo produces — never hit that case.

The traversal loop itself is engine-agnostic (:func:`_traverse`): it
runs identically over the exact :class:`GroupDistanceEngine` and over a
compressed :class:`repro.perf.quant.QuantizedGroupEngine`, which is how
:func:`ganns_search_staged` implements the two-stage quantized pipeline
— compressed traversal over a ``rerank_factor * l_n`` pool, then an
exact full-precision rerank of that pool before top-k selection.  The
staged path is **lossy** (see :mod:`repro.perf.quant`); only
:func:`ganns_search_fast` carries the byte-equivalence contract.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.core.params import SearchParams
from repro.core.results import SearchReport, make_search_tracker
from repro.errors import SearchError
from repro.graphs.adjacency import ProximityGraph
from repro.gpusim.costs import CostTable
from repro.gpusim.memory import SharedMemoryBudget
from repro.perf.arena import get_arena, get_rerank_scratch
from repro.perf.distance import make_distance_engine
from repro.perf.quant import QuantizedGroupEngine, charged_dims, \
    quantize_points

#: Mirrors repro.core.ganns._MAX_ITERATION_FACTOR — the two backends
#: must give up (and raise) at exactly the same point.
_MAX_ITERATION_FACTOR = 64

#: Batch width at which the merge switches from the rank strategy (few
#: NumPy calls, O(l_n * l_t) element work) to the step strategy
#: (l_n * ~8 calls, O(l_n + l_t) element work).  Both are exact; this
#: only trades constant factors — measured on l_n=64/l_t=16 shapes the
#: curves cross between m=64 (rank 1.6x faster) and m=256 (step 1.1x
#: faster).
_STEP_MERGE_MIN_ROWS = 128


def _traverse(graph: ProximityGraph, engine, arena, tracker,
              costs: CostTable, *, l_pool: int, e_budget: int, n_t: int,
              out_width: int, dist_dims: int, entries: np.ndarray,
              lazy_check: bool, out_ids: np.ndarray,
              out_dists: np.ndarray) -> Tuple[np.ndarray, int]:
    """Run the six-phase GANNS loop over ``engine`` until every query
    retires.

    Engine-agnostic core shared by the exact fast path and the staged
    quantized path.  The pool is ``l_pool`` wide but only the first
    ``e_budget`` slots are candidates for exploration — the staged
    search widens the pool (candidate over-fetch) without widening the
    explore window, so its iteration count tracks the exact search's.

    Args:
        engine: Any object with the ``pairs(query_rows, cand_ids)``
            distance contract (negative ids clip to row 0; callers
            overwrite those lanes).
        l_pool: Pool width (``l_n``, or ``rerank_factor * l_n`` for the
            staged path).
        dist_dims: Dimensions charged to the cost model per distance
            (the ambient ``d`` for exact engines; the compressed
            component count for quantized ones).
        out_width: Columns scattered to ``out_ids``/``out_dists`` when
            a query retires (``k``, or the whole pool for the staged
            path's rerank input).

    Returns:
        ``(iterations, n_distance_computations)``.
    """
    n_queries = len(out_ids)
    l_t = graph.d_max
    m = arena.reset(n_queries)

    # Initialisation: load the entry vertex into N.
    entry_dists = engine.pairs(arena.rows[:m], entries[:, None])[:, 0]
    arena.pool_dists[:m, 0] = entry_dists
    arena.pool_ids[:m, 0] = entries
    arena.pool_explored[:m, 0] = False
    tracker.charge("bulk_distance",
                   costs.single_distance_cycles(dist_dims, n_t))
    n_distance_computations = n_queries

    locate_cost = costs.ganns_candidate_locate_cycles(l_pool, n_t)
    explore_cost = costs.ganns_explore_cycles(l_t, n_t)
    check_cost = costs.ganns_lazy_check_cycles(l_pool, l_t, n_t)
    sort_cost = costs.ganns_sort_cycles(l_t, n_t)
    merge_cost = costs.ganns_merge_cycles(l_pool, l_t, n_t)
    per_vector_cost = costs.single_distance_cycles(dist_dims, n_t)

    iterations = np.zeros(n_queries, dtype=np.int64)
    max_iterations = _MAX_ITERATION_FACTOR * e_budget + 256
    col_a = np.arange(l_pool, dtype=np.int64)
    col_b = np.arange(l_t, dtype=np.int64)
    # Row keys for the flat duplicate probe: id ranges per row must not
    # overlap; ids live in [-1, n_vertices - 1] so a stride of
    # n_vertices + 2 keeps rows strictly separated.
    id_stride = np.int64(graph.n_vertices + 2)

    while m > 0:
        # Phase 1 — candidate locating.  query_rows[:m] is exactly the
        # reference's np.flatnonzero(active): compaction keeps rows in
        # ascending original order, so the tracker sees the same lanes.
        act = arena.query_rows[:m]
        tracker.charge("candidate_locating", locate_cost, act)
        window = ~arena.pool_explored[:m, :e_budget]
        has_work = window.any(axis=1)
        slot = np.argmax(window[has_work], axis=1)
        if not has_work.all():
            done = np.flatnonzero(~has_work)
            done_queries = arena.query_rows[done]
            out_ids[done_queries] = arena.pool_ids[done, :out_width]
            out_dists[done_queries] = arena.pool_dists[done, :out_width]
            m = arena.compact(m, has_work)
            if m == 0:
                break
            act = arena.query_rows[:m]
        rows = arena.rows[:m]
        iterations[act] += 1
        if iterations.max() > max_iterations:
            raise SearchError(
                f"search exceeded {max_iterations} iterations; the graph "
                f"is likely structurally corrupt"
            )
        exploring = arena.pool_ids[rows, slot]
        arena.pool_explored[rows, slot] = True

        # Phase 2 — neighborhood exploration: stream adjacency rows
        # into the arena's T buffer (no intermediate copy).
        tracker.charge("neighborhood_exploration", explore_cost, act)
        t_ids = arena.t_ids[:m]
        np.take(graph.neighbor_ids, exploring, axis=0, out=t_ids)
        valid = t_ids >= 0
        degrees = graph.degrees[exploring]

        # Phase 3 — bulk distance computation (negative ids clip to
        # point 0 inside the engine and are overwritten with +inf).
        t_dists = engine.pairs(act, t_ids)
        t_dists[~valid] = np.inf
        tracker.charge("bulk_distance", degrees * per_vector_cost, act)
        n_distance_computations += int(degrees.sum())

        # Phase 4 — lazy check via row-offset searchsorted: sort each
        # pool row by id once, probe all of T against the flat sorted
        # key space (rows separated by id_stride).
        if lazy_check:
            tracker.charge("lazy_check", check_cost, act)
            ids_sorted = arena.ids_sorted[:m]
            ids_sorted[:] = arena.pool_ids[:m]
            ids_sorted.sort(axis=1)
            offsets = rows[:, None] * id_stride
            flat_pool = (ids_sorted + offsets).ravel()
            flat_t = (t_ids + offsets).ravel()
            pos = np.searchsorted(flat_pool, flat_t)
            np.minimum(pos, flat_pool.size - 1, out=pos)
            duplicate = (flat_pool[pos] == flat_t).reshape(m, l_t)
            dead = duplicate | ~valid
        else:
            dead = ~valid
        t_dists[dead] = np.inf
        t_ids[dead] = -1

        # Phases 5+6 fast-outs.  Rows whose T is entirely invalidated
        # merge nothing: every T record is a (+inf, -1) pad, which loses
        # to the pool's own padding under the tie rule, so sorting and
        # merging them is the identity on the pool.  The cycle charges
        # are still issued with the full lane sets (the simulated kernel
        # runs the network regardless); only the host-side work is
        # skipped.  In converged iterations T is mostly duplicates, so
        # these paths carry the long tail of the search.
        row_live = ~dead.all(axis=1)
        n_live = int(np.count_nonzero(row_live))
        if n_live == 0:
            tracker.charge("sorting", sort_cost, act)
            tracker.charge("candidate_update", merge_cost, act)
            continue
        if n_live < min(m, _STEP_MERGE_MIN_ROWS):
            # Few live rows: sort and rank-merge just those, scattering
            # the merged pools back in place (no buffer swap, so the
            # untouched rows stay valid).  Same rank arithmetic as the
            # narrow-batch merge below — a bijection onto the merged
            # positions, pool wins ties.
            sub = np.flatnonzero(row_live)
            t_d = t_dists[sub]
            t_i = t_ids[sub]
            tracker.charge("sorting", sort_cost, act)
            order = np.lexsort((t_i, t_d), axis=1)
            t_d = np.take_along_axis(t_d, order, axis=1)
            t_i = np.take_along_axis(t_i, order, axis=1)
            tracker.charge("candidate_update", merge_cost, act)
            a_dist = arena.pool_dists[sub]
            a_id = arena.pool_ids[sub]
            a_exp = arena.pool_explored[sub]
            b_before_a = ((t_d[:, None, :] < a_dist[:, :, None])
                          | ((t_d[:, None, :] == a_dist[:, :, None])
                             & (t_i[:, None, :] < a_id[:, :, None])))
            a_rank = col_a + b_before_a.sum(axis=2)
            b_rank = col_b + l_pool - b_before_a.sum(axis=1)
            keep_a = a_rank < l_pool
            keep_b = b_rank < l_pool
            merged_d = np.empty_like(a_dist)
            merged_i = np.empty_like(a_id)
            merged_e = np.empty_like(a_exp)
            srow = np.broadcast_to(
                np.arange(n_live, dtype=np.int64)[:, None], keep_a.shape)
            merged_d[srow[keep_a], a_rank[keep_a]] = a_dist[keep_a]
            merged_i[srow[keep_a], a_rank[keep_a]] = a_id[keep_a]
            merged_e[srow[keep_a], a_rank[keep_a]] = a_exp[keep_a]
            srow_b = np.broadcast_to(
                np.arange(n_live, dtype=np.int64)[:, None], keep_b.shape)
            merged_d[srow_b[keep_b], b_rank[keep_b]] = t_d[keep_b]
            merged_i[srow_b[keep_b], b_rank[keep_b]] = t_i[keep_b]
            merged_e[srow_b[keep_b], b_rank[keep_b]] = t_i[keep_b] < 0
            arena.pool_dists[sub] = merged_d
            arena.pool_ids[sub] = merged_i
            arena.pool_explored[sub] = merged_e
            continue

        # Phase 5 — sort T by (distance, id).  Records with equal keys
        # are identical (+inf, -1) pads, so any (dist, id) sort yields
        # the reference's exact T sequence.
        tracker.charge("sorting", sort_cost, act)
        order = np.lexsort((t_ids, t_dists), axis=1)
        t_dists = np.take_along_axis(t_dists, order, axis=1)
        t_ids_sorted = np.take_along_axis(t_ids, order, axis=1)

        # Phase 6 — candidate update: merge the two sorted runs into the
        # alternate pool buffer.  Both strategies below reproduce the
        # reference lexsort's stability exactly (pool wins ties on equal
        # (dist, id)); they differ only in constant factors, so the
        # batch width picks:
        #
        # - wide batches: a two-pointer step merge — l_n vectorised
        #   steps of O(m) work each, linear in l_n + l_t;
        # - narrow batches (the long tail where a few slow queries keep
        #   iterating): a rank merge — each record's merged position is
        #   its run index plus the count of strictly-preceding records
        #   in the other run, one broadcast comparison for the whole
        #   batch.  Quadratic in l_n * l_t but a dozen NumPy calls
        #   total, which is what matters when m is tiny.
        #
        # Keys form a total order (no NaNs; see module docstring), so in
        # the rank merge the T-side count is the complement of the
        # pool-side one, and ranks are a bijection onto the merged
        # positions — every output slot below l_n is written exactly
        # once.
        tracker.charge("candidate_update", merge_cost, act)
        if m >= _STEP_MERGE_MIN_ROWS:
            # Flat views + flat cursors: every gather is a 1-D ``take``
            # (cheaper than pairwise fancy indexing), and the padded T
            # run's sentinel column means the B cursor never needs a
            # bounds check — the sentinel loses every comparison, even
            # against the pool's own (+inf, -1) padding.
            pd_flat = arena.pool_dists.ravel()
            pi_flat = arena.pool_ids.ravel()
            pe_flat = arena.pool_explored.ravel()
            arena.t_dists_pad[:m, :l_t] = t_dists
            arena.t_ids_pad[:m, :l_t] = t_ids_sorted
            td_flat = arena.t_dists_pad.ravel()
            ti_flat = arena.t_ids_pad.ravel()
            fa = arena.merge_fa[:m]
            fb = arena.merge_fb[:m]
            fa[:] = arena.row_base_a[:m]
            fb[:] = arena.row_base_b[:m]
            tmp_d = arena.out_dists
            tmp_i = arena.out_ids
            tmp_e = arena.out_explored
            filled = l_pool
            for out_slot in range(l_pool):
                a_dist = pd_flat.take(fa)
                a_id = pi_flat.take(fa)
                b_dist = td_flat.take(fb)
                b_id = ti_flat.take(fb)
                take_a = ((a_dist < b_dist)
                          | ((a_dist == b_dist) & (a_id <= b_id)))
                tmp_d[out_slot, :m] = np.where(take_a, a_dist, b_dist)
                tmp_i[out_slot, :m] = np.where(take_a, a_id, b_id)
                tmp_e[out_slot, :m] = np.where(
                    take_a, pe_flat.take(fa), b_id < 0)
                fa += take_a
                fb += ~take_a
                # Every fourth slot, test whether the tail can still
                # change: if each row's last reachable pool record wins
                # against that row's current T record, every remaining
                # output is a straight run of pool entries (both runs
                # are sorted, ties go to the pool) — one bulk gather
                # finishes the merge.  In converged iterations T is
                # mostly duplicates, so this fires almost immediately.
                if (out_slot & 3) == 3 and out_slot + 1 < l_pool:
                    rem = l_pool - 1 - out_slot
                    tail = fa + (rem - 1)
                    a_dist = pd_flat.take(tail)
                    a_id = pi_flat.take(tail)
                    b_dist = td_flat.take(fb)
                    b_id = ti_flat.take(fb)
                    pure_a = ((a_dist < b_dist)
                              | ((a_dist == b_dist) & (a_id <= b_id)))
                    if pure_a.all():
                        idx = fa[:, None] + col_a[:rem]
                        arena.pool_dists[:m, out_slot + 1:] = \
                            pd_flat.take(idx)
                        arena.pool_ids[:m, out_slot + 1:] = \
                            pi_flat.take(idx)
                        arena.pool_explored[:m, out_slot + 1:] = \
                            pe_flat.take(idx)
                        filled = out_slot + 1
                        break
            # The merged head lands back in the (live) pool buffers —
            # the wide path never swaps.
            arena.pool_dists[:m, :filled] = tmp_d[:filled, :m].T
            arena.pool_ids[:m, :filled] = tmp_i[:filled, :m].T
            arena.pool_explored[:m, :filled] = tmp_e[:filled, :m].T
        else:
            a_dist = arena.pool_dists[:m]
            a_id = arena.pool_ids[:m]
            b_before_a = ((t_dists[:, None, :] < a_dist[:, :, None])
                          | ((t_dists[:, None, :] == a_dist[:, :, None])
                             & (t_ids_sorted[:, None, :]
                                < a_id[:, :, None])))
            a_rank = col_a + b_before_a.sum(axis=2)
            b_rank = col_b + l_pool - b_before_a.sum(axis=1)
            keep_a = a_rank < l_pool
            keep_b = b_rank < l_pool
            mrows = np.broadcast_to(arena.rows[:m, None], keep_a.shape)
            alt_d, alt_i = arena.alt_dists, arena.alt_ids
            alt_e = arena.alt_explored
            alt_d[mrows[keep_a], a_rank[keep_a]] = a_dist[keep_a]
            alt_i[mrows[keep_a], a_rank[keep_a]] = a_id[keep_a]
            alt_e[mrows[keep_a], a_rank[keep_a]] = \
                arena.pool_explored[:m][keep_a]
            mrows_b = np.broadcast_to(arena.rows[:m, None], keep_b.shape)
            t_explored = t_ids_sorted < 0
            alt_d[mrows_b[keep_b], b_rank[keep_b]] = t_dists[keep_b]
            alt_i[mrows_b[keep_b], b_rank[keep_b]] = t_ids_sorted[keep_b]
            alt_e[mrows_b[keep_b], b_rank[keep_b]] = t_explored[keep_b]
            arena.swap_pools()

    return iterations, n_distance_computations


def ganns_search_fast(graph: ProximityGraph, points: np.ndarray,
                      queries: np.ndarray, params: SearchParams,
                      entries: np.ndarray,
                      costs: CostTable,
                      lazy_check: bool,
                      compute_dtype: np.dtype) -> SearchReport:
    """Run the batched GANNS search on the fast backend.

    Called by :func:`repro.core.ganns.ganns_search` after argument
    validation; ``entries`` is the already-broadcast ``(m,)`` entry-id
    array and ``compute_dtype`` the resolved distance dtype.
    """
    n_queries = len(queries)
    l_n = params.l_n
    l_t = graph.d_max
    e_budget = min(params.explore_budget, l_n)
    n_t = params.n_threads
    k = params.k

    tracker = make_search_tracker(n_queries, "ganns")
    engine = make_distance_engine(graph.metric_name, points, queries,
                                  compute_dtype)
    arena = get_arena(n_queries, l_n, l_t, compute_dtype)

    out_ids = np.empty((n_queries, k), dtype=np.int64)
    out_dists = np.empty((n_queries, k), dtype=compute_dtype)

    iterations, n_distance_computations = _traverse(
        graph, engine, arena, tracker, costs,
        l_pool=l_n, e_budget=e_budget, n_t=n_t, out_width=k,
        dist_dims=points.shape[1], entries=entries,
        lazy_check=lazy_check, out_ids=out_ids, out_dists=out_dists)

    shared_mem = SharedMemoryBudget(l_n=l_n, l_t=l_t).total_bytes()
    return SearchReport(
        algorithm="ganns",
        ids=out_ids,
        dists=out_dists,
        tracker=tracker,
        n_threads=n_t,
        shared_mem_bytes=shared_mem,
        iterations=iterations,
        n_distance_computations=n_distance_computations,
    )


#: Traversal distances of the staged path always accumulate in float32:
#: the compressed representations carry at most float32 precision, and
#: the exact rerank restores the caller's compute dtype afterwards.
_STAGED_TRAVERSAL_DTYPE = np.dtype(np.float32)


def ganns_search_staged(graph: ProximityGraph, points: np.ndarray,
                        queries: np.ndarray, params: SearchParams,
                        entries: np.ndarray,
                        costs: CostTable,
                        lazy_check: bool,
                        compute_dtype: np.dtype,
                        quant_mode: str) -> SearchReport:
    """Two-stage quantized search: compressed traversal + exact rerank.

    Stage 1 runs the ordinary six-phase traversal, but over a
    :class:`~repro.perf.quant.QuantizedGroupEngine` and with the pool
    widened to ``l_q = rerank_factor * l_n`` — the explore window stays
    at the exact search's ``e`` budget, so the wider pool is pure
    candidate over-fetch, not extra hops.  Stage 2 recomputes exact
    full-precision distances for the whole retained pool and selects the
    final top-k from those, charged as one bulk-distance pass plus one
    bitonic sort of ``l_q`` records.

    The result is **lossy** relative to the reference search: the
    compressed traversal can walk a different path, so the candidate
    pool (and hence recall) may differ.  Returned *distances* are always
    exact — stage 2 guarantees every reported (id, dist) pair is the
    true metric value in ``compute_dtype``.
    """
    n_queries = len(queries)
    n_dims = points.shape[1]
    l_n = params.l_n
    l_t = graph.d_max
    l_q = l_n * params.rerank_factor
    e_budget = min(params.explore_budget, l_n)
    n_t = params.n_threads
    k = params.k

    tracker = make_search_tracker(n_queries, "ganns")
    table = quantize_points(points, quant_mode, graph.metric_name)
    engine = QuantizedGroupEngine(table, queries)
    arena = get_arena(n_queries, l_q, l_t, _STAGED_TRAVERSAL_DTYPE)
    scratch = get_rerank_scratch(n_queries, l_q)
    pool_ids = scratch.pool_ids[:n_queries]
    pool_dists = scratch.pool_dists[:n_queries]

    iterations, n_distance_computations = _traverse(
        graph, engine, arena, tracker, costs,
        l_pool=l_q, e_budget=e_budget, n_t=n_t, out_width=l_q,
        dist_dims=charged_dims(table), entries=entries,
        lazy_check=lazy_check, out_ids=pool_ids, out_dists=pool_dists)

    # Stage 2 — exact rerank of the over-fetched pool.  One
    # full-precision bulk-distance pass over every valid candidate
    # (invalid pads clip to point 0 in the engine and are masked to
    # +inf), then a (dist, id) sort of the l_q records per query —
    # charged as one bitonic sort, the kernel that would run it.
    exact = make_distance_engine(graph.metric_name, points, queries,
                                 compute_dtype)
    all_rows = np.arange(n_queries, dtype=np.int64)
    valid = pool_ids >= 0
    exact_dists = exact.pairs(all_rows, pool_ids)
    exact_dists[~valid] = np.inf
    per_vector_cost = costs.single_distance_cycles(n_dims, n_t)
    tracker.charge("bulk_distance",
                   valid.sum(axis=1) * per_vector_cost, all_rows)
    n_distance_computations += int(valid.sum())
    tracker.charge("sorting", costs.bitonic_sort_cycles(l_q, n_t),
                   all_rows)
    order = np.lexsort((pool_ids, exact_dists), axis=1)[:, :k]
    out_ids = np.take_along_axis(pool_ids, order, axis=1)
    out_dists = np.ascontiguousarray(
        np.take_along_axis(exact_dists, order, axis=1),
        dtype=compute_dtype)

    shared_mem = SharedMemoryBudget(l_n=l_q, l_t=l_t).total_bytes()
    return SearchReport(
        algorithm="ganns",
        ids=np.ascontiguousarray(out_ids),
        dists=out_dists,
        tracker=tracker,
        n_threads=n_t,
        shared_mem_bytes=shared_mem,
        iterations=iterations,
        n_distance_computations=n_distance_computations,
    )
