"""Batched insert/merge kernels for GGraphCon's fast backend.

:func:`repro.core.construction.build_nsw_gpu` spends most of its
wall-clock in three per-element Python loops: the bidirectional
``insert_edge`` loop of local construction, the per-vertex ``N ∪ N'``
merge + edge emission of merge Step 1, and the per-segment
``merge_row`` loop of merge Step 3.  The helpers here vectorise each
loop over its whole frontier while producing *the same graph state*:

- sequential inserts into an empty row equal a sort-then-write;
- the one-element sorted insert has a closed-form position
  (``count(row < new) + count(row == new with smaller id)``), so the
  whole frontier's backward edges shift in one gather;
- the keep-first dedup of ``np.unique`` over a (dist, id)-sorted run
  equals flagging first occurrences in an (id, dist)-sorted run —
  both keep exactly the minimum-distance record per id.

Padding uses ids ``>= pad_base`` (one *distinct* dummy id per column,
so deduplication never collapses two pads) with ``+inf`` distances,
which sort behind every real record and are stripped before rows are
written back.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graphs.adjacency import PAD_DIST, PAD_ID, ProximityGraph


def _dedup_rows(ids: np.ndarray, dists: np.ndarray, limit: int,
                pad_base: int
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-wise: drop duplicate ids (keep min dist), sort, truncate.

    Args:
        ids: ``(r, w)`` candidate ids; entries ``>= pad_base`` are
            padding (each column's pad id must be distinct).
        dists: ``(r, w)`` distances (``+inf`` on padding).
        limit: Columns kept after the final (dist, id) sort.
        pad_base: First id value treated as padding.

    Returns:
        ``(ids, dists, valid)`` of shape ``(r, limit)``; ``valid`` marks
        real (non-padding) entries, which are always front-packed.
    """
    width = ids.shape[1]
    # Sort by (id, dist): duplicates of an id become adjacent with the
    # minimum-distance record first — the record np.unique's
    # return_index keeps on a (dist, id)-sorted run.
    order = np.lexsort((dists, ids), axis=1)
    ids_s = np.take_along_axis(ids, order, axis=1)
    dists_s = np.take_along_axis(dists, order, axis=1)
    dup = np.zeros(ids_s.shape, dtype=bool)
    dup[:, 1:] = ids_s[:, 1:] == ids_s[:, :-1]
    # Demote duplicates to fresh pad ids so the final sort stays total.
    pad_cols = pad_base + width + np.arange(width, dtype=np.int64)
    ids_s = np.where(dup, pad_cols[None, :], ids_s)
    dists_s = np.where(dup, np.inf, dists_s)
    order = np.lexsort((ids_s, dists_s), axis=1)
    ids_f = np.take_along_axis(ids_s, order, axis=1)[:, :limit]
    dists_f = np.take_along_axis(dists_s, order, axis=1)[:, :limit]
    return ids_f, dists_f, ids_f < pad_base


def insert_bidirectional_batch(graph: ProximityGraph, vertex: int,
                               neighbor_ids: np.ndarray,
                               dists: np.ndarray) -> None:
    """Insert ``vertex <-> u`` edges for a whole search result at once.

    Equivalent to the sequential ``insert_edge`` pairs of local
    construction under its invariants: ``vertex``'s row is empty (it was
    just created), the ``u`` are distinct, no row contains ``vertex``
    yet, and all distances are finite.
    """
    d_max = graph.d_max
    # Forward: inserting k <= d_max records into an empty row one by one
    # just builds the (dist, id)-sorted row.
    order = np.lexsort((neighbor_ids, dists))
    count = len(order)
    graph.neighbor_ids[vertex, :count] = neighbor_ids[order]
    graph.neighbor_dists[vertex, :count] = dists[order]
    graph.degrees[vertex] = count

    # Backward: a one-element sorted insert per (distinct) target row.
    rows_d = graph.neighbor_dists[neighbor_ids]
    rows_i = graph.neighbor_ids[neighbor_ids]
    degrees = graph.degrees[neighbor_ids]
    # Closed-form insert position; +inf row padding contributes nothing
    # because the inserted distances are finite.
    position = ((rows_d < dists[:, None]).sum(axis=1)
                + ((rows_d == dists[:, None])
                   & (rows_i < vertex)).sum(axis=1))
    accepted = np.flatnonzero((degrees < d_max) | (position < d_max))
    if len(accepted) == 0:
        return
    rows = neighbor_ids[accepted]
    pos = position[accepted]
    col = np.arange(d_max)
    # new[j] = old[j] for j <= pos, old[j - 1] for j > pos; the tail
    # entry falls off a full row exactly as insert_edge discards it.
    shifted = np.where(col[None, :] > pos[:, None], col[None, :] - 1,
                       col[None, :])
    new_i = np.take_along_axis(rows_i[accepted], shifted, axis=1)
    new_d = np.take_along_axis(rows_d[accepted], shifted, axis=1)
    lanes = np.arange(len(accepted))
    new_i[lanes, pos] = vertex
    new_d[lanes, pos] = dists[accepted]
    graph.neighbor_ids[rows] = new_i
    graph.neighbor_dists[rows] = new_d
    graph.degrees[rows] = np.minimum(degrees[accepted] + 1, d_max)


def merge_forward_batch(graph: ProximityGraph, group: np.ndarray,
                        search_ids: List[np.ndarray],
                        search_dists: List[np.ndarray],
                        forward_ids: np.ndarray,
                        forward_dists: np.ndarray, d_min: int
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge Step 1's ``N := top d_min of (search ∪ N')`` for a group.

    Writes every group vertex's adjacency row and returns the backward
    edge list ``(src, dst, dist)``.  The edges come out grouped by
    destination vertex instead of the reference's append order, which is
    immaterial: Step 2 sorts ``E`` by the unique key (src, dist, dst).
    """
    n_vertices = graph.n_vertices
    g_size = len(group)
    width = max(d_min + d_min, 1)
    pad_cols = n_vertices + np.arange(width, dtype=np.int64)
    all_ids = np.broadcast_to(pad_cols, (g_size, width)).copy()
    all_dists = np.full((g_size, width), np.inf, dtype=np.float64)
    for row, (ids, dists) in enumerate(zip(search_ids, search_dists)):
        all_ids[row, :len(ids)] = ids
        all_dists[row, :len(ids)] = dists
    fwd = forward_ids[group]
    fwd_d = forward_dists[group]
    fwd_valid = fwd >= 0
    fwd_counts = fwd_valid.sum(axis=1)
    for row in range(g_size):
        lo = len(search_ids[row])
        hi = lo + fwd_counts[row]
        all_ids[row, lo:hi] = fwd[row, fwd_valid[row]]
        all_dists[row, lo:hi] = fwd_d[row, fwd_valid[row]]

    ids_f, dists_f, valid = _dedup_rows(all_ids, all_dists, d_min,
                                        n_vertices)
    counts = valid.sum(axis=1)

    row_ids = np.full((g_size, graph.d_max), PAD_ID, dtype=np.int64)
    row_dists = np.full((g_size, graph.d_max), PAD_DIST, dtype=np.float64)
    row_ids[:, :d_min] = np.where(valid, ids_f, PAD_ID)
    row_dists[:, :d_min] = np.where(valid, dists_f, PAD_DIST)
    graph.neighbor_ids[group] = row_ids
    graph.neighbor_dists[group] = row_dists
    graph.degrees[group] = counts

    edge_src = ids_f[valid]
    edge_dst = np.repeat(group, counts)
    edge_dist = dists_f[valid]
    return edge_src, edge_dst, edge_dist


def merge_segments_batch(graph: ProximityGraph, src: np.ndarray,
                         dst: np.ndarray, dist: np.ndarray,
                         offsets: np.ndarray) -> None:
    """Merge Step 3: fold every CSR segment into its adjacency row.

    Segments address distinct vertices, so all rows merge independently;
    each merge keeps the best ``d_max`` unique records, exactly like
    :meth:`repro.graphs.adjacency.ProximityGraph.merge_row`.
    """
    n_vertices = graph.n_vertices
    d_max = graph.d_max
    seg_starts = np.asarray(offsets[:-1], dtype=np.int64)
    seg_lens = np.asarray(offsets[1:], dtype=np.int64) - seg_starts
    vertices = src[seg_starts]
    max_len = int(seg_lens.max())
    n_segments = len(seg_starts)

    width = d_max + max_len
    pad_cols = n_vertices + np.arange(width, dtype=np.int64)
    all_ids = np.broadcast_to(pad_cols, (n_segments, width)).copy()
    all_dists = np.full((n_segments, width), np.inf, dtype=np.float64)

    cur_i = graph.neighbor_ids[vertices]
    cur_d = graph.neighbor_dists[vertices]
    cur_valid = cur_i >= 0
    all_ids[:, :d_max] = np.where(cur_valid, cur_i, all_ids[:, :d_max])
    all_dists[:, :d_max] = np.where(cur_valid, cur_d, np.inf)

    col = np.arange(max_len)
    in_seg = col[None, :] < seg_lens[:, None]
    take = np.minimum(seg_starts[:, None] + col[None, :], len(src) - 1)
    all_ids[:, d_max:] = np.where(in_seg, dst[take], all_ids[:, d_max:])
    all_dists[:, d_max:] = np.where(in_seg, dist[take], np.inf)

    ids_f, dists_f, valid = _dedup_rows(all_ids, all_dists, d_max,
                                        n_vertices)
    graph.neighbor_ids[vertices] = np.where(valid, ids_f, PAD_ID)
    graph.neighbor_dists[vertices] = np.where(valid, dists_f, PAD_DIST)
    graph.degrees[vertices] = valid.sum(axis=1)
