"""Batched HNSW entry descent for the fast backend.

:meth:`repro.core.index.GannsIndex._entries` runs one greedy top-down
descent per query, in Python, before every HNSW search — for small
micro-batches that loop costs as much as the search itself.  This module
walks all queries in lock-step: each pass gathers the current vertices'
adjacency rows for every still-walking query at once and evaluates the
candidate distances with one einsum.

Equivalence with the per-query
:func:`repro.baselines.hnsw_cpu.hnsw_entry_descent`: queries walk
independently, so lock-stepping changes neither the visit sequence nor
the distance counts — a query that stops improving on a layer simply
goes inactive while others keep walking.  Euclidean arithmetic is
bit-identical (same float64 diff-einsum per row); cosine/ip replace a
per-row BLAS matvec with a batched einsum, which can differ in the last
ulp — entry choices still agree whenever neighbor distance gaps exceed
that noise, which the equivalence suite checks on every covered
workload.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import SearchError
from repro.graphs.adjacency import HierarchicalGraph
from repro.perf.distance import _unit_rows


def hnsw_entry_descent_batch(graph: HierarchicalGraph, points: np.ndarray,
                             queries: np.ndarray,
                             metric_name: Optional[str] = None
                             ) -> Tuple[np.ndarray, np.ndarray]:
    """Greedy top-down descent for a whole query batch.

    Args:
        graph: Hierarchical (HNSW) graph.
        points: ``(n, d)`` data matrix (shuffled order, as stored by the
            index).
        queries: ``(m, d)`` query matrix.
        metric_name: Metric override; defaults to the graph's metric.

    Returns:
        ``(entries, n_dists)`` — per-query entry vertex ids ``(m,)`` and
        per-query distance-computation counts ``(m,)``, matching the
        per-query reference descent.
    """
    if metric_name is None:
        metric_name = graph.bottom.metric_name
    m = len(queries)
    qs = np.asarray(queries, dtype=np.float64)
    pts = np.asarray(points, dtype=np.float64)
    if metric_name == "euclidean":
        pass
    elif metric_name == "cosine":
        pts = _unit_rows(pts)
        qs = _unit_rows(qs)
    elif metric_name != "ip":
        raise SearchError(
            f"unsupported metric for HNSW descent: {metric_name!r}"
        )

    def to_rows(query_rows: np.ndarray, cand_ids: np.ndarray) -> np.ndarray:
        """(a,) query rows x (a, w) candidate ids -> (a, w) distances."""
        gathered = np.take(pts, cand_ids, axis=0, mode="clip")
        if metric_name == "euclidean":
            diff = gathered - qs[query_rows][:, None, :]
            return np.einsum("atd,atd->at", diff, diff)
        sims = np.einsum("atd,ad->at", gathered, qs[query_rows])
        return 1.0 - sims if metric_name == "cosine" else -sims

    current = np.full(m, graph.entry_vertex(), dtype=np.int64)
    current_dist = to_rows(np.arange(m), current[:, None])[:, 0]
    n_dists = np.ones(m, dtype=np.int64)

    for layer_idx in range(graph.n_layers - 1, 0, -1):
        layer = graph.layers[layer_idx]
        active = np.ones(m, dtype=bool)
        while True:
            act = np.flatnonzero(active)
            if len(act) == 0:
                break
            degrees = layer.degrees[current[act]]
            has_neighbors = degrees > 0
            active[act[~has_neighbors]] = False
            act = act[has_neighbors]
            if len(act) == 0:
                break
            neighbor_ids = layer.neighbor_ids[current[act]]
            valid = neighbor_ids >= 0
            dists = to_rows(act, neighbor_ids)
            dists[~valid] = np.inf
            n_dists[act] += degrees[has_neighbors]
            # Valid neighbors are front-packed, so argmin over the
            # padded row resolves ties exactly like the reference's
            # argmin over the first `degree` entries.
            best = np.argmin(dists, axis=1)
            best_dist = dists[np.arange(len(act)), best]
            improved = best_dist < current_dist[act]
            moved = act[improved]
            current[moved] = neighbor_ids[improved, best[improved]]
            current_dist[moved] = best_dist[improved]
            active[act[~improved]] = False

    return current, n_dists
