"""Wall-clock fast path: arena-backed execution of the GANNS kernels.

The simulator charges *simulated* cycles faithfully, but the real
wall-clock of :func:`repro.core.ganns.ganns_search` and
:func:`repro.core.construction.build_nsw_gpu` is dominated by avoidable
Python/NumPy overhead — per-iteration ``np.concatenate`` churn, float64
upcasts of float32 data, ``lexsort`` over already-sorted runs, and
``(m, l_t, l_n)`` broadcast scans.  This package is the opt-in ``fast``
execution backend that removes that overhead while preserving results
and per-phase cycle charges:

- :mod:`repro.perf.backend` — backend selection
  (``SearchParams.backend`` / ``REPRO_BACKEND``; reference by default);
- :mod:`repro.perf.arena` — preallocated, reusable search buffers with
  active-query compaction;
- :mod:`repro.perf.distance` — GEMM-style dtype-preserving distance
  engines with precomputed norms;
- :mod:`repro.perf.engine` — the arena-backed GANNS search loop, plus
  the two-stage quantized pipeline (``ganns_search_staged``);
- :mod:`repro.perf.quant` — compressed distance tables
  (float16 / int8 / PCA) for the staged search's first pass
  (``SearchParams.quant`` / ``REPRO_QUANT``; **lossy**, reported as
  such — see ``docs/quantization.md``);
- :mod:`repro.perf.construction` — batched insert/merge kernels for
  GGraphCon;
- :mod:`repro.perf.descent` — batched HNSW entry descent.

The cross-backend equivalence suite (``tests/test_perf_equivalence.py``
and ``tests/test_perf_properties.py``) pins that the fast backend
returns the same neighbor ids, the same iteration counts and *exactly*
the same per-phase cycle charges as the reference path; distances agree
to dtype-scaled tolerance (the GEMM expansion of the euclidean metric
rounds differently in the last bits).  See ``docs/performance.md``.
"""

from repro.perf.arena import SearchArena, get_arena
from repro.perf.backend import (
    BACKEND_ENV_VAR,
    FAST,
    REFERENCE,
    VALID_BACKENDS,
    resolve_backend,
)
from repro.perf.descent import hnsw_entry_descent_batch
from repro.perf.distance import make_distance_engine, resolve_compute_dtype
from repro.perf.quant import (
    QUANT_ENV_VAR,
    QUANT_MODES,
    QUANT_OFF,
    VALID_QUANTS,
    QuantizedTable,
    quantize_points,
    resolve_quant,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "FAST",
    "QUANT_ENV_VAR",
    "QUANT_MODES",
    "QUANT_OFF",
    "QuantizedTable",
    "REFERENCE",
    "VALID_BACKENDS",
    "VALID_QUANTS",
    "SearchArena",
    "get_arena",
    "hnsw_entry_descent_batch",
    "make_distance_engine",
    "quantize_points",
    "resolve_backend",
    "resolve_compute_dtype",
    "resolve_quant",
]
