"""Quantized distance tables for the staged (compressed-first) search.

The GANNS kernels are distance-bound: at d=256 the per-iteration GEMM
over full-precision vectors dominates the wall clock, and the full
point matrix is the one buffer that may not fit device memory.  This
module supplies the *compressed traversal* half of the staged pipeline
(PilotANN's memory-bounded pattern, CAGRA's refinement step): the graph
walk runs over a reduced representation of the corpus, then
:func:`repro.perf.engine.ganns_search_staged` reranks the over-fetched
candidate pool with exact full-precision distances.

Three representations, selected by ``SearchParams(quant=...)`` or the
``REPRO_QUANT`` environment variable:

- ``"fp16"`` — float16 storage (2 bytes/component).  Distances are
  accumulated in float32; the representation error is the half-float
  rounding of each component.
- ``"int8"`` — per-dimension affine quantization (1 byte/component plus
  two float32 per *dimension*): ``x_hat = scale * code + beta``.  The
  per-dimension scales fold into the query once per batch, so the
  per-iteration work is one int8 gather plus one float32 GEMM — the
  traversal never dequantizes the table.
- ``"pca"`` — PCA-reduced float32 (``pca_rank(d)`` components,
  4 bytes each).  This is the raw-speed lever: the traversal GEMM
  shrinks by ``d / rank``, which is how the staged pipeline clears the
  4x wall-clock target on the d=256 workload.

**Honesty contract**: all three are lossy.  Unlike ``backend="fast"``
(byte-identical results), a quantized traversal can rank candidates
differently from the exact kernel, so the staged pipeline must rerank
and the harnesses must report recall deltas (``bench_wallclock.py``
``recall_delta`` columns, the conformance suite's per-family
``quant_recall_delta`` floors).  The serving layers namespace their
result caches by quant mode so a lossy hit can never answer an exact
request.

Tables are cached per ``(points identity, mode, metric)`` with weakref
guards — the serving engine dispatches thousands of micro-batches
against one immutable corpus, and quantization (one pass over the
matrix; one thin SVD for PCA) is paid once, not per batch.
"""

from __future__ import annotations

import os
import weakref
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, SearchError

#: Environment variable consulted when ``SearchParams.quant`` is None.
QUANT_ENV_VAR = "REPRO_QUANT"

#: The lossy representations the staged pipeline can traverse on.
QUANT_MODES = ("fp16", "int8", "pca")

#: Explicit opt-out: forces the exact path even when the environment
#: variable requests quantization.
QUANT_OFF = "off"

VALID_QUANTS = QUANT_MODES + (QUANT_OFF,)


def resolve_quant(explicit: Optional[str] = None) -> Optional[str]:
    """Resolve the quantization mode to traverse with.

    Args:
        explicit: ``SearchParams.quant`` — a mode name, ``"off"`` to
            force the exact path, or ``None`` to defer to the
            ``REPRO_QUANT`` environment variable.

    Returns:
        A mode from :data:`QUANT_MODES`, or ``None`` for exact search.

    Raises:
        ConfigurationError: On an unknown mode name, whether it came
            from code or from the environment.
    """
    if explicit is not None:
        if explicit == QUANT_OFF:
            return None
        if explicit not in QUANT_MODES:
            raise ConfigurationError(
                f"unknown quantization mode {explicit!r}; valid: "
                f"{VALID_QUANTS}"
            )
        return explicit
    env = os.environ.get(QUANT_ENV_VAR)
    if env is None or env == "" or env == QUANT_OFF:
        return None
    if env not in QUANT_MODES:
        raise ConfigurationError(
            f"{QUANT_ENV_VAR}={env!r} is not a valid quantization mode; "
            f"valid: {VALID_QUANTS}"
        )
    return env


#: Stored bits per retained component, by mode (PCA keeps float32
#: components — its saving is rank reduction, not narrower words).
QUANT_BITS = {"fp16": 16, "int8": 8, "pca": 32}


def pca_rank(n_dims: int) -> int:
    """Retained components for ``mode="pca"``: ``max(16, d // 8)``.

    Every synthetic generator (and the descriptor datasets they stand in
    for) concentrates near a low-dimensional manifold, so an 8x ambient
    reduction keeps the neighborhood structure the traversal needs; the
    16-component floor stops tiny-d corpora from degenerating.  Capped
    at ``d`` — below 16 ambient dimensions PCA is a rotation, not a
    reduction, and only exercises the pipeline.
    """
    return min(int(n_dims), max(16, int(n_dims) // 8))


def _unit_rows(matrix: np.ndarray) -> np.ndarray:
    """Row-normalise (zero rows pass through) — the reference formula."""
    norms = np.linalg.norm(matrix, axis=-1, keepdims=True)
    return matrix / np.where(norms > 0.0, norms, 1.0)


class QuantizedTable:
    """One corpus in one compressed representation.

    Built by :func:`quantize_points`; consumed by
    :class:`QuantizedGroupEngine` (traversal distances) and by the
    footprint reporters (``bytes_per_vector`` columns in the bake-off
    and wall-clock harnesses).

    Attributes:
        mode: ``"fp16"``, ``"int8"`` or ``"pca"``.
        metric_name: Metric the table was prepared for (cosine tables
            store normalised rows).
        codes: The stored matrix — ``(n, d)`` float16/int8, or
            ``(n, rank)`` float32 for PCA.
        code_norms: ``(n,)`` float32 squared norms of the represented
            vectors (euclidean only; ``None`` otherwise).
        scales / betas: int8 affine parameters (``x_hat = scale * code
            + beta``); ``None`` for other modes.
        mean / components: PCA centering vector and ``(d, rank)``
            projection; ``mean`` is ``None`` for inner-product metrics
            (centering would shift the products).
    """

    __slots__ = ("mode", "metric_name", "n_points", "n_dims", "codes",
                 "code_norms", "scales", "betas", "mean", "components")

    def __init__(self, mode: str, metric_name: str, n_points: int,
                 n_dims: int, codes: np.ndarray,
                 code_norms: Optional[np.ndarray] = None,
                 scales: Optional[np.ndarray] = None,
                 betas: Optional[np.ndarray] = None,
                 mean: Optional[np.ndarray] = None,
                 components: Optional[np.ndarray] = None):
        self.mode = mode
        self.metric_name = metric_name
        self.n_points = int(n_points)
        self.n_dims = int(n_dims)
        self.codes = codes
        self.code_norms = code_norms
        self.scales = scales
        self.betas = betas
        self.mean = mean
        self.components = components

    # ------------------------------------------------------------------
    # Footprint accounting (the corpus-doesn't-fit scenario)
    # ------------------------------------------------------------------

    @property
    def bits_per_component(self) -> int:
        """Stored bits per retained component (32 for PCA float32)."""
        return int(self.codes.dtype.itemsize) * 8

    @property
    def rank(self) -> int:
        """Retained components per vector (``d`` for fp16/int8)."""
        return int(self.codes.shape[1])

    def bytes_per_vector(self) -> float:
        """Device bytes per corpus vector, side tables amortised in.

        int8 carries two float32 per *dimension* (scale, beta) shared by
        every vector; euclidean tables carry one float32 norm per
        vector.  Both are charged here so the footprint columns are
        honest about the whole resident representation.
        """
        per_vector = self.codes.shape[1] * self.codes.dtype.itemsize
        if self.code_norms is not None:
            per_vector += self.code_norms.dtype.itemsize
        shared = 0
        for side in (self.scales, self.betas, self.mean, self.components):
            if side is not None:
                shared += side.nbytes
        return float(per_vector) + shared / max(self.n_points, 1)

    def memory_bytes(self) -> int:
        """Total device bytes of this representation."""
        return int(round(self.bytes_per_vector() * self.n_points))

    # ------------------------------------------------------------------
    # Reconstruction (property tests pin the round-trip error bound)
    # ------------------------------------------------------------------

    def dequantize(self) -> np.ndarray:
        """Reconstruct the represented vectors as float32.

        fp16/int8 reconstruct in the ambient space (the round-trip
        error bound of the property suite); PCA back-projects through
        its components, which only recovers the retained subspace.
        """
        if self.mode == "fp16":
            return self.codes.astype(np.float32)
        if self.mode == "int8":
            return (self.codes.astype(np.float32) * self.scales
                    + self.betas)
        back = self.codes @ self.components.T
        if self.mean is not None:
            back = back + self.mean
        return back.astype(np.float32, copy=False)


def _prepare_source(points: np.ndarray, metric_name: str) -> np.ndarray:
    """The float32 matrix a table represents (cosine pre-normalises)."""
    if metric_name not in ("euclidean", "cosine", "ip"):
        raise SearchError(
            f"unsupported metric for quantized search: {metric_name!r}"
        )
    source = np.ascontiguousarray(points, dtype=np.float32)
    if metric_name == "cosine":
        source = _unit_rows(source)
    return source


def _build_table(points: np.ndarray, mode: str,
                 metric_name: str) -> QuantizedTable:
    source = _prepare_source(points, metric_name)
    n, d = source.shape

    if mode == "fp16":
        codes = source.astype(np.float16)
        represented = codes.astype(np.float32)
        norms = (np.einsum("nd,nd->n", represented, represented)
                 if metric_name == "euclidean" else None)
        return QuantizedTable(mode, metric_name, n, d, codes,
                              code_norms=norms)

    if mode == "int8":
        lo = source.min(axis=0)
        hi = source.max(axis=0)
        span = hi - lo
        # Constant dimensions quantize to code 0 with beta carrying the
        # value; a unit scale keeps the affine map invertible.
        scales = np.where(span > 0.0, span / 255.0, 1.0).astype(np.float32)
        codes = np.clip(np.rint((source - lo) / scales) - 128.0,
                        -128, 127).astype(np.int8)
        betas = (lo + 128.0 * scales).astype(np.float32)
        represented = codes.astype(np.float32) * scales + betas
        norms = (np.einsum("nd,nd->n", represented, represented)
                 if metric_name == "euclidean" else None)
        return QuantizedTable(mode, metric_name, n, d, codes,
                              code_norms=norms, scales=scales,
                              betas=betas)

    if mode == "pca":
        rank = min(pca_rank(d), n)
        # Centering is distance-preserving for euclidean but shifts
        # inner products, so cosine/ip project the raw (normalised)
        # rows.
        mean = (source.mean(axis=0, dtype=np.float64).astype(np.float32)
                if metric_name == "euclidean" else None)
        centered = source - mean if mean is not None else source
        # Thin SVD of the (possibly centered) corpus; the top right
        # singular vectors are the PCA basis.  Deterministic for a
        # given input matrix, which the byte-determinism gate relies
        # on.
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        components = np.ascontiguousarray(vt[:rank].T, dtype=np.float32)
        codes = np.ascontiguousarray(centered @ components)
        norms = (np.einsum("nr,nr->n", codes, codes)
                 if metric_name == "euclidean" else None)
        return QuantizedTable(mode, metric_name, n, d, codes,
                              code_norms=norms, mean=mean,
                              components=components)

    raise ConfigurationError(
        f"unknown quantization mode {mode!r}; valid: {VALID_QUANTS}"
    )


#: ``id(points) -> (weakref to points, {(mode, metric): table})`` — the
#: same identity-keyed weakref pattern as the prepared-points cache in
#: :mod:`repro.perf.distance`.
_TABLE_CACHE: dict = {}
_TABLE_CACHE_MAX = 8


def quantize_points(points: np.ndarray, mode: str,
                    metric_name: str = "euclidean") -> QuantizedTable:
    """Build (or fetch the cached) quantized table for one corpus.

    Args:
        points: ``(n, d)`` data matrix.
        mode: A mode from :data:`QUANT_MODES`.
        metric_name: ``"euclidean"``, ``"cosine"`` or ``"ip"``.

    Returns:
        The corpus's :class:`QuantizedTable` in that representation.
    """
    points = np.asarray(points)
    if points.ndim != 2 or points.shape[0] == 0:
        raise SearchError(
            f"points must be a non-empty 2-D matrix, got shape "
            f"{points.shape}"
        )
    key = id(points)
    entry = _TABLE_CACHE.get(key)
    if entry is not None:
        ref, by_variant = entry
        if ref() is points:
            table = by_variant.get((mode, metric_name))
            if table is not None:
                return table
        else:
            del _TABLE_CACHE[key]

    table = _build_table(points, mode, metric_name)

    try:
        ref = weakref.ref(points)
    except TypeError:
        return table  # non-weakrefable view: just skip the cache
    entry = _TABLE_CACHE.get(key)
    if entry is None or entry[0]() is not points:
        if len(_TABLE_CACHE) >= _TABLE_CACHE_MAX:
            _TABLE_CACHE.clear()
        _TABLE_CACHE[key] = (ref, {})
    _TABLE_CACHE[key][1][(mode, metric_name)] = table
    return table


class QuantizedGroupEngine:
    """Compressed-space drop-in for :class:`GroupDistanceEngine`.

    Same ``pairs(query_rows, cand_ids)`` interface as the exact engine,
    so the traversal loop in :mod:`repro.perf.engine` runs unchanged —
    only the arithmetic differs:

    - fp16: gather half floats, accumulate the GEMM in float32;
    - int8: the affine map folds into the query (``scales * q`` once
      per batch), so the hot path is an int8 gather plus one float32
      einsum — codes are never dequantized;
    - pca: queries project into the retained subspace once, then the
      traversal is the ordinary norm-expansion GEMM at the reduced
      rank.

    All distances return float32 (the staged pipeline's traversal
    dtype); exactness is restored by the full-precision rerank, never
    here.
    """

    def __init__(self, table: QuantizedTable, queries: np.ndarray):
        self.table = table
        self.metric_name = table.metric_name
        queries = np.ascontiguousarray(queries, dtype=np.float32)
        if table.metric_name == "cosine":
            queries = _unit_rows(queries)

        if table.mode == "int8":
            # Fold the per-dimension affine map into the query:
            # x_hat . q = (scales * q) . code + betas . q.
            self.queries = queries * table.scales
            self.query_bias = queries @ table.betas
        elif table.mode == "pca":
            projected = queries - table.mean if table.mean is not None \
                else queries
            self.queries = np.ascontiguousarray(
                projected @ table.components)
            self.query_bias = None
        else:  # fp16
            self.queries = queries
            self.query_bias = None

        if table.metric_name == "euclidean":
            self.query_norms = np.einsum("mr,mr->m", self.queries,
                                         self.queries)
            if table.mode == "int8":
                # ||q||^2 must be in the *ambient* space (the folded
                # queries are scaled); recompute from the raw rows.
                self.query_norms = np.einsum("md,md->m", queries, queries)
        else:
            self.query_norms = None

    def pairs(self, query_rows: np.ndarray,
              cand_ids: np.ndarray) -> np.ndarray:
        """Compressed-space distances, same contract as the exact engine.

        Negative candidate ids clip to row 0; callers overwrite those
        lanes with ``inf`` afterwards, exactly as the exact path does.
        """
        table = self.table
        gathered = np.take(table.codes, cand_ids, axis=0, mode="clip")
        if gathered.dtype != np.float32:
            gathered = gathered.astype(np.float32)
        qs = self.queries[query_rows]
        sims = np.einsum("mtr,mr->mt", gathered, qs)
        if self.query_bias is not None:
            sims = sims + self.query_bias[query_rows, None]
        if self.metric_name == "euclidean":
            return (np.take(table.code_norms, cand_ids, mode="clip")
                    - 2.0 * sims + self.query_norms[query_rows, None])
        if self.metric_name == "cosine":
            return np.float32(1.0) - sims
        return -sims


def charged_dims(table: QuantizedTable) -> int:
    """Dimensions to charge the cost model per traversal distance.

    The simulated kernel prices a distance by its float32 component
    count; compressed representations process more components per cycle
    (half2 math for fp16, DP4A-style int8 lanes) or simply fewer of
    them (PCA).  Lossy traversal makes no charge-equivalence promise —
    this is the staged pipeline's own cost model, reconciled end to end
    by the zero-drift checks but *different* from the exact kernel's.
    """
    if table.mode == "fp16":
        return max(1, (table.n_dims + 1) // 2)
    if table.mode == "int8":
        return max(1, (table.n_dims + 3) // 4)
    return table.rank
