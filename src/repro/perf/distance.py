"""GEMM-style distance engines for the fast execution backend.

The reference :func:`repro.core.ganns._group_distance_fn` re-casts the
whole point matrix to float64 on every search invocation and, for the
euclidean metric, materialises a ``(m, l_t, d)`` difference tensor per
iteration.  The engines here remove both costs:

- **dtype preservation** — float32 data stays float32 end to end (the
  compute dtype is explicit, never silently widened);
- **precomputed norms** — euclidean distances are evaluated as
  ``‖p‖² − 2·p·q + ‖q‖²`` with ``‖p‖²`` computed once per engine and
  ``‖q‖²`` once per batch, so the per-iteration work is a single
  gather plus one GEMM-shaped einsum (cosine pre-normalises, inner
  product is the einsum alone);
- **preparation caching** — the cast matrix and its norms are cached
  per ``(points, metric, dtype)`` and reused across search calls (the
  serving engine dispatches thousands of small batches against one
  immutable point set).  The cache holds weak references, so it never
  extends a point matrix's lifetime.

Numerical contract: cosine and inner-product evaluation is the *same*
arithmetic as the reference (bit-identical results); the euclidean norm
expansion is algebraically equal but rounds differently in the last
~2 ulp, so distances agree to a dtype-scaled tolerance and neighbor
*identities* agree whenever candidate distance gaps exceed that noise —
which the cross-backend equivalence suite enforces on every covered
workload.
"""

from __future__ import annotations

import weakref
from typing import Optional

import numpy as np

from repro.errors import SearchError

#: Compute dtypes the engines accept.
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

#: Distances are accumulated in float64 unless the caller pins another
#: dtype explicitly — the historical (and golden-file) behaviour.
DEFAULT_COMPUTE_DTYPE = np.dtype(np.float64)


def resolve_compute_dtype(points: np.ndarray, queries: np.ndarray,
                          dtype: Optional[object] = None) -> np.dtype:
    """Resolve (and validate) the distance compute dtype.

    Args:
        points: ``(n, d)`` data matrix.
        queries: ``(m, d)`` query matrix.
        dtype: Explicit compute dtype (``np.float32``/``np.float64``),
            or ``None`` for the pinned default (float64).

    Returns:
        The dtype every distance in this search is computed in.

    Raises:
        SearchError: When points and queries carry *different* dtypes —
            floating or otherwise (an int32 query matrix against a
            float64 corpus is the same silent-upcast trap) — or when an
            unsupported dtype is requested.
    """
    p_dtype, q_dtype = points.dtype, queries.dtype
    if p_dtype != q_dtype:
        raise SearchError(
            f"mixed-dtype search: points are {p_dtype} but queries are "
            f"{q_dtype}; cast one side explicitly (e.g. "
            f"queries.astype(points.dtype)) so no silent upcast hides "
            f"the copy"
        )
    if dtype is None:
        return DEFAULT_COMPUTE_DTYPE
    resolved = np.dtype(dtype)
    if resolved not in SUPPORTED_DTYPES:
        raise SearchError(
            f"unsupported compute dtype {resolved}; valid: "
            f"{tuple(str(d) for d in SUPPORTED_DTYPES)}"
        )
    return resolved


class _PreparedPoints:
    """Cast point matrix plus precomputed per-point quantities."""

    __slots__ = ("matrix", "norms")

    def __init__(self, matrix: np.ndarray, norms: Optional[np.ndarray]):
        self.matrix = matrix
        self.norms = norms


#: ``id(points) -> (weakref to points, {(metric, dtype): prepared})``.
#: Keyed by object identity with a weakref guard: when the original
#: matrix dies (or the id is reused by a different array), the entry is
#: invalid and gets rebuilt.
_PREPARED_CACHE: dict = {}
_PREPARED_CACHE_MAX = 8


def _unit_rows(matrix: np.ndarray) -> np.ndarray:
    """Row-normalise (zero rows pass through) — the reference formula."""
    norms = np.linalg.norm(matrix, axis=-1, keepdims=True)
    return matrix / np.where(norms > 0.0, norms, 1.0)


def _prepare_points(points: np.ndarray, metric_name: str,
                    dtype: np.dtype) -> _PreparedPoints:
    """Cast + precompute for one point matrix, with identity caching."""
    key = id(points)
    entry = _PREPARED_CACHE.get(key)
    if entry is not None:
        ref, by_variant = entry
        if ref() is points:
            prepared = by_variant.get((metric_name, dtype))
            if prepared is not None:
                return prepared
        else:
            del _PREPARED_CACHE[key]

    cast = np.ascontiguousarray(points, dtype=dtype)
    if metric_name == "euclidean":
        prepared = _PreparedPoints(
            cast, np.einsum("nd,nd->n", cast, cast))
    elif metric_name == "cosine":
        prepared = _PreparedPoints(_unit_rows(cast), None)
    elif metric_name == "ip":
        prepared = _PreparedPoints(cast, None)
    else:
        raise SearchError(
            f"unsupported metric for GANNS search: {metric_name!r}"
        )

    try:
        ref = weakref.ref(points)
    except TypeError:
        return prepared  # non-weakrefable view: just skip the cache
    entry = _PREPARED_CACHE.get(key)
    if entry is None or entry[0]() is not points:
        if len(_PREPARED_CACHE) >= _PREPARED_CACHE_MAX:
            _PREPARED_CACHE.clear()
        _PREPARED_CACHE[key] = (ref, {})
    _PREPARED_CACHE[key][1][(metric_name, dtype)] = prepared
    return prepared


class GroupDistanceEngine:
    """Vectorised (active-queries x candidates) distance evaluator.

    The fast-path counterpart of the reference closure: one instance is
    built per search call (cheap — point preparation is cached) and its
    :meth:`pairs` method is invoked once per iteration.

    Args:
        metric_name: ``"euclidean"``, ``"cosine"`` or ``"ip"``.
        points: ``(n, d)`` data matrix.
        queries: ``(m, d)`` query matrix.
        dtype: Compute dtype (see :func:`resolve_compute_dtype`).
    """

    def __init__(self, metric_name: str, points: np.ndarray,
                 queries: np.ndarray, dtype: np.dtype):
        self.metric_name = metric_name
        self.dtype = np.dtype(dtype)
        prepared = _prepare_points(points, metric_name, self.dtype)
        self.points = prepared.matrix
        self.point_norms = prepared.norms
        queries = np.ascontiguousarray(queries, dtype=self.dtype)
        if metric_name == "euclidean":
            self.queries = queries
            self.query_norms = np.einsum("md,md->m", queries, queries)
        elif metric_name == "cosine":
            self.queries = _unit_rows(queries)
            self.query_norms = None
        else:  # ip (validated in _prepare_points)
            self.queries = queries
            self.query_norms = None

    def pairs(self, query_rows: np.ndarray,
              cand_ids: np.ndarray) -> np.ndarray:
        """Distances from each listed query to its candidate row.

        Args:
            query_rows: ``(m,)`` indices into the query matrix.
            cand_ids: ``(m, w)`` candidate point ids; negative ids are
                treated as id 0 (callers overwrite those lanes with
                ``inf`` afterwards, exactly as the reference does).

        Returns:
            ``(m, w)`` distances in the engine's compute dtype.
        """
        gathered = np.take(self.points, cand_ids, axis=0, mode="clip")
        qs = self.queries[query_rows]
        if self.metric_name == "euclidean":
            dots = np.einsum("mtd,md->mt", gathered, qs)
            return (np.take(self.point_norms, cand_ids, mode="clip")
                    - 2.0 * dots + self.query_norms[query_rows, None])
        sims = np.einsum("mtd,md->mt", gathered, qs)
        if self.metric_name == "cosine":
            return self.dtype.type(1.0) - sims
        return -sims


def make_distance_engine(metric_name: str, points: np.ndarray,
                         queries: np.ndarray,
                         dtype: np.dtype) -> GroupDistanceEngine:
    """Build the fast-path distance engine for one search invocation."""
    return GroupDistanceEngine(metric_name, points, queries, dtype)
