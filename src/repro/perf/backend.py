"""Execution-backend selection for the wall-clock fast path.

Two backends execute the same algorithms with the same cycle accounting:

- ``"reference"`` — the original, deliberately transparent NumPy
  implementation (one allocation per conceptual buffer, phases written
  exactly as the paper describes them).  The default everywhere.
- ``"fast"`` — the arena-backed implementation in :mod:`repro.perf`:
  preallocated work buffers, active-query compaction, GEMM distance
  evaluation, and linear two-run merges.

Selection precedence: an explicit value (``SearchParams.backend`` or a
function argument) wins; otherwise the ``REPRO_BACKEND`` environment
variable; otherwise ``"reference"``.  Tests therefore always exercise
the reference path unless they opt in, and a whole deployment can flip
to the fast path with one environment variable.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ConfigurationError

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV_VAR = "REPRO_BACKEND"

REFERENCE = "reference"
FAST = "fast"
VALID_BACKENDS = (REFERENCE, FAST)


def resolve_backend(explicit: Optional[str] = None) -> str:
    """Resolve the execution backend to use.

    Args:
        explicit: An explicit backend name (e.g. from
            ``SearchParams.backend``), or ``None`` to defer to the
            ``REPRO_BACKEND`` environment variable.

    Returns:
        ``"fast"`` or ``"reference"``.

    Raises:
        ConfigurationError: On an unknown backend name, whether it came
            from code or from the environment.
    """
    if explicit is not None:
        if explicit not in VALID_BACKENDS:
            raise ConfigurationError(
                f"unknown execution backend {explicit!r}; valid: "
                f"{VALID_BACKENDS}"
            )
        return explicit
    env = os.environ.get(BACKEND_ENV_VAR)
    if env is None or env == "":
        return REFERENCE
    if env not in VALID_BACKENDS:
        raise ConfigurationError(
            f"{BACKEND_ENV_VAR}={env!r} is not a valid execution backend; "
            f"valid: {VALID_BACKENDS}"
        )
    return env
