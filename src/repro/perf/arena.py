"""Preallocated, reusable buffers for the arena-backed GANNS search.

The reference search allocates fresh arrays every iteration: two
``np.concatenate`` calls build the ``(m, l_n + l_t)`` merge input, every
phase gathers ``pool[act]`` into a new array, and the results scatter
back.  A :class:`SearchArena` removes all of that:

- every buffer the six phases touch is allocated **once** and sliced per
  iteration (double-buffered pools, so the merge writes straight into
  the alternate buffer and the two swap);
- active queries live in **compact** rows ``0..m-1``: when queries
  finish, survivors are copied up once and finished queries never pay
  gather costs again.  ``query_rows[:m]`` maps compact rows back to the
  caller's query indices (always sorted ascending, so cycle charges hit
  the tracker with exactly the lane sets the reference path uses).

Arenas are cached per ``(l_n, l_t, dtype)`` shape class and reused
across search calls when capacity allows — the serving engine dispatches
thousands of micro-batches with identical parameters, and re-using one
arena keeps the steady-state allocation rate of a replay near zero.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


class SearchArena:
    """Work buffers for one batched GANNS search.

    Args:
        capacity: Maximum number of queries (compact rows).
        l_n: Pool length.
        l_t: Neighbor-buffer length (the graph's ``d_max``).
        dtype: Distance compute dtype (pool distances are stored in it).
    """

    def __init__(self, capacity: int, l_n: int, l_t: int,
                 dtype: np.dtype):
        self.capacity = int(capacity)
        self.l_n = int(l_n)
        self.l_t = int(l_t)
        self.dtype = np.dtype(dtype)
        shape_n = (self.capacity, self.l_n)
        # Double-buffered pool: the merge phase reads buffer A and
        # writes buffer B, then the two swap roles.
        self.pool_dists = np.empty(shape_n, dtype=self.dtype)
        self.pool_ids = np.empty(shape_n, dtype=np.int64)
        self.pool_explored = np.empty(shape_n, dtype=bool)
        self.alt_dists = np.empty(shape_n, dtype=self.dtype)
        self.alt_ids = np.empty(shape_n, dtype=np.int64)
        self.alt_explored = np.empty(shape_n, dtype=bool)
        #: Pool ids re-sorted by id (the lazy-check probe structure).
        self.ids_sorted = np.empty(shape_n, dtype=np.int64)
        #: Neighbor buffer T (adjacency rows stream into it in place).
        self.t_ids = np.empty((self.capacity, self.l_t), dtype=np.int64)
        #: Compact row -> original query row (always sorted ascending).
        self.query_rows = np.empty(self.capacity, dtype=np.int64)
        self.rows = np.arange(self.capacity, dtype=np.int64)
        # Wide-batch step-merge state: flat cursors into the ravelled
        # pool (stride l_n) and the ravelled padded T run (stride
        # l_t + 1; the extra column is a (+inf, INT64_MAX) sentinel
        # that loses every comparison, so the cursor needs no bounds
        # check).  Output slots accumulate in (l_n, capacity) layout —
        # each slot is one contiguous row write — and transpose back
        # into the pool when the merge finishes.
        self.merge_fa = np.empty(self.capacity, dtype=np.int64)
        self.merge_fb = np.empty(self.capacity, dtype=np.int64)
        self.row_base_a = self.rows * self.l_n
        self.row_base_b = self.rows * (self.l_t + 1)
        self.t_dists_pad = np.empty((self.capacity, self.l_t + 1),
                                    dtype=self.dtype)
        self.t_ids_pad = np.empty((self.capacity, self.l_t + 1),
                                  dtype=np.int64)
        self.t_dists_pad[:, self.l_t] = np.inf
        self.t_ids_pad[:, self.l_t] = np.iinfo(np.int64).max
        self.out_dists = np.empty((self.l_n, self.capacity),
                                  dtype=self.dtype)
        self.out_ids = np.empty((self.l_n, self.capacity),
                                dtype=np.int64)
        self.out_explored = np.empty((self.l_n, self.capacity),
                                     dtype=bool)

    def reset(self, n_queries: int) -> int:
        """Prepare for a fresh search of ``n_queries`` queries.

        Pools are padded with ``(+inf, -1, explored=True)`` — never
        selected for exploration, always sorted to the tail.

        Returns:
            The number of active compact rows (== ``n_queries``).
        """
        if n_queries > self.capacity:
            raise ValueError(
                f"arena capacity {self.capacity} cannot hold "
                f"{n_queries} queries"
            )
        m = int(n_queries)
        self.pool_dists[:m] = np.inf
        self.pool_ids[:m] = -1
        self.pool_explored[:m] = True
        self.query_rows[:m] = np.arange(m)
        return m

    def swap_pools(self) -> None:
        """Exchange the primary and alternate pool buffers."""
        self.pool_dists, self.alt_dists = self.alt_dists, self.pool_dists
        self.pool_ids, self.alt_ids = self.alt_ids, self.pool_ids
        self.pool_explored, self.alt_explored = (
            self.alt_explored, self.pool_explored)

    def compact(self, m: int, keep: np.ndarray) -> int:
        """Drop finished rows; survivors move up, order preserved.

        Args:
            m: Current number of active compact rows.
            keep: ``(m,)`` boolean mask of rows that stay active.

        Returns:
            The new number of active rows.
        """
        survivors = np.flatnonzero(keep)
        new_m = len(survivors)
        if new_m == m:
            return m
        # One gather per live buffer; the temporaries are (new_m, l_n)
        # and only materialise on iterations where queries finished.
        self.pool_dists[:new_m] = self.pool_dists[survivors]
        self.pool_ids[:new_m] = self.pool_ids[survivors]
        self.pool_explored[:new_m] = self.pool_explored[survivors]
        self.query_rows[:new_m] = self.query_rows[survivors]
        return new_m


#: One cached arena per (l_n, l_t, dtype) shape class.  Capacity grows
#: monotonically: a request larger than the cached arena replaces it.
_ARENA_CACHE: Dict[Tuple[int, int, str], SearchArena] = {}
_ARENA_CACHE_MAX = 8


def get_arena(n_queries: int, l_n: int, l_t: int,
              dtype: np.dtype) -> SearchArena:
    """Fetch (or build) an arena able to hold ``n_queries`` queries."""
    key = (int(l_n), int(l_t), np.dtype(dtype).str)
    arena = _ARENA_CACHE.get(key)
    if arena is None or arena.capacity < n_queries:
        if arena is None and len(_ARENA_CACHE) >= _ARENA_CACHE_MAX:
            _ARENA_CACHE.clear()
        arena = SearchArena(n_queries, l_n, l_t, dtype)
        _ARENA_CACHE[key] = arena
    return arena


class RerankScratch:
    """Candidate-pool hand-off buffers for the staged quantized search.

    The compressed traversal retires each query's full ``l_q``-wide pool
    (ids + float32 traversal distances) into these buffers, and the
    exact rerank reads them back.  Like the arenas they are cached per
    shape class and reused across calls — a serving replay runs
    thousands of identically-shaped staged micro-batches, and this keeps
    the per-batch allocation at the final ``(m, k)`` outputs only.
    """

    def __init__(self, capacity: int, l_q: int):
        self.capacity = int(capacity)
        self.l_q = int(l_q)
        self.pool_ids = np.empty((self.capacity, self.l_q),
                                 dtype=np.int64)
        self.pool_dists = np.empty((self.capacity, self.l_q),
                                   dtype=np.float32)


#: One cached scratch per rerank pool width; capacity grows
#: monotonically, exactly like the arena cache.
_RERANK_CACHE: Dict[int, RerankScratch] = {}
_RERANK_CACHE_MAX = 8


def get_rerank_scratch(n_queries: int, l_q: int) -> RerankScratch:
    """Fetch (or build) rerank buffers for ``n_queries`` x ``l_q``."""
    key = int(l_q)
    scratch = _RERANK_CACHE.get(key)
    if scratch is None or scratch.capacity < n_queries:
        if scratch is None and len(_RERANK_CACHE) >= _RERANK_CACHE_MAX:
            _RERANK_CACHE.clear()
        scratch = RerankScratch(n_queries, l_q)
        _RERANK_CACHE[key] = scratch
    return scratch
