"""Diversity-based edge pruning (the RNG/heuristic neighbor selection).

The paper's related work surveys graphs that prune edges for *diversity*
rather than pure proximity — DPG, NSG, FANNG and HNSW's select-neighbors
heuristic all apply some form of the relative-neighborhood rule: drop the
edge ``v -> u`` when a kept neighbor ``w`` is closer to ``u`` than ``v``
is (``δ(w, u) < α · δ(v, u)``), because the search can reach ``u``
through ``w``.  NSW graphs keep their raw nearest neighbors, so their
rows waste slots on redundant same-direction edges.

:func:`prune_diversify` applies the rule as a post-processing pass over
any built :class:`repro.graphs.adjacency.ProximityGraph` — an optional
refinement the paper leaves to future work, exposed here because it
composes cleanly with GGraphCon (build fast on the GPU, then prune) and
measurably improves recall per explored vertex on NSW graphs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GraphError
from repro.graphs.adjacency import ProximityGraph
from repro.metrics.distance import Metric


def prune_diversify(graph: ProximityGraph, points: np.ndarray,
                    alpha: float = 1.0,
                    min_degree: int = 1,
                    metric: Optional[Metric] = None) -> ProximityGraph:
    """Prune each row with the relative-neighborhood (diversity) rule.

    Rows are scanned closest-first; a neighbor ``u`` is kept unless some
    already-kept ``w`` satisfies ``δ(w, u) < α · δ(v, u)``.  ``α > 1``
    prunes more aggressively; ``α = 1`` is the classical RNG test.

    Args:
        graph: Input graph (not modified).
        points: ``(n, d)`` points the graph was built on.
        alpha: Pruning aggressiveness (``> 0``).
        min_degree: Keep at least this many neighbors per row regardless
            of the rule (guards connectivity).
        metric: Distance metric; defaults to the graph's.

    Returns:
        A new pruned :class:`ProximityGraph` with the same ``d_max``.
    """
    if alpha <= 0:
        raise GraphError(f"alpha must be positive, got {alpha}")
    if min_degree < 0:
        raise GraphError(f"min_degree must be >= 0, got {min_degree}")
    points = np.asarray(points)
    if points.ndim != 2 or len(points) != graph.n_vertices:
        raise GraphError(
            f"points shape {points.shape} does not match the graph's "
            f"{graph.n_vertices} vertices"
        )
    if metric is None:
        metric = graph.metric

    pruned = ProximityGraph(graph.n_vertices, graph.d_max,
                            graph.metric_name)
    for v in range(graph.n_vertices):
        degree = int(graph.degrees[v])
        if degree == 0:
            continue
        neighbor_ids = graph.neighbor_ids[v, :degree]
        neighbor_dists = graph.neighbor_dists[v, :degree]
        kept_ids = []
        kept_dists = []
        for u, dist_vu in zip(neighbor_ids, neighbor_dists):
            u = int(u)
            keep = True
            if kept_ids:
                w_dists = metric.one_to_many(points[u],
                                             points[np.asarray(kept_ids)])
                if (w_dists < alpha * dist_vu).any():
                    keep = False
            if keep:
                kept_ids.append(u)
                kept_dists.append(float(dist_vu))
        # Connectivity guard: backfill the closest dropped neighbors.
        if len(kept_ids) < min_degree:
            for u, dist_vu in zip(neighbor_ids, neighbor_dists):
                u = int(u)
                if u not in kept_ids:
                    kept_ids.append(u)
                    kept_dists.append(float(dist_vu))
                if len(kept_ids) >= min_degree:
                    break
        order = np.lexsort((np.asarray(kept_ids),
                            np.asarray(kept_dists)))
        pruned.set_row(v, np.asarray(kept_ids)[order],
                       np.asarray(kept_dists)[order])
    return pruned


def pruning_stats(original: ProximityGraph,
                  pruned: ProximityGraph) -> dict:
    """Summary of what a pruning pass removed."""
    if original.n_vertices != pruned.n_vertices:
        raise GraphError("graphs must have the same vertex count")
    before = original.n_edges()
    after = pruned.n_edges()
    return {
        "edges_before": before,
        "edges_after": after,
        "kept_fraction": after / before if before else 1.0,
        "mean_degree_before": float(original.degrees.mean()),
        "mean_degree_after": float(pruned.degrees.mean()),
    }
