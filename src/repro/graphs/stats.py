"""Graph statistics and quality measures.

Besides simple degree statistics, this module provides the two quality
measures the evaluation leans on:

- :func:`reachable_fraction` — share of vertices reachable from the entry
  point (a disconnected graph caps achievable recall);
- :func:`edge_recall_against` — how much of a reference graph's edge set a
  candidate graph reproduces, used to verify the Section IV-C claim that
  GGraphCon's output matches sequential insertion.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graphs.adjacency import HierarchicalGraph, ProximityGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of one proximity graph."""

    n_vertices: int
    n_edges: int
    min_degree: int
    max_degree: int
    mean_degree: float
    reachable_from_entry: float
    memory_bytes: int


def average_out_degree(graph: ProximityGraph) -> float:
    """Mean out-degree."""
    return float(graph.degrees.mean())


def reachable_fraction(graph: ProximityGraph, entry: int = 0) -> float:
    """Fraction of vertices reachable from ``entry`` by directed BFS."""
    if not 0 <= entry < graph.n_vertices:
        raise GraphError(
            f"entry {entry} out of range [0, {graph.n_vertices})"
        )
    seen = np.zeros(graph.n_vertices, dtype=bool)
    seen[entry] = True
    frontier = deque([entry])
    while frontier:
        v = frontier.popleft()
        for u in graph.neighbor_ids[v, :graph.degrees[v]]:
            u = int(u)
            if not seen[u]:
                seen[u] = True
                frontier.append(u)
    return float(seen.mean())


def graph_digest(graph) -> str:
    """Byte-level BLAKE2b digest of a graph's adjacency arrays.

    Two graphs digest equal iff their neighbor ids, distances, degrees
    (and, for a :class:`HierarchicalGraph`, layer sizes) are
    byte-identical — the determinism currency of the backend
    conformance suite and the CAGRA golden file.
    """
    digest = hashlib.blake2b(digest_size=16)
    if isinstance(graph, HierarchicalGraph):
        digest.update(np.asarray(graph.layer_sizes,
                                 dtype=np.int64).tobytes())
        layers = graph.layers
    else:
        layers = [graph]
    for layer in layers:
        digest.update(np.ascontiguousarray(layer.neighbor_ids).tobytes())
        digest.update(np.ascontiguousarray(layer.neighbor_dists).tobytes())
        digest.update(np.ascontiguousarray(layer.degrees).tobytes())
    return digest.hexdigest()


def edge_recall_against(candidate: ProximityGraph,
                        reference: ProximityGraph) -> float:
    """Fraction of the reference graph's directed edges present in
    ``candidate``.

    1.0 means the candidate contains every reference edge; this is the
    measure used to check GGraphCon-vs-sequential equivalence.
    """
    if candidate.n_vertices != reference.n_vertices:
        raise GraphError(
            f"graphs have different vertex counts: {candidate.n_vertices} "
            f"vs {reference.n_vertices}"
        )
    reference_edges = reference.edge_set()
    if not reference_edges:
        return 1.0
    candidate_edges = candidate.edge_set()
    shared = len(reference_edges & candidate_edges)
    return shared / len(reference_edges)


def graph_stats(graph: ProximityGraph, entry: int = 0) -> GraphStats:
    """Collect a :class:`GraphStats` summary."""
    return GraphStats(
        n_vertices=graph.n_vertices,
        n_edges=graph.n_edges(),
        min_degree=int(graph.degrees.min()),
        max_degree=int(graph.degrees.max()),
        mean_degree=average_out_degree(graph),
        reachable_from_entry=reachable_fraction(graph, entry),
        memory_bytes=graph.memory_bytes(),
    )
