"""Proximity-graph substrate.

The paper's Definition 2 graph with its two GPU-friendly properties
(Section II-A): every vertex keeps only *outgoing* neighbors, bounded by
``d_max`` and ordered by distance, stored as dense fixed-width rows — the
layout every search and construction kernel in this library consumes.
"""

from repro.graphs.adjacency import ProximityGraph, HierarchicalGraph
from repro.graphs.validation import validate_graph
from repro.graphs.stats import (
    GraphStats,
    graph_digest,
    graph_stats,
    average_out_degree,
    reachable_fraction,
    edge_recall_against,
)
from repro.graphs.pruning import prune_diversify, pruning_stats
from repro.graphs.analysis import (
    NavigabilityReport,
    navigability_report,
    degree_distribution,
    long_link_fraction,
    mean_hops,
    neighborhood_overlap,
)

__all__ = [
    "ProximityGraph",
    "HierarchicalGraph",
    "validate_graph",
    "GraphStats",
    "graph_digest",
    "graph_stats",
    "average_out_degree",
    "reachable_fraction",
    "edge_recall_against",
    "NavigabilityReport",
    "navigability_report",
    "degree_distribution",
    "long_link_fraction",
    "mean_hops",
    "neighborhood_overlap",
    "prune_diversify",
    "pruning_stats",
]
