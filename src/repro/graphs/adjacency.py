"""Fixed-degree adjacency storage for proximity graphs.

A :class:`ProximityGraph` keeps, per vertex, a fixed-width row of at most
``d_max`` outgoing neighbors *ordered by distance* (ties by id), padded with
``-1`` ids and ``+inf`` distances.  This is the layout the paper requires
("the adjacency list of each vertex is an array with fixed size d_max where
elements are ordered by distance") and the reason its kernels never touch a
dynamic allocation.

:class:`HierarchicalGraph` stacks per-layer :class:`ProximityGraph` objects
for HNSW-style indices.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError
from repro.metrics.distance import Metric, get_metric

PAD_ID = -1
PAD_DIST = np.inf

#: Distance-storage dtypes a graph may be pinned to.
GRAPH_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


class ProximityGraph:
    """Directed proximity graph with distance-ordered fixed-degree rows.

    Args:
        n_vertices: Number of vertices (== number of points).
        d_max: Maximum out-degree; rows are dense arrays of this width.
        metric: Metric name used to build the graph (carried for search).
        dtype: Distance-storage dtype (``float32`` or ``float64``).
            Pinned at creation: every row write casts to it, so a graph
            never silently mixes precisions.  Default ``float64``
            preserves the historical layout byte-for-byte.
    """

    def __init__(self, n_vertices: int, d_max: int,
                 metric: str = "euclidean", dtype: object = np.float64):
        if n_vertices <= 0:
            raise GraphError(f"n_vertices must be positive, got {n_vertices}")
        if d_max <= 0:
            raise GraphError(f"d_max must be positive, got {d_max}")
        dtype = np.dtype(dtype)
        if dtype not in GRAPH_DTYPES:
            raise GraphError(
                f"graph distance dtype must be one of "
                f"{tuple(d.name for d in GRAPH_DTYPES)}, got {dtype.name}"
            )
        self.n_vertices = int(n_vertices)
        self.d_max = int(d_max)
        self.metric_name = metric
        self.dtype = dtype
        self.neighbor_ids = np.full((n_vertices, d_max), PAD_ID,
                                    dtype=np.int64)
        self.neighbor_dists = np.full((n_vertices, d_max), PAD_DIST,
                                      dtype=dtype)
        self.degrees = np.zeros(n_vertices, dtype=np.int64)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def metric(self) -> Metric:
        """Metric instance the graph was built under."""
        return get_metric(self.metric_name)

    def degree(self, vertex: int) -> int:
        """Current out-degree of ``vertex``."""
        self._check_vertex(vertex)
        return int(self.degrees[vertex])

    def neighbors(self, vertex: int) -> np.ndarray:
        """Out-neighbor ids of ``vertex``, closest first (no padding)."""
        self._check_vertex(vertex)
        return self.neighbor_ids[vertex, :self.degrees[vertex]].copy()

    def neighbor_distances(self, vertex: int) -> np.ndarray:
        """Distances matching :meth:`neighbors`."""
        self._check_vertex(vertex)
        return self.neighbor_dists[vertex, :self.degrees[vertex]].copy()

    def has_edge(self, src: int, dst: int) -> bool:
        """Whether the directed edge ``src -> dst`` exists."""
        self._check_vertex(src)
        return dst in self.neighbor_ids[src, :self.degrees[src]]

    def n_edges(self) -> int:
        """Total number of directed edges."""
        return int(self.degrees.sum())

    def memory_bytes(self) -> int:
        """Bytes of the dense adjacency representation (the paper's
        ``O(n_p x d_max)`` global-memory figure)."""
        return (self.neighbor_ids.nbytes + self.neighbor_dists.nbytes
                + self.degrees.nbytes)

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < self.n_vertices:
            raise GraphError(
                f"vertex {vertex} out of range [0, {self.n_vertices})"
            )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert_edge(self, src: int, dst: int, dist: float) -> bool:
        """Insert ``src -> dst`` keeping the row sorted by (dist, id).

        Mirrors the kernel's behaviour exactly: locate the position by
        binary search, shift the tail, and "the last element is discarded if
        the list is already full".  Inserting an edge that already exists is
        a no-op.

        Returns:
            True when the edge was inserted, False when it was rejected
            (already present, or worse than a full row's last entry).
        """
        self._check_vertex(src)
        self._check_vertex(dst)
        if src == dst:
            raise GraphError(f"self-loop rejected at vertex {src}")
        degree = int(self.degrees[src])
        row_ids = self.neighbor_ids[src]
        row_dists = self.neighbor_dists[src]
        if dst in row_ids[:degree]:
            return False
        if degree == self.d_max:
            last = degree - 1
            if (dist, dst) >= (row_dists[last], row_ids[last]):
                return False
        # Binary search for the (dist, id) insertion point.
        position = int(np.searchsorted(row_dists[:degree], dist, side="left"))
        while (position < degree and row_dists[position] == dist
               and row_ids[position] < dst):
            position += 1
        stop = min(degree + 1, self.d_max)
        row_ids[position + 1:stop] = row_ids[position:stop - 1]
        row_dists[position + 1:stop] = row_dists[position:stop - 1]
        row_ids[position] = dst
        row_dists[position] = dist
        self.degrees[src] = stop
        return True

    def set_row(self, vertex: int, ids: Sequence[int],
                dists: Sequence[float]) -> None:
        """Replace a vertex's row wholesale (must be pre-sorted, <= d_max)."""
        self._check_vertex(vertex)
        ids = np.asarray(ids, dtype=np.int64)
        dists = np.asarray(dists, dtype=self.dtype)
        if ids.shape != dists.shape or ids.ndim != 1:
            raise GraphError(
                f"row arrays must be 1-D and equal length, got {ids.shape} "
                f"and {dists.shape}"
            )
        if len(ids) > self.d_max:
            raise GraphError(
                f"row of length {len(ids)} exceeds d_max={self.d_max}"
            )
        order_ok = np.all(np.diff(dists) >= 0)
        if not order_ok:
            raise GraphError("row distances must be sorted ascending")
        self.neighbor_ids[vertex] = PAD_ID
        self.neighbor_dists[vertex] = PAD_DIST
        self.neighbor_ids[vertex, :len(ids)] = ids
        self.neighbor_dists[vertex, :len(ids)] = dists
        self.degrees[vertex] = len(ids)

    def merge_row(self, vertex: int, ids: Sequence[int],
                  dists: Sequence[float]) -> None:
        """Merge candidate neighbors into a row, keeping the best ``d_max``.

        This is merge Step 3 of GGraphCon: the existing (sorted) row and a
        batch of new edges are merged and "we use the first d_max elements
        as the adjacency list".  Duplicates collapse to one entry.
        """
        self._check_vertex(vertex)
        degree = int(self.degrees[vertex])
        all_ids = np.concatenate([self.neighbor_ids[vertex, :degree],
                                  np.asarray(ids, dtype=np.int64)])
        all_dists = np.concatenate([self.neighbor_dists[vertex, :degree],
                                    np.asarray(dists, dtype=self.dtype)])
        if len(all_ids) == 0:
            return
        order = np.lexsort((all_ids, all_dists))
        all_ids = all_ids[order]
        all_dists = all_dists[order]
        _, unique_idx = np.unique(all_ids, return_index=True)
        keep = np.zeros(len(all_ids), dtype=bool)
        keep[unique_idx] = True
        all_ids = all_ids[keep]
        all_dists = all_dists[keep]
        order = np.lexsort((all_ids, all_dists))
        all_ids = all_ids[order][:self.d_max]
        all_dists = all_dists[order][:self.d_max]
        self.set_row(vertex, all_ids, all_dists)

    # ------------------------------------------------------------------
    # Construction helpers / conversions
    # ------------------------------------------------------------------

    def copy(self) -> "ProximityGraph":
        """Deep copy of the graph."""
        clone = ProximityGraph(self.n_vertices, self.d_max, self.metric_name,
                               dtype=self.dtype)
        clone.neighbor_ids = self.neighbor_ids.copy()
        clone.neighbor_dists = self.neighbor_dists.copy()
        clone.degrees = self.degrees.copy()
        return clone

    def edge_set(self) -> set:
        """All directed edges as a set of (src, dst) tuples."""
        edges = set()
        for v in range(self.n_vertices):
            for u in self.neighbor_ids[v, :self.degrees[v]]:
                edges.add((v, int(u)))
        return edges

    @classmethod
    def from_rows(cls, rows_ids: np.ndarray, rows_dists: np.ndarray,
                  d_max: Optional[int] = None,
                  metric: str = "euclidean",
                  dtype: object = np.float64) -> "ProximityGraph":
        """Build a graph from dense ``(n, w)`` id/distance matrices.

        Padding entries must use ``-1`` / ``+inf``; rows must be sorted.
        """
        rows_ids = np.asarray(rows_ids)
        rows_dists = np.asarray(rows_dists)
        if rows_ids.shape != rows_dists.shape or rows_ids.ndim != 2:
            raise GraphError(
                f"row matrices must be 2-D and equal shape, got "
                f"{rows_ids.shape} and {rows_dists.shape}"
            )
        n, width = rows_ids.shape
        if d_max is None:
            d_max = width
        graph = cls(n, d_max, metric, dtype=dtype)
        for v in range(n):
            valid = rows_ids[v] >= 0
            graph.set_row(v, rows_ids[v][valid], rows_dists[v][valid])
        return graph


class HierarchicalGraph:
    """A stack of per-layer proximity graphs (the HNSW organisation).

    Layer 0 is the bottom layer containing every point; layer ``i`` contains
    ``layer_sizes[i]`` points.  Following the paper's shuffled-ID scheme
    (Section IV-D), the vertices present on layer ``i`` are exactly the
    *shuffled* ids ``0 .. layer_sizes[i] - 1``, so a layer's adjacency rows
    are addressable directly by vertex id with no per-layer index.
    """

    def __init__(self, layers: List[ProximityGraph],
                 layer_sizes: Sequence[int]):
        if not layers:
            raise GraphError("a hierarchical graph needs at least one layer")
        if len(layers) != len(layer_sizes):
            raise GraphError(
                f"{len(layers)} layers but {len(layer_sizes)} layer sizes"
            )
        sizes = [int(s) for s in layer_sizes]
        if any(s <= 0 for s in sizes):
            raise GraphError("layer sizes must be positive")
        if any(sizes[i] < sizes[i + 1] for i in range(len(sizes) - 1)):
            raise GraphError("layer sizes must be non-increasing upwards")
        for graph, size in zip(layers, sizes):
            if graph.n_vertices < size:
                raise GraphError(
                    f"layer graph has {graph.n_vertices} vertices but the "
                    f"layer claims {size}"
                )
        self.layers = layers
        self.layer_sizes = sizes

    @property
    def n_layers(self) -> int:
        """Number of layers (>= 1)."""
        return len(self.layers)

    @property
    def bottom(self) -> ProximityGraph:
        """The layer-0 graph over all points."""
        return self.layers[0]

    def entry_vertex(self) -> int:
        """Entry point for search: the first vertex of the top layer."""
        return 0

    def layer_vertices(self, layer: int) -> Tuple[int, int]:
        """Half-open id range ``[0, size)`` of vertices on ``layer``."""
        if not 0 <= layer < self.n_layers:
            raise GraphError(
                f"layer {layer} out of range [0, {self.n_layers})"
            )
        return 0, self.layer_sizes[layer]

    def memory_bytes(self) -> int:
        """Total bytes across layers."""
        return sum(layer.memory_bytes() for layer in self.layers)
