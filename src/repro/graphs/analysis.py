"""Structural analysis of proximity graphs.

Why does an NSW graph answer queries in tens of hops while a pure KNN
graph strands the search inside one cluster?  The structural quantities
behind the paper's design choices, measurable on any
:class:`repro.graphs.adjacency.ProximityGraph`:

- degree distributions (property (2) of Section II-A bounds them);
- the *long-link fraction*: NSW's early insertions create edges far
  above the median edge length — the small-world shortcuts [8];
- estimated hop distance from the entry vertex (drives iteration counts
  and hence every cost in Section III-C);
- neighborhood overlap (clustering): high overlap means GANNS's lazy
  check will invalidate many re-discovered neighbors, i.e. the price of
  removing the visited hash.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import GraphError
from repro.graphs.adjacency import ProximityGraph


@dataclass(frozen=True)
class DegreeDistribution:
    """Out- and in-degree summary of a graph."""

    out_min: int
    out_max: int
    out_mean: float
    in_min: int
    in_max: int
    in_mean: float

    @property
    def in_degree_skew(self) -> float:
        """Max/mean in-degree: hubs show up as a large value."""
        if self.in_mean == 0:
            return 0.0
        return self.in_max / self.in_mean


def degree_distribution(graph: ProximityGraph) -> DegreeDistribution:
    """Compute the degree summary (in-degrees derived from out-edges)."""
    out_degrees = graph.degrees
    in_degrees = np.zeros(graph.n_vertices, dtype=np.int64)
    live = graph.neighbor_ids[graph.neighbor_ids >= 0]
    if live.size:
        counts = np.bincount(live, minlength=graph.n_vertices)
        in_degrees += counts
    return DegreeDistribution(
        out_min=int(out_degrees.min()),
        out_max=int(out_degrees.max()),
        out_mean=float(out_degrees.mean()),
        in_min=int(in_degrees.min()),
        in_max=int(in_degrees.max()),
        in_mean=float(in_degrees.mean()),
    )


def long_link_fraction(graph: ProximityGraph,
                       factor: float = 4.0) -> float:
    """Fraction of edges longer than ``factor`` x the median edge length.

    NSW graphs keep such edges by construction (early insertions connect
    whatever exists, however far); pure KNN graphs have essentially none
    — which is why they lack navigability.
    """
    if factor <= 0:
        raise GraphError(f"factor must be positive, got {factor}")
    live = graph.neighbor_dists[graph.neighbor_ids >= 0]
    if live.size == 0:
        return 0.0
    median = float(np.median(live))
    if median <= 0:
        return 0.0
    return float((live > factor * median).mean())


def hop_histogram(graph: ProximityGraph, entry: int = 0,
                  max_hops: Optional[int] = None) -> Dict[int, int]:
    """BFS hop distance from ``entry``: {hops: vertex count}.

    Unreachable vertices are reported under hop ``-1``.  The histogram's
    weighted mean approximates the length of greedy search paths, which
    is what drives per-query iteration counts.
    """
    if not 0 <= entry < graph.n_vertices:
        raise GraphError(
            f"entry {entry} out of range [0, {graph.n_vertices})"
        )
    dist = np.full(graph.n_vertices, -1, dtype=np.int64)
    dist[entry] = 0
    frontier = deque([entry])
    while frontier:
        v = frontier.popleft()
        if max_hops is not None and dist[v] >= max_hops:
            continue
        for u in graph.neighbor_ids[v, :graph.degrees[v]]:
            u = int(u)
            if dist[u] < 0:
                dist[u] = dist[v] + 1
                frontier.append(u)
    histogram: Dict[int, int] = {}
    for value in dist:
        histogram[int(value)] = histogram.get(int(value), 0) + 1
    return histogram


def mean_hops(graph: ProximityGraph, entry: int = 0) -> float:
    """Mean BFS hop distance from ``entry`` over reachable vertices."""
    histogram = hop_histogram(graph, entry)
    total = sum(h * c for h, c in histogram.items() if h >= 0)
    count = sum(c for h, c in histogram.items() if h >= 0)
    return total / count if count else float("inf")


def neighborhood_overlap(graph: ProximityGraph,
                         sample: int = 200, seed: int = 0) -> float:
    """Mean Jaccard overlap between the rows of adjacent vertices.

    High overlap means a GANNS exploration step re-discovers many
    vertices already in the pool — the redundancy that lazy check
    invalidates (and whose distances it pays to recompute).
    """
    if sample <= 0:
        raise GraphError(f"sample must be positive, got {sample}")
    rng = np.random.default_rng(seed)
    candidates = np.flatnonzero(graph.degrees > 0)
    if candidates.size == 0:
        return 0.0
    chosen = rng.choice(candidates,
                        size=min(sample, candidates.size),
                        replace=False)
    overlaps = []
    for v in chosen:
        v_set = set(graph.neighbors(int(v)).tolist())
        for u in graph.neighbors(int(v))[:4]:
            u_set = set(graph.neighbors(int(u)).tolist())
            union = v_set | u_set
            if union:
                overlaps.append(len(v_set & u_set) / len(union))
    return float(np.mean(overlaps)) if overlaps else 0.0


@dataclass(frozen=True)
class NavigabilityReport:
    """One-call structural profile of a graph."""

    degrees: DegreeDistribution
    long_link_fraction: float
    mean_hops_from_entry: float
    unreachable_fraction: float
    neighborhood_overlap: float


def navigability_report(graph: ProximityGraph,
                        entry: int = 0) -> NavigabilityReport:
    """Collect the full structural profile."""
    histogram = hop_histogram(graph, entry)
    unreachable = histogram.get(-1, 0) / graph.n_vertices
    return NavigabilityReport(
        degrees=degree_distribution(graph),
        long_link_fraction=long_link_fraction(graph),
        mean_hops_from_entry=mean_hops(graph, entry),
        unreachable_fraction=unreachable,
        neighborhood_overlap=neighborhood_overlap(graph),
    )
