"""Structural validation of proximity graphs.

Construction algorithms promise a handful of invariants (Section II-A's two
properties plus the dense-layout contract).  :func:`validate_graph` checks
them all and raises :class:`repro.errors.GraphError` with a precise message
on the first violation; tests and the high-level index call it after every
build.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GraphError, ValidationError
from repro.graphs.adjacency import PAD_ID, ProximityGraph


def validate_graph(graph: ProximityGraph, points: Optional[np.ndarray] = None,
                   d_min: Optional[int] = None,
                   check_distances: bool = False,
                   atol: float = 1e-4,
                   tombstones: Optional[np.ndarray] = None) -> None:
    """Validate a graph's structural invariants.

    Checks, in order:

    1. Dense-layout consistency: adjacency arrays are ``(n, d_max)``
       and each row's first ``degree`` entries are valid ids, the rest
       padding.
    2. No self-loops, no duplicate neighbors within a row.
    3. All live distances finite (a NaN would sail through the
       sortedness check below — every comparison against NaN is false —
       and then silently poison every search that touches the row).
    4. Rows sorted ascending by distance.
    5. Degree bounds: every degree ``<= d_max`` and, when ``d_min`` is
       given, every vertex except possibly the first ``d_min`` inserted has
       degree ``>= min(d_min, what was available)`` — the paper's
       lower-bound property (2).
    6. When ``tombstones`` is given (a ``(n,)`` boolean mask of deleted
       vertices), the compaction contract: no live row references a
       tombstoned vertex (a *reachable tombstone* would let a search
       return a deleted id) and every tombstoned vertex is fully
       detached (degree ``0``).  Violations raise the more specific
       :class:`repro.errors.ValidationError`.
    7. When ``points`` is given and ``check_distances`` is set, stored
       distances match recomputed ones to within ``atol``.

    Args:
        graph: Graph to validate.
        points: Point matrix for distance re-checks.
        d_min: Construction lower bound to verify, if any.
        check_distances: Recompute and compare stored distances (slower).
        atol: Absolute tolerance for distance comparison.
        tombstones: Optional boolean mask of deleted vertices; enables
            the post-compaction unreachability checks.  Tombstoned
            vertices are exempt from the ``d_min`` floor.

    Raises:
        GraphError: Describing the first violated invariant.
        ValidationError: A tombstone invariant was violated (the mask
            was supplied and a dead vertex is still wired in).
    """
    n = graph.n_vertices
    ids = graph.neighbor_ids
    dists = graph.neighbor_dists
    degrees = graph.degrees

    if tombstones is not None:
        tombstones = np.asarray(tombstones, dtype=bool)
        if tombstones.shape != (n,):
            raise GraphError(
                f"tombstone mask must be shape ({n},), got "
                f"{tombstones.shape}"
            )

    if ids.shape != (n, graph.d_max) or dists.shape != ids.shape:
        raise GraphError(
            f"adjacency arrays must both be (n_vertices={n}, "
            f"d_max={graph.d_max}); got ids {ids.shape} and dists "
            f"{dists.shape}"
        )

    if np.any(degrees < 0) or np.any(degrees > graph.d_max):
        bad = int(np.flatnonzero((degrees < 0) | (degrees > graph.d_max))[0])
        raise GraphError(
            f"vertex {bad} has degree {degrees[bad]} outside [0, {graph.d_max}]"
        )

    columns = np.arange(graph.d_max)
    live = columns[None, :] < degrees[:, None]

    live_ids = ids[live]
    if live_ids.size and (live_ids.min() < 0 or live_ids.max() >= n):
        raise GraphError("adjacency row contains an out-of-range vertex id")
    if np.any(ids[~live] != PAD_ID):
        bad = int(np.flatnonzero(np.any((ids != PAD_ID) & ~live, axis=1))[0])
        raise GraphError(
            f"vertex {bad} has non-padding entries past its degree"
        )
    own = np.arange(n)[:, None]
    if np.any((ids == own) & live):
        bad = int(np.flatnonzero(np.any((ids == own) & live, axis=1))[0])
        raise GraphError(f"vertex {bad} has a self-loop")

    bad_dists = live & ~np.isfinite(dists)
    if np.any(bad_dists):
        bad = int(np.flatnonzero(np.any(bad_dists, axis=1))[0])
        col = int(np.flatnonzero(bad_dists[bad])[0])
        raise GraphError(
            f"vertex {bad} stores a non-finite neighbor distance "
            f"({dists[bad, col]}) at slot {col}"
        )

    for v in range(n):
        degree = degrees[v]
        row = ids[v, :degree]
        if len(np.unique(row)) != degree:
            raise GraphError(f"vertex {v} has duplicate neighbors")
        row_dists = dists[v, :degree]
        if np.any(np.diff(row_dists) < 0):
            raise GraphError(
                f"vertex {v}'s row is not sorted ascending by distance"
            )

    if tombstones is not None and np.any(tombstones):
        wired = tombstones & (degrees > 0)
        if np.any(wired):
            bad = int(np.flatnonzero(wired)[0])
            raise ValidationError(
                f"tombstoned vertex {bad} still carries "
                f"{int(degrees[bad])} edges; compaction must detach "
                f"dead vertices completely"
            )
        dead_refs = live & tombstones[np.where(ids == PAD_ID, 0, ids)]
        if np.any(dead_refs):
            bad = int(np.flatnonzero(np.any(dead_refs, axis=1))[0])
            col = int(np.flatnonzero(dead_refs[bad])[0])
            raise ValidationError(
                f"live vertex {bad} still references tombstoned vertex "
                f"{int(ids[bad, col])}: a search could return a deleted "
                f"id (reachable tombstone)"
            )

    if d_min is not None:
        if d_min <= 0:
            raise GraphError(f"d_min must be positive, got {d_min}")
        # During sequential insertion the i-th point can link to at most i
        # earlier points, so the enforceable bound is min(d_min, n - 1).
        floor = min(d_min, n - 1)
        small = degrees < floor
        if tombstones is not None:
            # Dead vertices are detached by design, so the floor only
            # applies to live ones.
            small = small & ~tombstones
        too_small = np.flatnonzero(small)
        if too_small.size:
            raise GraphError(
                f"{too_small.size} vertices (first: {int(too_small[0])}) "
                f"have degree below the d_min floor of {floor}"
            )

    if points is not None and check_distances:
        metric = graph.metric
        for v in range(n):
            degree = degrees[v]
            if degree == 0:
                continue
            row = ids[v, :degree]
            expected = metric.one_to_many(points[v], points[row])
            stored = dists[v, :degree]
            if not np.allclose(stored, expected, atol=atol):
                worst = float(np.abs(stored - expected).max())
                raise GraphError(
                    f"vertex {v} stores distances deviating from recomputed "
                    f"values by up to {worst:.3g}"
                )
