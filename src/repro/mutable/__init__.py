"""Crash-safe mutable index: streaming mutations over GGraphCon graphs.

The online lifecycle of a proximity-graph index — streaming inserts,
tombstone deletes, deterministic compaction, copy-on-write snapshots,
and a simulated WAL/checkpoint pair that makes every mutation crash-safe
(see :mod:`repro.mutable.index` for the full contract).
"""

from repro.mutable.compaction import (
    COMPACTION_PHASES,
    CompactionStats,
    compact_graph,
)
from repro.mutable.index import MutableIndex
from repro.mutable.recovery import clean_replay_digest, recover
from repro.mutable.report import (
    OP_RECORD_KINDS,
    MutationReport,
    OpRecord,
    SearchRecord,
)
from repro.mutable.sim import default_build_params, run_mutation_sim
from repro.mutable.snapshot import SnapshotHandle
from repro.mutable.wal import (
    OP_COMPACT,
    OP_DELETE,
    OP_INSERT,
    OP_KINDS,
    DurableStore,
    WalRecord,
    WriteAheadLog,
)

__all__ = [
    "COMPACTION_PHASES",
    "CompactionStats",
    "DurableStore",
    "MutableIndex",
    "MutationReport",
    "OP_COMPACT",
    "OP_DELETE",
    "OP_INSERT",
    "OP_KINDS",
    "OP_RECORD_KINDS",
    "OpRecord",
    "SearchRecord",
    "SnapshotHandle",
    "WalRecord",
    "WriteAheadLog",
    "clean_replay_digest",
    "compact_graph",
    "default_build_params",
    "recover",
    "run_mutation_sim",
]
