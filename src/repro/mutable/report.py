"""Mutation-run summary: the ops ledger of one simulated workload.

A :class:`MutationReport` is to :func:`repro.mutable.sim.run_mutation_sim`
what :class:`repro.serve.report.ServeReport` is to a serving replay —
the single byte-deterministic artifact the CLI prints, the golden test
pins, and the smoke gate compares across seeds.  It carries every
operation the workload issued (including the crashes and recoveries),
every search result, and the final index/store digests, and it must
reconcile with the live metrics registry with *zero drift*.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import ObservabilityError

#: Operation kinds an :class:`OpRecord` may carry.
OP_RECORD_KINDS = ("insert", "delete", "compact", "checkpoint",
                   "search", "recover")


@dataclass
class OpRecord:
    """One workload operation, as it actually played out.

    Attributes:
        seq: Position in the workload schedule (0-based, dense).
        kind: One of :data:`OP_RECORD_KINDS`.
        at_seconds: Simulated issue time.
        epoch_after: Index epoch once the operation settled.
        count: Operation size — points inserted, ids deleted, dead
            vertices detached, records replayed, queries searched, or
            the LSN a checkpoint folded through (``0`` where it has no
            meaning).
        status: ``"ok"``, or ``"crashed"`` when a fault killed the
            operation mid-phase.
        phase: The lifecycle phase a crash landed in (empty otherwise).
    """

    seq: int
    kind: str
    at_seconds: float
    epoch_after: int = 0
    count: int = 0
    status: str = "ok"
    phase: str = ""

    def line(self) -> str:
        """Canonical one-line encoding."""
        return (f"{self.seq} {self.kind} {self.at_seconds!r} "
                f"epoch={self.epoch_after} count={self.count} "
                f"{self.status} {self.phase}")


@dataclass
class SearchRecord:
    """One search operation's full result set.

    Attributes:
        seq: The issuing :class:`OpRecord`'s ``seq``.
        at_seconds: Simulated issue time.
        epoch: Index epoch the search ran against.
        ids: ``(q, k)`` result ids (``-1`` padded).
        dists: ``(q, k)`` result distances (``inf`` padded).
        n_wrong: Result ids that were tombstoned at issue time — the
            *silently wrong answers* the crash-safety bar requires to
            be zero, counted here so the report can prove it.
    """

    seq: int
    at_seconds: float
    epoch: int
    ids: np.ndarray
    dists: np.ndarray
    n_wrong: int = 0


@dataclass
class MutationReport:
    """Outcome of one simulated mutation workload.

    Attributes:
        seed: Workload RNG seed.
        ops: Every operation in schedule order (crashes and recoveries
            appear as their own records).
        searches: Full result sets of the search operations.
        final_digest: The surviving index's state digest.
        store_digest: The durable store's digest at shutdown.
        final_epoch: Index epoch at shutdown.
        n_live: Live points at shutdown.
        n_slots: Total id slots ever allocated.
        checkpoint_lsn: LSN of the last installed checkpoint (0 if
            none).
        metrics: The registry the run published into; the derived
            counts below must reconcile with it exactly
            (:meth:`verify_against_metrics`).
        store: The surviving :class:`repro.mutable.wal.DurableStore`,
            so callers (the mutate-smoke gate) can independently
            replay the log and compare digests.  Not part of the
            canonical byte encoding.
    """

    seed: int
    ops: List[OpRecord] = field(default_factory=list)
    searches: List[SearchRecord] = field(default_factory=list)
    final_digest: str = ""
    store_digest: str = ""
    final_epoch: int = 0
    n_live: int = 0
    n_slots: int = 0
    checkpoint_lsn: int = 0
    metrics: Optional[object] = None
    store: Optional[object] = None

    # ------------------------------------------------------------------
    # Derived counts (views over the ledger)
    # ------------------------------------------------------------------

    def _count(self, kind: str, status: str = "ok") -> int:
        return sum(1 for op in self.ops
                   if op.kind == kind and op.status == status)

    @property
    def n_inserts(self) -> int:
        """Insert batches applied."""
        return self._count("insert")

    @property
    def points_inserted(self) -> int:
        """Total points across applied insert batches."""
        return sum(op.count for op in self.ops
                   if op.kind == "insert" and op.status == "ok")

    @property
    def n_deletes(self) -> int:
        """Delete operations applied."""
        return self._count("delete")

    @property
    def points_deleted(self) -> int:
        """Total ids across applied deletes."""
        return sum(op.count for op in self.ops
                   if op.kind == "delete" and op.status == "ok")

    @property
    def n_compactions(self) -> int:
        """Compaction passes that committed."""
        return self._count("compact")

    @property
    def n_checkpoints(self) -> int:
        """Checkpoints that installed."""
        return self._count("checkpoint")

    @property
    def n_searches(self) -> int:
        """Search operations issued."""
        return len(self.searches)

    @property
    def n_crashes(self) -> int:
        """Crash faults delivered (operations that died mid-phase)."""
        return sum(1 for op in self.ops if op.status == "crashed")

    @property
    def n_recoveries(self) -> int:
        """Recovery runs (one per crash)."""
        return sum(1 for op in self.ops if op.kind == "recover")

    @property
    def replayed_records(self) -> int:
        """WAL records replayed across all recoveries."""
        return sum(op.count for op in self.ops if op.kind == "recover")

    @property
    def n_wrong_answers(self) -> int:
        """Tombstoned ids that leaked into search results (must be 0)."""
        return sum(s.n_wrong for s in self.searches)

    # ------------------------------------------------------------------
    # Registry view
    # ------------------------------------------------------------------

    def verify_against_metrics(self) -> None:
        """Assert this report is an exact view over its registry.

        The ledger above and the counters the index/sim published live
        are two independent accounting paths; they are allowed zero
        drift.  Raises :class:`repro.errors.ObservabilityError` on the
        first mismatch; a no-op when the report carries no registry.
        """
        registry = self.metrics
        if registry is None:
            return
        expectations = {
            "mutate.inserts": self.n_inserts,
            "mutate.points_inserted": self.points_inserted,
            "mutate.deletes": self.n_deletes,
            "mutate.points_deleted": self.points_deleted,
            "mutate.searches": self.n_searches,
            "mutate.wrong_answers": self.n_wrong_answers,
            "compaction.passes": self.n_compactions,
            "recovery.checkpoints": self.n_checkpoints,
            "recovery.runs": self.n_recoveries,
            "recovery.replayed_records": self.replayed_records,
        }
        if self.n_crashes:
            expectations["faults.delivered.crash"] = self.n_crashes
        if self.n_inserts or self.n_deletes or self.n_compactions:
            expectations["mutate.epoch"] = self.final_epoch
        if self.n_checkpoints:
            expectations["recovery.checkpoint_lsn"] = self.checkpoint_lsn
        for name, expected in expectations.items():
            actual = registry.value(name, default=0.0)
            if actual != expected:
                raise ObservabilityError(
                    f"report/registry drift on {name!r}: report says "
                    f"{expected}, registry says {actual}")

    # ------------------------------------------------------------------
    # Canonical form
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Canonical byte encoding of the whole run.

        Two runs of the same seed under the same fault plan must
        produce equal encodings — the mutate-smoke gate and the golden
        mutation-trace test compare these bytes directly.
        """
        chunks: List[bytes] = [b"mutation-report-v1\n",
                               (f"seed={self.seed}\n").encode("utf-8")]
        for op in self.ops:
            chunks.append((op.line() + "\n").encode("utf-8"))
        for s in self.searches:
            head = (f"search {s.seq} {s.at_seconds!r} epoch={s.epoch} "
                    f"wrong={s.n_wrong}\n")
            chunks.append(head.encode("utf-8"))
            chunks.append(np.ascontiguousarray(s.ids).tobytes())
            chunks.append(np.ascontiguousarray(s.dists).tobytes())
        tail = (f"\nfinal_epoch={self.final_epoch}"
                f"\nn_live={self.n_live}"
                f"\nn_slots={self.n_slots}"
                f"\ncheckpoint_lsn={self.checkpoint_lsn}"
                f"\nfinal_digest={self.final_digest}"
                f"\nstore_digest={self.store_digest}\n")
        chunks.append(tail.encode("utf-8"))
        return b"".join(chunks)

    def digest(self) -> str:
        """SHA-256 hex digest of :meth:`to_bytes`."""
        return hashlib.sha256(self.to_bytes()).hexdigest()

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def summary(self) -> str:
        """Multi-line human-readable summary (what ``mutate-sim`` prints)."""
        lines = [
            f"MutationReport: {len(self.ops)} operations "
            f"(seed {self.seed})",
            f"  inserts       {self.n_inserts} batches, "
            f"{self.points_inserted} points",
            f"  deletes       {self.n_deletes} ops, "
            f"{self.points_deleted} ids tombstoned",
            f"  compactions   {self.n_compactions} committed",
            f"  checkpoints   {self.n_checkpoints} installed "
            f"(last lsn {self.checkpoint_lsn})",
            f"  searches      {self.n_searches} issued, "
            f"{self.n_wrong_answers} wrong answers",
            f"  crashes       {self.n_crashes} delivered, "
            f"{self.n_recoveries} recoveries "
            f"({self.replayed_records} records replayed)",
            f"  final         epoch {self.final_epoch}, "
            f"{self.n_live} live / {self.n_slots} slots",
            f"  index digest  {self.final_digest}",
            f"  store digest  {self.store_digest}",
        ]
        return "\n".join(lines)
