"""Deterministic tombstone compaction: detach dead vertices, repair holes.

Deletes only tombstone a vertex — it keeps routing searches until a
compaction pass rewrites the adjacency around it.  Compaction runs in
three named phases (each a crash point for the chaos layer):

- ``compaction.scan``    — find the tombstoned vertices.
- ``compaction.rewrite`` — drop every edge that *ends* at a dead
  vertex from the live rows, remembering who pointed where.
- ``compaction.repair``  — bridge each hole: the live vertices adjacent
  to a dead *component* (the out-neighbors of its vertices plus everyone
  who pointed into it; adjacent dead vertices are one hole, else a path
  crossing two of them has no common bridge set) are offered each other
  as candidate neighbors via the usual best-``d_max`` row merge, and a
  chain over the sorted members is then *forced* — evicting a farthest
  edge when a row is full — so connectivity through the hole survives
  even when every member's row is packed with closer neighbors (the
  deleted-hub case, where the best-effort merge alone would cut the
  graph).  Dead rows are then emptied entirely.  Because bridging
  merges may themselves evict pre-existing edges from full rows, a
  final reconnect sweep restores entry-reachability of every live
  vertex before the pass returns.

The pass is a pure, deterministic function of (graph, tombstones,
points): vertices are visited in ascending id order and every row write
goes through the same sorted-merge primitive the construction kernels
use.  Work is charged to the cost model (prefix-sum scan, per-row
adjacency merges, bulk distance computations for bridge candidates).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

import numpy as np

from repro.errors import MutableIndexError
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.graphs.adjacency import ProximityGraph

#: Phase names, in execution order (also crash points; see
#: :data:`repro.faults.plan.CRASH_PHASES`).
COMPACTION_PHASES = ("compaction.scan", "compaction.rewrite",
                     "compaction.repair")


@dataclass
class CompactionStats:
    """What one compaction pass did, and what it cost."""

    n_dead: int = 0
    n_rows_rewritten: int = 0
    n_edges_dropped: int = 0
    n_bridge_candidates: int = 0
    n_reconnect_edges: int = 0
    distance_cycles: float = 0.0
    structure_cycles: float = 0.0

    @property
    def total_cycles(self) -> float:
        """All cycles charged by the pass."""
        return self.distance_cycles + self.structure_cycles


def compact_graph(graph: ProximityGraph, points: np.ndarray,
                  tombstones: np.ndarray, *,
                  costs: CostTable = DEFAULT_COSTS,
                  n_threads: int = 32,
                  phase_hook: Optional[Callable[[str], None]] = None
                  ) -> CompactionStats:
    """Detach every tombstoned vertex from ``graph``, repairing holes.

    Args:
        graph: Graph to compact; mutated in place.
        points: ``(n, d)`` point matrix (bridge distances are computed
            from it).
        tombstones: ``(n,)`` boolean mask of dead vertices.
        costs: Cycle cost table for the charge accounting.
        n_threads: Simulated block width for the charges.
        phase_hook: Called with each :data:`COMPACTION_PHASES` name
            before that phase's work — the crash-injection point.  A
            hook that raises aborts the pass mid-way, which is exactly
            what the chaos layer does; callers must therefore run
            compaction on shadow state and swap only on completion.

    Returns:
        A :class:`CompactionStats` ledger.
    """
    tombstones = np.asarray(tombstones, dtype=bool)
    if tombstones.shape != (graph.n_vertices,):
        raise MutableIndexError(
            f"tombstone mask must be shape ({graph.n_vertices},), got "
            f"{tombstones.shape}")
    hook = phase_hook or (lambda phase: None)
    stats = CompactionStats()
    n_dims = points.shape[1]

    hook("compaction.scan")
    dead = np.flatnonzero(tombstones)
    stats.n_dead = len(dead)
    stats.structure_cycles += costs.prefix_sum_cycles(
        graph.n_vertices, n_threads)
    if len(dead) == 0:
        return stats

    # Remember each dead vertex's former out-neighborhood before any row
    # is touched; the repair phase bridges through it.
    dead_out: Dict[int, np.ndarray] = {
        int(d): graph.neighbors(int(d)) for d in dead}

    hook("compaction.rewrite")
    in_neighbors: Dict[int, List[int]] = {int(d): [] for d in dead}
    live_vertices = np.flatnonzero(~tombstones)
    for v in live_vertices:
        v = int(v)
        degree = int(graph.degrees[v])
        if degree == 0:
            continue
        row_ids = graph.neighbor_ids[v, :degree]
        dead_here = tombstones[row_ids]
        if not np.any(dead_here):
            continue
        for u in row_ids[dead_here]:
            in_neighbors[int(u)].append(v)
        keep = ~dead_here
        graph.set_row(v, row_ids[keep],
                      graph.neighbor_dists[v, :degree][keep])
        stats.n_rows_rewritten += 1
        stats.n_edges_dropped += int(dead_here.sum())
        stats.structure_cycles += costs.adjacency_merge_cycles(
            graph.d_max, int(dead_here.sum()), n_threads)

    hook("compaction.repair")
    metric = graph.metric
    for comp in _dead_components(dead, dead_out, tombstones):
        member_parts = [np.empty(0, dtype=np.int64)]
        for d in comp:
            member_parts.append(dead_out[d][~tombstones[dead_out[d]]])
            member_parts.append(np.asarray(in_neighbors[d],
                                           dtype=np.int64))
            # Empty the dead row itself (its edges also dropped).
            stats.n_edges_dropped += int(graph.degrees[d])
            graph.set_row(d, [], [])
        members = np.unique(np.concatenate(member_parts))
        if len(members) < 2:
            continue
        for u in members:
            u = int(u)
            candidates = members[members != u]
            dists = metric.one_to_many(points[u], points[candidates])
            graph.merge_row(u, candidates, dists)
            stats.n_bridge_candidates += len(candidates)
            stats.distance_cycles += costs.bulk_distance_cycles(
                len(candidates), n_dims, n_threads)
            stats.structure_cycles += costs.adjacency_merge_cycles(
                graph.d_max, len(candidates), n_threads)
        # The merges above are capacity-bounded: a member whose row is
        # already full of closer neighbors silently drops its bridge
        # edges, which cuts the graph exactly when the hole was the
        # only link between two regions.  Force a chain over the
        # sorted members so the hole can never disconnect them.
        for i in range(len(members) - 1):
            a, b = int(members[i]), int(members[i + 1])
            dist = float(metric.one_to_many(points[a],
                                            points[b:b + 1])[0])
            stats.distance_cycles += costs.bulk_distance_cycles(
                1, n_dims, n_threads)
            for u, w in ((a, b), (b, a)):
                if _force_edge(graph, u, w, dist):
                    stats.structure_cycles += (
                        costs.adjacency_merge_cycles(graph.d_max, 1,
                                                     n_threads))
    # Bridging merges are capacity-bounded and may have evicted
    # pre-existing edges elsewhere; sweep up any region that lost its
    # last path from the entry.
    _reconnect(graph, points, tombstones, costs=costs,
               n_threads=n_threads, stats=stats)
    return stats


def _directed_reach(graph: ProximityGraph, root: int) -> Set[int]:
    """Vertices reachable from ``root`` following directed edges."""
    seen = {root}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for v in graph.neighbor_ids[u, :int(graph.degrees[u])]:
            v = int(v)
            if v not in seen:
                seen.add(v)
                queue.append(v)
    return seen


def _reconnect(graph: ProximityGraph, points: np.ndarray,
               tombstones: np.ndarray, *, costs: CostTable,
               n_threads: int, stats: CompactionStats) -> None:
    """Restore entry-reachability of every live vertex.

    Searches start at the first live vertex (``MutableIndex`` moves
    its entry there), so that is the root that matters.  Each round
    takes the smallest unreachable live id and forces an edge to it
    from its *nearest* reachable live vertex, preferring sources with
    spare row capacity so the forced edge cannot evict (and thereby
    cut) anything else; eviction from the nearest source is the last
    resort, and the round cap bounds any fallout.  Deterministic:
    ids and distances fully order every choice.
    """
    live = np.flatnonzero(~tombstones)
    if len(live) == 0:
        return
    root = int(live[0])
    n_dims = points.shape[1]
    for _ in range(len(live)):
        seen = _directed_reach(graph, root)
        stats.structure_cycles += costs.prefix_sum_cycles(
            len(live), n_threads)
        unreachable = [int(v) for v in live if int(v) not in seen]
        if not unreachable:
            return
        v = unreachable[0]
        sources = np.array(
            sorted(u for u in seen if not tombstones[u]),
            dtype=np.int64)
        dists = graph.metric.one_to_many(points[v], points[sources])
        stats.distance_cycles += costs.bulk_distance_cycles(
            len(sources), n_dims, n_threads)
        order = np.lexsort((sources, dists))
        pick = None
        for idx in order:
            if int(graph.degrees[sources[idx]]) < graph.d_max:
                pick = idx
                break
        if pick is None:
            pick = order[0]
        u, dist = int(sources[pick]), float(dists[pick])
        _force_edge(graph, u, v, dist)
        stats.n_reconnect_edges += 1
        stats.structure_cycles += costs.adjacency_merge_cycles(
            graph.d_max, 1, n_threads)


def _dead_components(dead: np.ndarray, dead_out: Dict[int, np.ndarray],
                     tombstones: np.ndarray) -> List[List[int]]:
    """Connected components of the dead-induced subgraph.

    Adjacent dead vertices form one hole: a live path crossing several
    of them (``u → d1 → d2 → w``) has no single dead vertex whose
    bridge members contain both endpoints, so each component must be
    repaired as a unit.  Edges are taken from the pre-rewrite rows
    (``dead_out``), undirected; components are returned in ascending
    order of their smallest member, members ascending.
    """
    parent = {int(d): int(d) for d in dead}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for d in dead:
        d = int(d)
        for nb in dead_out[d]:
            nb = int(nb)
            if tombstones[nb]:
                ra, rb = find(d), find(nb)
                if ra != rb:
                    parent[max(ra, rb)] = min(ra, rb)
    groups: Dict[int, List[int]] = {}
    for d in dead:
        groups.setdefault(find(int(d)), []).append(int(d))
    return [sorted(groups[root]) for root in sorted(groups)]


def _force_edge(graph: ProximityGraph, u: int, w: int,
                dist: float) -> bool:
    """Guarantee the edge ``u → w``, evicting the farthest edge if full.

    Returns ``True`` if the row was modified.  The row stays sorted by
    ``(distance, id)`` — the tie rule every kernel in the library uses.
    """
    degree = int(graph.degrees[u])
    row_ids = graph.neighbor_ids[u, :degree]
    if w in row_ids:
        return False
    row_dists = graph.neighbor_dists[u, :degree]
    if degree >= graph.d_max:
        # Evict the current farthest neighbor to make room; the forced
        # bridge edge stays regardless of its own distance.
        row_ids, row_dists = row_ids[:-1], row_dists[:-1]
    ids = np.append(row_ids, w)
    dists = np.append(row_dists, dist)
    order = np.lexsort((ids, dists))
    graph.set_row(u, ids[order], dists[order])
    return True
