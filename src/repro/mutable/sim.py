"""Seeded mutation workload: the chaos driver for the mutable index.

:func:`run_mutation_sim` plays a deterministic schedule of inserts,
deletes, searches, compactions and checkpoints against one
:class:`~repro.mutable.index.MutableIndex` on a simulated timeline,
optionally under a :class:`~repro.faults.plan.FaultPlan` whose
``crash`` events kill the process mid-compaction or mid-checkpoint.
Every crash is followed by a full :func:`~repro.mutable.recovery.recover`
from the surviving durable store, after which the workload continues —
exactly the crash/restart loop a real online index lives through.

Everything is a pure function of ``(workload knobs, seed, fault
plan)``: the RNG stream, the op schedule, the simulated timestamps and
the recovery replay are all deterministic, so two runs produce
byte-identical :class:`~repro.mutable.report.MutationReport` encodings.
The smoke gate (``scripts/check_mutate_smoke.py``) and the golden
mutation-trace test pin exactly this.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.params import BuildParams, SearchParams
from repro.datasets.synthetic import gaussian_mixture
from repro.errors import ProcessCrashError
from repro.faults.injector import CrashInjector
from repro.faults.plan import FaultPlan
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.device import DeviceSpec, QUADRO_P5000
from repro.mutable.index import MutableIndex
from repro.mutable.recovery import recover
from repro.mutable.report import MutationReport, OpRecord, SearchRecord

#: Seconds between scheduled workload operations.  Mutation kernel
#: charges are micro-to-millisecond scale, so unit spacing keeps every
#: span interval disjoint on the ``mutate`` lane.
OP_SPACING_SECONDS = 1.0

#: Offset after a crash at which the replacement process recovers.
RECOVERY_DELAY_SECONDS = 0.5


def default_build_params(n_threads: int = 32) -> BuildParams:
    """Small-corpus build parameters the sim (and its gates) use."""
    return BuildParams(d_min=4, d_max=8, n_blocks=8,
                       n_threads=n_threads)


def run_mutation_sim(n_points: int = 200, n_dims: int = 16,
                     n_ops: int = 24, seed: int = 0,
                     batch_size: int = 8, k: int = 5, l_n: int = 32,
                     compact_every: int = 6, checkpoint_every: int = 9,
                     build_params: Optional[BuildParams] = None,
                     fault_plan: Optional[FaultPlan] = None,
                     metric: str = "euclidean",
                     device: DeviceSpec = QUADRO_P5000,
                     costs: CostTable = DEFAULT_COSTS,
                     tracer=None, metrics=None,
                     backend: Optional[str] = None) -> MutationReport:
    """Run one deterministic mutation workload, chaos and all.

    Args:
        n_points: Seed corpus size (offline-built at ``t = 0``).
        n_dims: Point dimensionality.
        n_ops: Scheduled operations after the seed build.
        seed: Workload RNG seed (corpus, batches, delete picks,
            queries).
        batch_size: Maximum points per insert batch.
        k: Neighbors per search query.
        l_n: Search candidate-pool length (power of two).
        compact_every: A compaction every this many ops.
        checkpoint_every: A checkpoint every this many ops (checked
            before ``compact_every``; both count from 1).
        build_params: Seed-build parameters; defaults to
            :func:`default_build_params`.
        fault_plan: Optional chaos schedule; only its ``crash`` events
            apply here.
        metric: Distance metric name.
        device: Simulated device.
        costs: Cycle cost table.
        tracer: Optional span tracer (``mutate.*``, ``compaction.*``,
            ``recovery.*`` spans on the ``mutate`` lane).
        metrics: Optional metrics registry; the returned report's
            :meth:`~repro.mutable.report.MutationReport.verify_against_metrics`
            reconciles against it with zero drift.
        backend: Execution backend for the seed build (results are
            backend-independent).

    Returns:
        A byte-deterministic :class:`MutationReport`.
    """
    params = build_params or default_build_params()
    rng = np.random.default_rng(seed)
    corpus = gaussian_mixture(n_points, n_dims,
                              n_clusters=min(8, n_points),
                              seed=seed).astype(np.float64)
    index = MutableIndex.build(corpus, params, metric=metric,
                               device=device, costs=costs,
                               backend=backend)
    store = index.store
    crash = CrashInjector(fault_plan) if fault_plan is not None else None
    search_params = SearchParams(k=k, l_n=l_n,
                                 n_threads=params.n_threads)
    report = MutationReport(seed=seed, metrics=metrics)
    checkpoint_lsn = 0
    seq = 0

    def record(kind: str, at: float, count: int = 0,
               status: str = "ok", phase: str = "") -> None:
        nonlocal seq
        report.ops.append(OpRecord(seq=seq, kind=kind, at_seconds=at,
                                   epoch_after=index.epoch,
                                   count=count, status=status,
                                   phase=phase))
        seq += 1

    def do_search(now: float) -> None:
        n_queries = 1 + int(rng.integers(0, 4))
        queries = rng.standard_normal((n_queries, n_dims))
        k_eff = min(k, index.n_live)
        ids, dists = index.search(
            queries, search_params.with_overrides(k=k_eff)
            if k_eff != k else search_params)
        returned = ids[ids >= 0]
        n_wrong = int(index.tombstones[returned].sum())
        if metrics is not None:
            metrics.counter("mutate.searches").inc()
            if n_wrong:
                metrics.counter("mutate.wrong_answers").inc(n_wrong)
        report.searches.append(SearchRecord(
            seq=seq, at_seconds=now, epoch=index.epoch, ids=ids,
            dists=dists, n_wrong=n_wrong))
        record("search", now, count=n_queries)

    for step in range(n_ops):
        now = (step + 1) * OP_SPACING_SECONDS
        if checkpoint_every and (step + 1) % checkpoint_every == 0:
            kind = "checkpoint"
        elif compact_every and (step + 1) % compact_every == 0:
            kind = "compact"
        else:
            roll = rng.random()
            kind = ("insert" if roll < 0.40
                    else "delete" if roll < 0.65 else "search")

        if kind == "search":
            do_search(now)
            continue
        if kind == "insert":
            batch = 1 + int(rng.integers(0, batch_size))
            points = 0.5 * rng.standard_normal((batch, n_dims))
            index.insert(points, now=now, tracer=tracer,
                         metrics=metrics)
            record("insert", now, count=batch)
            continue
        if kind == "delete":
            n_del = min(1 + int(rng.integers(0, 3)), index.n_live - 1)
            if n_del <= 0:
                do_search(now)
                continue
            ids = np.sort(rng.choice(index.live_ids(), size=n_del,
                                     replace=False))
            index.delete(ids, now=now, tracer=tracer, metrics=metrics)
            record("delete", now, count=n_del)
            continue

        # compact / checkpoint: the crash-prone lifecycle phases.  A
        # delivered crash kills the op mid-phase; the durable store
        # survives, and a replacement process recovers from it.
        try:
            if kind == "compact":
                stats = index.compact(now=now, crash=crash,
                                      tracer=tracer, metrics=metrics)
                record("compact", now, count=stats.n_dead)
            else:
                checkpoint_lsn = index.checkpoint(
                    now=now, crash=crash, tracer=tracer,
                    metrics=metrics)
                record("checkpoint", now, count=checkpoint_lsn)
        except ProcessCrashError as crashed:
            record(kind, now, status="crashed", phase=crashed.phase)
            recover_at = now + RECOVERY_DELAY_SECONDS
            index = recover(store, device=device, costs=costs,
                            tracer=tracer, metrics=metrics,
                            now=recover_at)
            index.validate()
            record("recover", recover_at,
                   count=index.last_recovery["n_replayed"])

    index.validate()
    report.final_digest = index.digest()
    report.store_digest = store.digest()
    report.final_epoch = index.epoch
    report.n_live = index.n_live
    report.n_slots = index.n_slots
    report.checkpoint_lsn = checkpoint_lsn
    report.store = store
    return report
