"""Crash recovery: rebuild a mutable index from the durable store.

Recovery is a pure function of the :class:`~repro.mutable.wal.DurableStore`:
load the last checkpoint (or replay the base build from the store's
superblock when none exists), then apply the surviving WAL records in
LSN order through the *same* deterministic apply paths the live index
used.  Because every apply step — the construction kernels, the
tombstone flips, the compaction pass — is a deterministic function of
prior state, two recoveries of the same store produce byte-identical
indexes, and both match what a crash-free process would have reached
after the surviving prefix of mutations.  That is the crash-safety
acceptance bar: *recovered digest == clean-replay digest, never a torn
graph.*
"""

from __future__ import annotations

import numpy as np

from repro.core.params import BuildParams
from repro.errors import MutableIndexError
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.device import DeviceSpec, QUADRO_P5000
from repro.mutable.index import MutableIndex
from repro.mutable.wal import (
    OP_COMPACT,
    OP_DELETE,
    OP_INSERT,
    DurableStore,
)


def _params_from_meta(meta: dict) -> BuildParams:
    ef = meta.get("ef_construction")
    l_n = meta.get("search_l_n")
    return BuildParams(d_min=int(meta["d_min"]),
                       d_max=int(meta["d_max"]),
                       n_blocks=int(meta["n_blocks"]),
                       n_threads=int(meta["n_threads"]),
                       ef_construction=None if ef is None else int(ef),
                       search_l_n=None if l_n is None else int(l_n),
                       seed=int(meta.get("seed", 0)))


def recover(store: DurableStore,
            device: DeviceSpec = QUADRO_P5000,
            costs: CostTable = DEFAULT_COSTS,
            tracer=None, metrics=None,
            now: float = 0.0) -> MutableIndex:
    """Rebuild the index the durable store describes.

    Args:
        store: The surviving durable state (checkpoint + WAL + meta).
        device: Simulated device for the replayed kernels.
        costs: Cycle cost table.
        tracer: Optional span tracer (one ``recovery.replay`` span;
            replayed records emit no spans of their own).
        metrics: Optional metrics registry (``recovery.runs``,
            ``recovery.replayed_records``).
        now: Simulated time the recovery starts (span placement only;
            records replay at their original timestamps).

    Returns:
        A :class:`MutableIndex` whose digest equals a clean replay of
        the surviving log.
    """
    span = tracer.begin("recovery.replay", now,
                        lane="mutate") if tracer else None
    records = store.surviving_records()
    if store.checkpoint is not None:
        index = MutableIndex.from_checkpoint_bytes(
            store.checkpoint, store, device=device, costs=costs)
        replay = records
    else:
        if store.meta is None:
            raise MutableIndexError(
                "store has no checkpoint and no superblock meta; "
                "nothing to recover from")
        if not records or records[0].op != OP_INSERT:
            raise MutableIndexError(
                "store has no checkpoint and the WAL does not start "
                "with the base-build insert record")
        index = MutableIndex._apply_base_build(
            store, np.asarray(records[0].points),
            _params_from_meta(store.meta),
            metric=str(store.meta["metric"]),
            search_kernel=str(store.meta["search_kernel"]),
            device=device, costs=costs)
        replay = records[1:]

    # Replayed records deliberately publish no mutate.* metrics and no
    # mutate spans: they re-apply mutations the registry and tracer
    # already recorded when they first landed, and double-counting
    # would break zero-drift reconciliation (and overlap the original
    # spans' lane intervals).  Recovery publishes its own recovery.*
    # counters and one ``recovery.replay`` span.
    n_replayed = 0
    for record in replay:
        if record.op == OP_INSERT:
            index._apply_insert(record.points, record.at_seconds)
        elif record.op == OP_DELETE:
            index._apply_delete(record.ids, record.at_seconds)
        elif record.op == OP_COMPACT:
            index._apply_compact(record.at_seconds, log=False)
        else:  # pragma: no cover - WalRecord validates op kinds
            raise MutableIndexError(f"unknown WAL op {record.op!r}")
        n_replayed += 1

    index.last_recovery = {"n_replayed": n_replayed,
                           "from_checkpoint":
                               store.checkpoint is not None}
    if metrics is not None:
        metrics.counter("recovery.runs").inc()
        metrics.counter("recovery.replayed_records").inc(n_replayed)
    if span is not None:
        tracer.end(span, now, attributes={
            "n_replayed": n_replayed,
            "from_checkpoint": int(store.checkpoint is not None),
            "epoch": index.epoch})
    return index


def clean_replay_digest(store: DurableStore,
                        device: DeviceSpec = QUADRO_P5000,
                        costs: CostTable = DEFAULT_COSTS) -> str:
    """Digest of an independent, from-scratch replay of the store.

    The crash-recovery battery compares :func:`recover`'s digest
    against this — a separately constructed index from the same
    surviving log — to prove recovery hides no torn state.
    """
    return recover(store, device=device, costs=costs).digest()
