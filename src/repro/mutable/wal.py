"""Simulated write-ahead log and durable store for the mutable index.

Durability in this reproduction is *simulated*: there is no disk, but
the contract is the real one.  A :class:`DurableStore` models the only
state that survives a process crash — one checkpoint blob plus an
append-only :class:`WriteAheadLog` of intent records — and both writes
are atomic (a record is either fully appended or absent; a checkpoint
either installs with its WAL truncation or not at all).  Everything
else (the in-memory graph, tombstone mask, epoch counter) is volatile
and lost when a ``crash`` fault fires.

Recovery is therefore a pure function: load the checkpoint, replay the
surviving records in LSN order.  Because every apply step downstream is
deterministic, the recovered index digest must equal a clean replay of
the same surviving log — the crash-safety acceptance bar.
"""

from __future__ import annotations

import base64
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import MutableIndexError

#: Operation kinds a WAL record may carry.
OP_INSERT = "insert"
OP_DELETE = "delete"
OP_COMPACT = "compact"
OP_KINDS = (OP_INSERT, OP_DELETE, OP_COMPACT)


def encode_array(arr: np.ndarray) -> Dict[str, object]:
    """Exact, JSON-safe encoding of an ndarray (dtype + shape + bytes)."""
    arr = np.ascontiguousarray(arr)
    return {"dtype": str(arr.dtype), "shape": list(arr.shape),
            "data": base64.b64encode(arr.tobytes()).decode("ascii")}


def decode_array(data: Dict[str, object]) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    raw = base64.b64decode(str(data["data"]))
    arr = np.frombuffer(raw, dtype=np.dtype(str(data["dtype"])))
    return arr.reshape([int(s) for s in data["shape"]]).copy()


@dataclass(eq=False)
class WalRecord:
    """One durable intent record.

    Attributes:
        lsn: Log sequence number, 1-based and strictly increasing.
        op: One of :data:`OP_KINDS`.
        at_seconds: Simulated time the mutation was issued.
        points: ``(b, d)`` new point vectors (``insert`` only).
        ids: Deleted external ids (``delete`` only).
    """

    lsn: int
    op: str
    at_seconds: float
    points: Optional[np.ndarray] = None
    ids: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.op not in OP_KINDS:
            raise MutableIndexError(
                f"unknown WAL op {self.op!r}; expected one of {OP_KINDS}")
        if self.op == OP_INSERT and self.points is None:
            raise MutableIndexError("insert record requires points")
        if self.op == OP_DELETE and self.ids is None:
            raise MutableIndexError("delete record requires ids")

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form for serialization."""
        data: Dict[str, object] = {"lsn": self.lsn, "op": self.op,
                                   "at_seconds": self.at_seconds}
        if self.points is not None:
            data["points"] = encode_array(self.points)
        if self.ids is not None:
            data["ids"] = encode_array(np.asarray(self.ids,
                                                  dtype=np.int64))
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WalRecord":
        """Inverse of :meth:`to_dict`."""
        points = data.get("points")
        ids = data.get("ids")
        return cls(lsn=int(data["lsn"]), op=str(data["op"]),
                   at_seconds=float(data["at_seconds"]),
                   points=None if points is None else decode_array(points),
                   ids=None if ids is None else decode_array(ids))

    def to_json(self) -> str:
        """Canonical JSON encoding (sorted keys)."""
        return json.dumps(self.to_dict(), sort_keys=True)


class WriteAheadLog:
    """Append-only record log; appends are atomic, order is the truth."""

    def __init__(self, records: Tuple[WalRecord, ...] = ()):
        self._records: List[WalRecord] = list(records)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Tuple[WalRecord, ...]:
        """The surviving records, LSN order."""
        return tuple(self._records)

    def append(self, record: WalRecord) -> WalRecord:
        """Atomically append one record; LSNs must strictly increase."""
        if self._records and record.lsn <= self._records[-1].lsn:
            raise MutableIndexError(
                f"WAL lsn must increase: {record.lsn} after "
                f"{self._records[-1].lsn}")
        self._records.append(record)
        return record

    def truncate_through(self, lsn: int) -> int:
        """Drop records with ``lsn <=`` the given LSN (checkpointed)."""
        before = len(self._records)
        self._records = [r for r in self._records if r.lsn > lsn]
        return before - len(self._records)

    def to_bytes(self) -> bytes:
        """Canonical byte encoding (one record JSON per line)."""
        return "\n".join(r.to_json() for r in self._records).encode("utf-8")

    def digest(self) -> str:
        """SHA-256 hex digest of :meth:`to_bytes`."""
        return hashlib.sha256(self.to_bytes()).hexdigest()


@dataclass
class DurableStore:
    """What survives a crash: one checkpoint blob + the surviving WAL.

    Attributes:
        checkpoint: Opaque checkpoint bytes (``None`` before the first
            checkpoint; recovery then starts from the base build, whose
            records the WAL still holds).
        checkpoint_lsn: LSN through which the checkpoint folds the log.
        wal: Records appended after ``checkpoint_lsn``.
        meta: Immutable index metadata (build parameters, metric,
            search kernel) written once at creation — the superblock a
            recovery needs to replay the base build from LSN 1.
    """

    checkpoint: Optional[bytes] = None
    checkpoint_lsn: int = 0
    wal: WriteAheadLog = field(default_factory=WriteAheadLog)
    next_lsn: int = 1
    meta: Optional[Dict[str, object]] = None

    def append(self, op: str, at_seconds: float,
               points: Optional[np.ndarray] = None,
               ids: Optional[np.ndarray] = None) -> WalRecord:
        """Durably append one intent record, assigning the next LSN."""
        record = WalRecord(lsn=self.next_lsn, op=op,
                           at_seconds=float(at_seconds),
                           points=None if points is None
                           else np.ascontiguousarray(points).copy(),
                           ids=None if ids is None
                           else np.asarray(ids, dtype=np.int64).copy())
        self.wal.append(record)
        self.next_lsn += 1
        return record

    def install_checkpoint(self, blob: bytes, last_lsn: int) -> None:
        """Atomically install a checkpoint and truncate the folded WAL."""
        if last_lsn < self.checkpoint_lsn:
            raise MutableIndexError(
                f"checkpoint lsn cannot move backwards: "
                f"{self.checkpoint_lsn} -> {last_lsn}")
        self.checkpoint = bytes(blob)
        self.checkpoint_lsn = int(last_lsn)
        self.wal.truncate_through(last_lsn)

    def surviving_records(self) -> Tuple[WalRecord, ...]:
        """Records a recovery must replay on top of the checkpoint."""
        return self.wal.records

    def digest(self) -> str:
        """SHA-256 over the checkpoint blob + surviving WAL bytes."""
        h = hashlib.sha256()
        h.update(json.dumps(self.meta, sort_keys=True).encode("utf-8"))
        h.update(self.checkpoint or b"")
        h.update(b"|%d|" % self.checkpoint_lsn)
        h.update(self.wal.to_bytes())
        return h.hexdigest()
