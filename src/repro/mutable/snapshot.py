"""Copy-on-write versioned snapshots of the mutable index.

A :class:`SnapshotHandle` pins one epoch of the index: the graph, the
point matrix, the tombstone mask and the entry vertex exactly as they
were at :meth:`repro.mutable.index.MutableIndex.snapshot` time.  The
handle holds *references* — taking a snapshot copies nothing.  Instead
the index goes copy-on-write: the first mutation after a snapshot deep-
copies the live state and mutates the copy, leaving every outstanding
handle untouched.  In-flight searches and serve replays against a
pinned handle are therefore byte-identical no matter how many inserts,
deletes or compactions land after the pin.

``serving_view()`` materialises a search-ready view: if the pinned
epoch carries pending tombstones, a compacted *copy* of the pinned
graph is built (slot ids are stable, so no id remapping is needed and
no tombstone can be returned); otherwise the pinned graph serves
directly.  The view is cached on the handle, so repeated replays reuse
it.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

import numpy as np

from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.graphs.adjacency import ProximityGraph
from repro.mutable.compaction import compact_graph


class SnapshotHandle:
    """One pinned, immutable version of a :class:`MutableIndex`.

    Attributes:
        epoch: The index epoch this handle pins.
        graph: The pinned graph (shared until the index COWs away).
        points: Pinned ``(n_slots, d)`` point matrix.
        tombstones: Pinned ``(n_slots,)`` tombstone mask.
        entry: Pinned entry vertex (always live at pin time).
    """

    def __init__(self, epoch: int, graph: ProximityGraph,
                 points: np.ndarray, tombstones: np.ndarray,
                 entry: int):
        self.epoch = int(epoch)
        self.graph = graph
        self.points = points
        self.tombstones = tombstones
        self.entry = int(entry)
        self._view: Optional[Tuple[ProximityGraph, np.ndarray, int]] = None

    @property
    def n_slots(self) -> int:
        """Total id slots (live + tombstoned) at pin time."""
        return self.graph.n_vertices

    @property
    def n_live(self) -> int:
        """Live points at pin time."""
        return int((~self.tombstones).sum())

    def live_ids(self) -> np.ndarray:
        """External ids alive at pin time, ascending."""
        return np.flatnonzero(~self.tombstones)

    def serving_view(self) -> Tuple[ProximityGraph, np.ndarray, int]:
        """A ``(graph, points, entry)`` triple safe to search directly.

        Tombstoned vertices are unreachable in the view, so a plain
        :func:`~repro.core.ganns.ganns_search` over it can never return
        a deleted id and needs no post-filtering.  Slot ids are stable:
        result ids are external ids.  The materialisation is a pure
        function of the pinned state, computed once per handle.
        """
        if self._view is None:
            if np.any(self.tombstones):
                view_graph = self.graph.copy()
                compact_graph(view_graph, self.points, self.tombstones)
                self._view = (view_graph, self.points, self.entry)
            else:
                self._view = (self.graph, self.points, self.entry)
        return self._view

    def search(self, queries: np.ndarray, params: SearchParams):
        """Search the pinned version (see :func:`ganns_search`)."""
        view_graph, view_points, entry = self.serving_view()
        return ganns_search(view_graph, view_points, queries, params,
                            entry=entry)

    def digest(self) -> str:
        """SHA-256 over the pinned state's canonical bytes."""
        h = hashlib.sha256()
        h.update(b"epoch=%d entry=%d " % (self.epoch, self.entry))
        h.update(np.ascontiguousarray(self.points).tobytes())
        h.update(np.ascontiguousarray(self.graph.neighbor_ids).tobytes())
        h.update(np.ascontiguousarray(self.graph.neighbor_dists).tobytes())
        h.update(np.ascontiguousarray(self.graph.degrees).tobytes())
        h.update(np.ascontiguousarray(self.tombstones).tobytes())
        return h.hexdigest()
