"""Crash-safe mutable ANN index over the GGraphCon substrate.

A :class:`MutableIndex` wraps a :class:`~repro.graphs.adjacency.ProximityGraph`
with the full online lifecycle:

- **Streaming inserts** — each batch rides the paper's own construction
  kernels (:func:`repro.core.construction.insert_batch_nsw`: a Phase-1
  local graph over the batch, then the Phase-2 three-step merge into the
  live graph), charged to the gpusim cost model.
- **Tombstone deletes** — ids are marked dead instantly (never returned
  again) and stay as routing nodes until a compaction pass
  (:func:`repro.mutable.compaction.compact_graph`) detaches them and
  bridges the holes.
- **Copy-on-write snapshots** — :meth:`snapshot` pins the current epoch
  by reference, copying nothing.  Every mutation builds fresh arrays
  (grown copies, shadow graphs, copied masks) and *swaps references*,
  never writing through a pinned array — so pinned replays are
  byte-identical forever, at zero cost until a mutation actually lands.
- **WAL + checkpoint** — every mutation appends an intent record to the
  :class:`~repro.mutable.wal.DurableStore` *before* applying; a crash
  at any lifecycle phase loses only volatile state, and
  :func:`repro.mutable.recovery.recover` rebuilds an identical index
  from the surviving log.

External ids are slot ids and are never reused: deleting id 7 retires
slot 7 forever, so a result id means the same point at every epoch.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional, Tuple

import numpy as np

from repro.core.construction import build_nsw_gpu, insert_batch_nsw
from repro.core.ganns import ganns_search
from repro.core.params import BuildParams, SearchParams
from repro.errors import MutableIndexError, ProcessCrashError
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.device import DeviceSpec, QUADRO_P5000
from repro.gpusim.kernel import KernelLaunch
from repro.graphs.adjacency import PAD_DIST, PAD_ID, ProximityGraph
from repro.graphs.validation import validate_graph
from repro.mutable.compaction import CompactionStats, compact_graph
from repro.mutable.snapshot import SnapshotHandle
from repro.mutable.wal import (
    OP_COMPACT,
    OP_DELETE,
    OP_INSERT,
    DurableStore,
    decode_array,
    encode_array,
)


def _grown_graph(graph: ProximityGraph, n_new: int) -> ProximityGraph:
    """A copy of ``graph`` with ``n_new`` extra empty rows at the tail."""
    grown = ProximityGraph(graph.n_vertices + n_new, graph.d_max,
                           graph.metric_name, dtype=graph.dtype)
    grown.neighbor_ids[:graph.n_vertices] = graph.neighbor_ids
    grown.neighbor_dists[:graph.n_vertices] = graph.neighbor_dists
    grown.degrees[:graph.n_vertices] = graph.degrees
    return grown


class MutableIndex:
    """A proximity-graph index that accepts inserts and deletes online.

    Build one with :meth:`build` (offline GGraphCon over the seed
    corpus, logged as the first WAL record) or restore one with
    :func:`repro.mutable.recovery.recover`.

    Attributes:
        epoch: Version counter; bumps on every applied mutation.  Serve
            caches key their entries by it.
        store: The simulated durable store (checkpoint + WAL).
        mutation_seconds: Total simulated seconds charged to mutations.
    """

    def __init__(self, graph: ProximityGraph, points: np.ndarray,
                 tombstones: np.ndarray, entry: int,
                 build_params: BuildParams, metric: str,
                 store: DurableStore, epoch: int = 0,
                 search_kernel: str = "ganns",
                 device: DeviceSpec = QUADRO_P5000,
                 costs: CostTable = DEFAULT_COSTS):
        self.graph = graph
        self.points = np.ascontiguousarray(points, dtype=np.float64)
        self.tombstones = np.asarray(tombstones, dtype=bool).copy()
        self.entry = int(entry)
        self.build_params = build_params
        self.metric = metric
        self.store = store
        self.epoch = int(epoch)
        self.search_kernel = search_kernel
        self.device = device
        self.costs = costs
        self.mutation_seconds = 0.0
        self.last_compaction: Optional[CompactionStats] = None
        #: Tombstones already detached by a compaction pass — these are
        #: the ones the validation unreachability contract covers.
        self.compacted_tombstones = np.zeros(self.n_slots, dtype=bool)

    # ------------------------------------------------------------------
    # Construction / state
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, points: np.ndarray, params: BuildParams,
              metric: str = "euclidean", search_kernel: str = "ganns",
              device: DeviceSpec = QUADRO_P5000,
              costs: CostTable = DEFAULT_COSTS,
              backend: Optional[str] = None,
              family: str = "nsw") -> "MutableIndex":
        """Offline-build the seed corpus and open the durable store.

        The seed build is itself WAL-logged (as one big ``insert``
        record at LSN 1), so a crash before the first checkpoint still
        recovers by replaying from an empty store.

        Args:
            family: Registered index family of the seed graph.  Only
                families whose backend sets ``supports_mutation`` can
                host streaming inserts; others (CAGRA, HNSW, KNN) raise
                :class:`~repro.errors.UnsupportedOperationError` here,
                eagerly, instead of corrupting a batch-built graph
                mid-mutation.
        """
        from repro.core.backend import get_backend
        from repro.errors import UnsupportedOperationError
        index_backend = get_backend(family)
        if not index_backend.supports_mutation:
            raise UnsupportedOperationError(
                f"index family {family!r} does not support streaming "
                f"mutation; its graphs are batch-built — rebuild (or "
                f"snapshot-and-rebuild) instead, or use family 'nsw'"
            )
        points = np.ascontiguousarray(points, dtype=np.float64)
        store = DurableStore()
        store.meta = {
            "d_min": params.d_min, "d_max": params.d_max,
            "n_blocks": params.n_blocks, "n_threads": params.n_threads,
            "ef_construction": params.ef_construction,
            "search_l_n": params.search_l_n, "seed": params.seed,
            "metric": metric, "search_kernel": search_kernel,
        }
        store.append(OP_INSERT, 0.0, points=points)
        index = cls._apply_base_build(
            store, points, params, metric=metric,
            search_kernel=search_kernel, device=device, costs=costs,
            backend=backend)
        return index

    @classmethod
    def _apply_base_build(cls, store: DurableStore, points: np.ndarray,
                          params: BuildParams, metric: str,
                          search_kernel: str, device: DeviceSpec,
                          costs: CostTable,
                          backend: Optional[str] = None
                          ) -> "MutableIndex":
        """Deterministic seed build shared by :meth:`build` and recovery."""
        report = build_nsw_gpu(points, params,
                               search_kernel=search_kernel,
                               metric=metric, device=device, costs=costs,
                               backend=backend)
        index = cls(graph=report.graph, points=points,
                    tombstones=np.zeros(len(points), dtype=bool),
                    entry=0, build_params=params, metric=metric,
                    store=store, epoch=0, search_kernel=search_kernel,
                    device=device, costs=costs)
        index.mutation_seconds += report.seconds
        return index

    @property
    def n_slots(self) -> int:
        """Total id slots ever allocated (live + tombstoned)."""
        return self.graph.n_vertices

    @property
    def n_live(self) -> int:
        """Live (searchable) points."""
        return int((~self.tombstones).sum())

    @property
    def n_tombstones(self) -> int:
        """Deleted ids awaiting (or past) compaction."""
        return int(self.tombstones.sum())

    def live_ids(self) -> np.ndarray:
        """External ids currently alive, ascending."""
        return np.flatnonzero(~self.tombstones)

    def _first_live(self) -> int:
        live = np.flatnonzero(~self.tombstones)
        if len(live) == 0:  # pragma: no cover - guarded by delete()
            raise MutableIndexError("index has no live points")
        return int(live[0])

    def digest(self) -> str:
        """SHA-256 over the canonical bytes of the live state.

        Two indexes whose histories applied the same mutations in the
        same order have equal digests — the crash-recovery acceptance
        bar compares exactly this.
        """
        h = hashlib.sha256()
        h.update(b"epoch=%d entry=%d n=%d " % (self.epoch, self.entry,
                                               self.n_slots))
        h.update(np.ascontiguousarray(self.points).tobytes())
        h.update(np.ascontiguousarray(self.graph.neighbor_ids).tobytes())
        h.update(np.ascontiguousarray(
            self.graph.neighbor_dists).tobytes())
        h.update(np.ascontiguousarray(self.graph.degrees).tobytes())
        h.update(np.ascontiguousarray(self.tombstones).tobytes())
        return h.hexdigest()

    def validate(self) -> None:
        """Structural + tombstone validation of the live graph.

        The unreachability contract is enforced for *compacted*
        tombstones (fresh ones legitimately keep routing until the next
        pass).
        """
        validate_graph(self.graph,
                       tombstones=self.compacted_tombstones
                       if np.any(self.compacted_tombstones) else None)

    # ------------------------------------------------------------------
    # Copy-on-write snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> SnapshotHandle:
        """Pin the current epoch; O(1), copies nothing.

        Mutations never write through pinned arrays (they swap in fresh
        ones), so the returned handle replays byte-identically forever.
        """
        return SnapshotHandle(self.epoch, self.graph, self.points,
                              self.tombstones.copy(), self.entry)

    # ------------------------------------------------------------------
    # Mutations (WAL first, then apply)
    # ------------------------------------------------------------------

    def insert(self, new_points: np.ndarray, now: float = 0.0,
               tracer=None, metrics=None) -> np.ndarray:
        """Durably insert a batch of points; returns their new ids.

        The intent record lands in the WAL *before* the graph mutates:
        a crash mid-apply loses only volatile state, and recovery
        replays the record to the identical result.
        """
        new_points = np.ascontiguousarray(np.atleast_2d(new_points),
                                          dtype=np.float64)
        if new_points.shape[1] != self.points.shape[1]:
            raise MutableIndexError(
                f"insert dimensionality {new_points.shape[1]} != index "
                f"dimensionality {self.points.shape[1]}")
        self.store.append(OP_INSERT, now, points=new_points)
        return self._apply_insert(new_points, now, tracer=tracer,
                                  metrics=metrics)

    def _apply_insert(self, new_points: np.ndarray, now: float,
                      tracer=None, metrics=None) -> np.ndarray:
        span = tracer.begin("mutate.insert", now,
                            lane="mutate") if tracer else None
        start = self.n_slots
        new_ids = np.arange(start, start + len(new_points),
                            dtype=np.int64)
        self.graph = _grown_graph(self.graph, len(new_points))
        self.points = np.concatenate([self.points, new_points])
        self.tombstones = np.concatenate(
            [self.tombstones, np.zeros(len(new_points), dtype=bool)])
        self.compacted_tombstones = np.concatenate(
            [self.compacted_tombstones,
             np.zeros(len(new_points), dtype=bool)])
        report = insert_batch_nsw(
            self.graph, self.points, new_ids, self.build_params,
            search_kernel=self.search_kernel, metric=self.metric,
            device=self.device, costs=self.costs, entry=self.entry,
            exclude_mask=self.tombstones if self.n_tombstones else None)
        self.mutation_seconds += report.seconds
        self.epoch += 1
        if metrics is not None:
            metrics.counter("mutate.inserts").inc()
            metrics.counter("mutate.points_inserted").inc(
                len(new_points))
            metrics.gauge("mutate.epoch").set(self.epoch)
            metrics.gauge("mutate.live_points").set(self.n_live)
        if span is not None:
            tracer.end(span, now + report.seconds,
                       attributes={"batch_size": len(new_points),
                                   "epoch": self.epoch})
        return new_ids

    def delete(self, ids, now: float = 0.0, tracer=None,
               metrics=None) -> int:
        """Durably tombstone ids; they are never returned again.

        The vertices keep routing searches until :meth:`compact`
        detaches them.  Deleting every live point is rejected — an
        index always keeps a search entry.
        """
        ids = np.unique(np.asarray(ids, dtype=np.int64))
        if len(ids) == 0:
            return 0
        if ids[0] < 0 or ids[-1] >= self.n_slots:
            raise MutableIndexError(
                f"delete ids out of range [0, {self.n_slots}): "
                f"{ids[0]}..{ids[-1]}")
        if np.any(self.tombstones[ids]):
            dup = int(ids[self.tombstones[ids]][0])
            raise MutableIndexError(
                f"id {dup} is already tombstoned")
        if len(ids) >= self.n_live:
            raise MutableIndexError(
                "cannot delete the last live point")
        self.store.append(OP_DELETE, now, ids=ids)
        return self._apply_delete(ids, now, tracer=tracer,
                                  metrics=metrics)

    def _apply_delete(self, ids: np.ndarray, now: float, tracer=None,
                      metrics=None) -> int:
        span = tracer.begin("mutate.delete", now,
                            lane="mutate") if tracer else None
        self.tombstones = self.tombstones.copy()
        self.tombstones[ids] = True
        if self.tombstones[self.entry]:
            self.entry = self._first_live()
        self.epoch += 1
        if metrics is not None:
            metrics.counter("mutate.deletes").inc()
            metrics.counter("mutate.points_deleted").inc(len(ids))
            metrics.gauge("mutate.epoch").set(self.epoch)
            metrics.gauge("mutate.live_points").set(self.n_live)
            metrics.gauge("mutate.tombstones").set(self.n_tombstones)
        if span is not None:
            tracer.end(span, now,
                       attributes={"n_deleted": len(ids),
                                   "epoch": self.epoch})
        return len(ids)

    def compact(self, now: float = 0.0, crash=None, tracer=None,
                metrics=None) -> CompactionStats:
        """Detach tombstoned vertices, repairing connectivity holes.

        Runs on *shadow* copies through the named
        :data:`~repro.mutable.compaction.COMPACTION_PHASES`; the live
        index swaps to the result only at ``compaction.commit``, after
        the intent record is durably appended.  A ``crash`` fault at
        any phase therefore aborts cleanly: the live state (and every
        snapshot) is untouched, and recovery replays the surviving log.

        Args:
            now: Simulated time of the pass.
            crash: Optional :class:`repro.faults.injector.CrashInjector`
                polled at each phase boundary.
            tracer: Optional span tracer (``compaction.pass`` span).
            metrics: Optional metrics registry.
        """
        return self._apply_compact(now, crash=crash, tracer=tracer,
                                   metrics=metrics, log=True)

    def _apply_compact(self, now: float, crash=None, tracer=None,
                       metrics=None, log: bool = True
                       ) -> CompactionStats:
        """Compaction body; ``log=False`` replays an existing record."""
        span = tracer.begin("compaction.pass", now,
                            lane="mutate") if tracer else None

        def hook(phase: str) -> None:
            if crash is not None:
                crash.check(phase, now, metrics=metrics)

        try:
            shadow = self.graph.copy()
            stats = compact_graph(shadow, self.points, self.tombstones,
                                  costs=self.costs,
                                  n_threads=self.build_params.n_threads,
                                  phase_hook=hook)
            kernel = KernelLaunch(self.device,
                                  self.build_params.n_threads,
                                  costs=self.costs)
            seconds = kernel.cycles_to_seconds(stats.total_cycles)

            # Commit point: durably log the compaction, then swap the
            # shadow in.  Both steps are atomic instants in the
            # simulation; a crash *at* the commit boundary happens
            # before either.
            hook("compaction.commit")
        except ProcessCrashError:
            if span is not None:
                tracer.end(span, now, attributes={"crashed": True})
            raise
        if log:
            self.store.append(OP_COMPACT, now)
        self.graph = shadow
        self.compacted_tombstones = self.tombstones.copy()
        self.mutation_seconds += seconds
        self.epoch += 1
        self.last_compaction = stats
        if metrics is not None:
            metrics.counter("compaction.passes").inc()
            metrics.counter("compaction.dead_detached").inc(stats.n_dead)
            metrics.counter("compaction.edges_dropped").inc(
                stats.n_edges_dropped)
            metrics.counter("compaction.bridge_candidates").inc(
                stats.n_bridge_candidates)
            metrics.gauge("mutate.epoch").set(self.epoch)
        if span is not None:
            tracer.end(span, now + seconds,
                       attributes={"n_dead": stats.n_dead,
                                   "edges_dropped": stats.n_edges_dropped,
                                   "epoch": self.epoch})
        return stats

    def checkpoint(self, now: float = 0.0, crash=None, tracer=None,
                   metrics=None) -> int:
        """Serialize the index into the durable store, folding the WAL.

        Two named phases (both crash points): ``checkpoint.serialize``
        builds the blob from the live state; ``checkpoint.write``
        atomically installs it and truncates the folded records.

        Returns:
            The LSN through which the checkpoint folds the log.
        """
        span = tracer.begin("recovery.checkpoint", now,
                            lane="mutate") if tracer else None
        try:
            if crash is not None:
                crash.check("checkpoint.serialize", now,
                            metrics=metrics)
            last_lsn = self.store.next_lsn - 1
            blob = self._to_checkpoint_bytes(last_lsn)
            if crash is not None:
                crash.check("checkpoint.write", now, metrics=metrics)
        except ProcessCrashError:
            if span is not None:
                tracer.end(span, now, attributes={"crashed": True})
            raise
        self.store.install_checkpoint(blob, last_lsn)
        if metrics is not None:
            metrics.counter("recovery.checkpoints").inc()
            metrics.gauge("recovery.checkpoint_lsn").set(last_lsn)
        if span is not None:
            tracer.end(span, now,
                       attributes={"last_lsn": last_lsn,
                                   "blob_bytes": len(blob)})
        return last_lsn

    # ------------------------------------------------------------------
    # Checkpoint serialization
    # ------------------------------------------------------------------

    def _to_checkpoint_bytes(self, last_lsn: int) -> bytes:
        """Canonical checkpoint blob of the full live state."""
        payload = {
            "epoch": self.epoch,
            "entry": self.entry,
            "last_lsn": int(last_lsn),
            "metric": self.metric,
            "search_kernel": self.search_kernel,
            "d_min": self.build_params.d_min,
            "d_max": self.build_params.d_max,
            "n_blocks": self.build_params.n_blocks,
            "n_threads": self.build_params.n_threads,
            "ef_construction": self.build_params.ef_construction,
            "search_l_n": self.build_params.search_l_n,
            "seed": self.build_params.seed,
            "mutation_seconds": self.mutation_seconds,
            "graph_dtype": str(self.graph.dtype),
            "points": encode_array(self.points),
            "neighbor_ids": encode_array(self.graph.neighbor_ids),
            "neighbor_dists": encode_array(self.graph.neighbor_dists),
            "degrees": encode_array(self.graph.degrees),
            "tombstones": encode_array(self.tombstones),
            "compacted_tombstones": encode_array(
                self.compacted_tombstones),
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @classmethod
    def from_checkpoint_bytes(cls, blob: bytes, store: DurableStore,
                              device: DeviceSpec = QUADRO_P5000,
                              costs: CostTable = DEFAULT_COSTS
                              ) -> "MutableIndex":
        """Rebuild an index from a checkpoint blob (no WAL replay)."""
        payload = json.loads(blob.decode("utf-8"))
        ef = payload.get("ef_construction")
        l_n = payload.get("search_l_n")
        params = BuildParams(d_min=int(payload["d_min"]),
                             d_max=int(payload["d_max"]),
                             n_blocks=int(payload["n_blocks"]),
                             n_threads=int(payload["n_threads"]),
                             ef_construction=None if ef is None
                             else int(ef),
                             search_l_n=None if l_n is None
                             else int(l_n),
                             seed=int(payload.get("seed", 0)))
        points = decode_array(payload["points"])
        graph = ProximityGraph(len(points), params.d_max,
                               payload["metric"],
                               dtype=np.dtype(payload["graph_dtype"]))
        graph.neighbor_ids = decode_array(payload["neighbor_ids"])
        graph.neighbor_dists = decode_array(payload["neighbor_dists"])
        graph.degrees = decode_array(payload["degrees"])
        index = cls(graph=graph, points=points,
                    tombstones=decode_array(payload["tombstones"]),
                    entry=int(payload["entry"]), build_params=params,
                    metric=payload["metric"], store=store,
                    epoch=int(payload["epoch"]),
                    search_kernel=payload["search_kernel"],
                    device=device, costs=costs)
        index.mutation_seconds = float(payload["mutation_seconds"])
        index.compacted_tombstones = decode_array(
            payload["compacted_tombstones"]).astype(bool)
        return index

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(self, queries: np.ndarray, params: SearchParams
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Search the *live* corpus; tombstoned ids are never returned.

        Pre-compaction tombstones still route, so the search over-
        fetches (``k + pending tombstones``, capped by ``l_n``) and
        filters dead ids from the results; short rows pad with
        ``-1``/``inf``.  For byte-stable serving use a
        :meth:`snapshot` and its ``serving_view`` instead.
        """
        queries = np.atleast_2d(np.asarray(queries))
        k = params.k
        k_eff = min(int(params.l_n), k + self.n_tombstones)
        report = ganns_search(self.graph, self.points, queries,
                              params.with_overrides(k=k_eff)
                              if k_eff != k else params,
                              entry=self.entry)
        ids = np.full((len(queries), k), PAD_ID, dtype=np.int64)
        dists = np.full((len(queries), k), PAD_DIST, dtype=np.float64)
        for row in range(len(queries)):
            got_ids = report.ids[row]
            got_dists = report.dists[row]
            keep = (got_ids >= 0) & ~self.tombstones[
                np.where(got_ids < 0, 0, got_ids)]
            kept_ids = got_ids[keep][:k]
            kept_dists = got_dists[keep][:k]
            ids[row, :len(kept_ids)] = kept_ids
            dists[row, :len(kept_dists)] = kept_dists
        return ids, dists
