"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``datasets`` — list the Table I stand-ins and their properties.
- ``build``    — build an index over a stand-in dataset and save it.
- ``search``   — load a saved index, run held-out queries, report
  recall and simulated throughput.
- ``sweep``    — a miniature Figure 6: throughput-vs-recall curves for
  GANNS and SONG on one dataset.
- ``tune``     — find the fastest setting meeting a recall target.
- ``device``   — show the simulated device and cost-table calibration.
- ``serve-sim`` — replay a synthetic online query trace through the
  batched serving engine and print its ``ServeReport``.
- ``chaos-sim`` — replay a trace under a named fault plan with the
  full fault-tolerance stack (deadlines, retries, circuit breaker,
  graceful degradation) and print the merged serve/fault report.
- ``trace`` — a chaos replay with the observability layer armed: every
  request, batch, attempt and fault becomes a span on the simulated
  clock, written as byte-deterministic JSON (optionally also as a
  Chrome ``trace_event`` file for chrome://tracing).
- ``cluster-sim`` — replay a trace through the sharded multi-replica
  serving cluster (scatter-gather top-k, replica failover) and print
  its ``ClusterReport``.
- ``mutate-sim`` — run a streaming insert/delete/compact workload with
  crash-during-compaction chaos against the crash-safe mutable index
  and print its ``MutationReport``.
- ``soak-sim`` — run the whole-stack chaos soak: self-healing cluster,
  mutable-store snapshot serving, and quantized staged search under
  seeded replica-loss chaos, gated by zero-wrong-answer and MTTR
  oracles (exit 1 if the gate fails).

Any :class:`repro.errors.ReproError` a command raises is reported as a
one-line message on stderr with exit code 2 — never a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__
from repro.errors import ReproError


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dataset", help="Table I stand-in name, e.g. sift1m")
    parser.add_argument("--points", type=int, default=5000,
                        help="stand-in size (default 5000)")
    parser.add_argument("--queries", type=int, default=200,
                        help="held-out query count (default 200)")


def _cmd_datasets(_args: argparse.Namespace) -> int:
    from repro.bench.report import format_table
    from repro.datasets.catalog import DATASET_SPECS

    rows = [[spec.name, spec.kind, spec.n_dims,
             f"{spec.paper_points / 1e6:g}M", spec.metric,
             "hard" if spec.hard else ""]
            for spec in DATASET_SPECS.values()]
    print(format_table(
        ["name", "type", "dims", "paper size", "metric", ""], rows,
        title="Table I stand-ins (synthetic; sizes scale on load)"))
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.core.index import GannsIndex
    from repro.core.params import BuildParams
    from repro.datasets.catalog import load_dataset

    dataset = load_dataset(args.dataset, n_points=args.points,
                           n_queries=args.queries)
    params = BuildParams(d_min=args.d_min, d_max=args.d_max,
                         n_blocks=args.blocks)
    index = GannsIndex.build(dataset.points, graph_type=args.graph_type,
                             strategy=args.strategy,
                             metric=dataset.metric_name, params=params,
                             search_kernel=args.kernel)
    report = index.build_report
    print(f"built {report.algorithm} over {dataset.n_points} points: "
          f"simulated {report.seconds * 1e3:.1f} ms")
    from repro.bench.report import format_phase_bars
    print(format_phase_bars(report.phase_seconds))
    index.save(args.output)
    print(f"saved index to {args.output}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.core.index import GannsIndex
    from repro.datasets.catalog import load_dataset
    from repro.metrics.recall import recall_at_k

    index = GannsIndex.load(args.index)
    dataset = load_dataset(args.dataset, n_points=len(index.points),
                           n_queries=args.queries)
    report = index.search_report(dataset.queries, k=args.k,
                                 algorithm=args.algorithm, l_n=args.l_n,
                                 e=args.e)
    recall = recall_at_k(report.ids, dataset.ground_truth(args.k))
    print(f"{args.algorithm}: recall@{args.k} = {recall:.3f}, "
          f"{report.queries_per_second():,.0f} queries/s (simulated)")
    for phase, share in sorted(report.breakdown().items()):
        print(f"  {phase}: {share:.1%}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.bench.report import format_table
    from repro.bench.runner import GraphCache, sweep_ganns, sweep_song
    from repro.core.params import BuildParams
    from repro.datasets.catalog import load_dataset

    dataset = load_dataset(args.dataset, n_points=args.points,
                           n_queries=args.queries)
    cache = GraphCache()
    graph = cache.nsw_graph(dataset,
                            BuildParams(d_min=args.d_min,
                                        d_max=args.d_max))
    ganns = sweep_ganns(graph, dataset, args.k,
                        [(32, 16), (64, 32), (64, 64), (128, 96),
                         (128, 128), (256, 192)])
    song = sweep_song(graph, dataset, args.k, [16, 32, 64, 96, 128, 192])
    rows = ([["ganns", f"l_n={p.setting[0]} e={p.setting[1]}",
              p.recall, p.qps] for p in ganns]
            + [["song", f"pq={p.setting[0]}", p.recall, p.qps]
               for p in song])
    print(format_table(["algo", "setting", "recall", "queries/s"], rows,
                       title=f"{dataset.name}: throughput vs recall "
                             f"(k={args.k})"))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.bench.runner import GraphCache
    from repro.core.params import BuildParams
    from repro.core.tuner import tune_search
    from repro.datasets.catalog import load_dataset

    dataset = load_dataset(args.dataset, n_points=args.points,
                           n_queries=args.queries)
    cache = GraphCache()
    graph = cache.nsw_graph(dataset,
                            BuildParams(d_min=args.d_min,
                                        d_max=args.d_max))
    result = tune_search(graph, dataset.points, dataset.queries,
                         target_recall=args.target, k=args.k,
                         algorithm=args.algorithm)
    status = "met" if result.target_met else "NOT met (best effort)"
    print(f"target recall {args.target}: {status}")
    print(f"chosen {result.algorithm} setting {result.setting}: "
          f"recall {result.recall:.3f}, "
          f"{result.qps:,.0f} queries/s (simulated)")
    print("evaluations:")
    for setting, recall, qps in result.evaluations:
        print(f"  {setting}: recall {recall:.3f}, {qps:,.0f} q/s")
    return 0


def _serve_fixture(args: argparse.Namespace):
    """Dataset, graph, params, policy, cache, trace shared by the
    serving commands."""
    from repro.baselines.nsw_cpu import build_nsw_cpu
    from repro.core.params import SearchParams
    from repro.datasets.catalog import load_dataset
    from repro.serve import BatchPolicy, ResultCache, synthetic_trace

    dataset = load_dataset(args.dataset, n_points=args.points,
                           n_queries=args.queries)
    graph = build_nsw_cpu(dataset.points, d_min=args.d_min,
                          d_max=args.d_max).graph
    params = SearchParams(k=args.k, l_n=args.l_n, e=args.e)
    policy = BatchPolicy(max_batch=args.max_batch,
                         max_wait_seconds=args.max_wait_ms * 1e-3,
                         max_queue=args.queue_cap)
    cache = (ResultCache(capacity=args.cache_size)
             if args.cache_size > 0 else None)
    trace = synthetic_trace(dataset.queries, args.requests,
                            mean_qps=args.qps,
                            repeat_fraction=args.repeat_fraction,
                            seed=args.seed)
    print(f"replaying {args.requests} requests over {dataset.name} "
          f"({dataset.n_points} points, pool of {dataset.n_queries} "
          f"distinct queries) at ~{args.qps:,.0f} req/s")
    print(f"  policy: max_batch={policy.max_batch}, "
          f"max_wait={args.max_wait_ms:g} ms, "
          f"queue_cap={policy.max_queue}, "
          f"cache={args.cache_size}")
    return dataset, graph, params, policy, cache, trace


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    from repro.serve import ServeEngine

    dataset, graph, params, policy, cache, trace = _serve_fixture(args)
    engine = ServeEngine(graph, dataset.points, params, policy=policy,
                         cache=cache)
    report = engine.replay(trace)
    print(report.summary())
    return 0


def _chaos_engine(args: argparse.Namespace, dataset, graph, params,
                  policy, cache):
    """Fault plan + fully armed engine from the chaos argument block."""
    from repro.faults import (AdmissionGovernor, BreakerPolicy,
                              RetryPolicy, named_fault_plan)
    from repro.serve import ServeEngine

    # Cover the whole trace (plus quiescence tail) with the plan.
    horizon = 2.0 * args.requests / args.qps
    plan = named_fault_plan(args.fault_plan, horizon_seconds=horizon,
                            seed=args.fault_seed)
    governor = (None if args.no_governor
                else AdmissionGovernor.default_for(params))
    engine = ServeEngine(
        graph, dataset.points, params, policy=policy, cache=cache,
        faults=plan,
        retry=RetryPolicy(max_retries=args.retries,
                          base_seconds=args.backoff_ms * 1e-3,
                          cap_seconds=args.backoff_cap_ms * 1e-3),
        breaker=BreakerPolicy(
            failure_threshold=args.breaker_threshold,
            cooldown_seconds=args.breaker_cooldown_ms * 1e-3),
        governor=governor,
        default_deadline_seconds=(args.deadline_ms * 1e-3
                                  if args.deadline_ms > 0 else None))
    return plan, engine


def _cmd_chaos_sim(args: argparse.Namespace) -> int:
    dataset, graph, params, policy, cache, trace = _serve_fixture(args)
    plan, engine = _chaos_engine(args, dataset, graph, params, policy,
                                 cache)
    print(f"  chaos: plan={args.fault_plan} "
          f"({len(plan)} scheduled events, seed={args.fault_seed}), "
          f"retries={args.retries}, "
          f"breaker={args.breaker_threshold}x/"
          f"{args.breaker_cooldown_ms:g} ms, "
          f"governor={'off' if args.no_governor else 'on'}, "
          f"deadline={args.deadline_ms:g} ms")
    report = engine.replay(trace)
    print(report.summary())
    print(f"  report digest {report.digest()[:16]} "
          f"(replay-deterministic)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.observability import (MetricsRegistry, SpanTracer,
                                     export_chrome_trace_bytes,
                                     parse_chrome_trace)

    dataset, graph, params, policy, cache, trace = _serve_fixture(args)
    plan, engine = _chaos_engine(args, dataset, graph, params, policy,
                                 cache)
    print(f"  chaos: plan={args.fault_plan} "
          f"({len(plan)} scheduled events, seed={args.fault_seed})")
    tracer = SpanTracer()
    metrics = MetricsRegistry()
    report = engine.replay(trace, tracer=tracer, metrics=metrics)
    tracer.finish()
    tracer.validate()
    report.verify_against_metrics()
    if report.fault_report is not None:
        report.fault_report.verify_against_metrics(metrics)
    payload = tracer.to_json_bytes()
    Path(args.output).write_bytes(payload)
    print(f"wrote {args.output} ({len(payload):,} bytes, "
          f"{len(tracer.spans)} spans)")
    if args.chrome_output:
        chrome = export_chrome_trace_bytes(tracer)
        parse_chrome_trace(chrome)  # exporter self-check before writing
        Path(args.chrome_output).write_bytes(chrome)
        print(f"wrote {args.chrome_output} ({len(chrome):,} bytes; "
              f"load via chrome://tracing or https://ui.perfetto.dev)")
    print(report.summary())
    print(tracer.tree_summary())
    print("metrics:")
    print(metrics.summary())
    print(f"  trace digest {tracer.digest()[:16]} "
          f"(byte-deterministic)")
    return 0


def _cmd_cluster_sim(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterEngine, RouterPolicy
    from repro.core.params import SearchParams
    from repro.datasets.catalog import load_dataset
    from repro.faults import (AdmissionGovernor, BreakerPolicy,
                              RetryPolicy, named_fault_plan)
    from repro.observability import SpanTracer
    from repro.serve import BatchPolicy, synthetic_trace

    dataset = load_dataset(args.dataset, n_points=args.points,
                           n_queries=args.queries)
    params = SearchParams(k=args.k, l_n=args.l_n, e=args.e)
    policy = BatchPolicy(max_batch=args.max_batch,
                         max_wait_seconds=args.max_wait_ms * 1e-3,
                         max_queue=args.queue_cap)
    trace = synthetic_trace(dataset.queries, args.requests,
                            mean_qps=args.qps,
                            repeat_fraction=args.repeat_fraction,
                            queries_per_request=args.queries_per_request,
                            seed=args.seed)
    horizon = 2.0 * args.requests / args.qps
    plan = named_fault_plan(args.fault_plan, horizon_seconds=horizon,
                            seed=args.fault_seed,
                            n_workers=args.shards * args.replicas)
    governor = (None if args.no_governor
                else AdmissionGovernor.default_for(params))
    engine = ClusterEngine(
        dataset.points, n_shards=args.shards, n_replicas=args.replicas,
        params=params, d_min=args.d_min, d_max=args.d_max,
        metric=dataset.metric_name, policy=policy,
        cache_capacity=args.cache_size, faults=plan,
        retry=RetryPolicy(max_retries=args.retries,
                          base_seconds=args.backoff_ms * 1e-3,
                          cap_seconds=args.backoff_cap_ms * 1e-3),
        breaker=BreakerPolicy(
            failure_threshold=args.breaker_threshold,
            cooldown_seconds=args.breaker_cooldown_ms * 1e-3),
        governor=governor,
        default_deadline_seconds=(args.deadline_ms * 1e-3
                                  if args.deadline_ms > 0 else None),
        router_policy=RouterPolicy(
            heartbeat_seconds=args.heartbeat_ms * 1e-3,
            failover_penalty_seconds=args.failover_penalty_ms * 1e-3))
    print(f"replaying {args.requests} requests "
          f"(x{args.queries_per_request} queries) over {dataset.name} "
          f"({dataset.n_points} points) on {args.shards} shards x "
          f"{args.replicas} replicas")
    print(f"  chaos: plan={args.fault_plan} "
          f"({len(plan)} scheduled events, seed={args.fault_seed}), "
          f"heartbeat={args.heartbeat_ms:g} ms, "
          f"governor={'off' if args.no_governor else 'on'}")
    tracer = SpanTracer()
    report = engine.replay(trace, tracer=tracer)
    tracer.finish()
    tracer.validate()
    report.verify_against_metrics()
    print(report.summary())
    print(f"  report digest {report.digest()[:16]} "
          f"(replay-deterministic; metrics verified)")
    return 0


def _cmd_mutate_sim(args: argparse.Namespace) -> int:
    from repro.faults.plan import named_fault_plan
    from repro.mutable import run_mutation_sim
    from repro.observability import MetricsRegistry, SpanTracer

    # One op per simulated second, plus recovery slack.
    horizon = float(args.ops + 1)
    plan = named_fault_plan(args.fault_plan, horizon_seconds=horizon,
                            seed=args.fault_seed)
    print(f"running {args.ops} mutation ops over a {args.points}-point "
          f"seed corpus (dims={args.dims}, seed={args.seed})")
    print(f"  chaos: plan={args.fault_plan} "
          f"({len(plan)} scheduled events, seed={args.fault_seed}), "
          f"compact every {args.compact_every}, "
          f"checkpoint every {args.checkpoint_every}")
    tracer = SpanTracer()
    metrics = MetricsRegistry()
    report = run_mutation_sim(
        n_points=args.points, n_dims=args.dims, n_ops=args.ops,
        seed=args.seed, batch_size=args.batch, k=args.k, l_n=args.l_n,
        compact_every=args.compact_every,
        checkpoint_every=args.checkpoint_every, fault_plan=plan,
        tracer=tracer, metrics=metrics)
    tracer.finish()
    tracer.validate()
    report.verify_against_metrics()
    print(report.summary())
    print(f"  report digest {report.digest()[:16]} "
          f"(replay-deterministic; metrics verified)")
    return 0


def _cmd_soak_sim(args: argparse.Namespace) -> int:
    from repro.heal import run_soak_sim

    print(f"soaking the stack: seed={args.seed}, "
          f"{args.shards} shards x {args.replicas} replicas over "
          f"{args.points} points, {args.requests} requests/phase, "
          f"corruption={args.corruption:g}, "
          f"MTTR bound {args.mttr_bound_ms:g} ms")
    report = run_soak_sim(
        seed=args.seed, n_points=args.points,
        n_requests=args.requests, n_shards=args.shards,
        n_replicas=args.replicas,
        mttr_bound_seconds=args.mttr_bound_ms * 1e-3,
        corruption_probability=args.corruption)
    print(report.summary())
    print(f"  soak digest {report.digest()[:16]} "
          f"(replay-deterministic; every phase metrics-verified)")
    return 0 if report.passed else 1


def _cmd_device(_args: argparse.Namespace) -> int:
    from repro.gpusim.costs import DEFAULT_COSTS
    from repro.gpusim.device import QUADRO_P5000

    device = QUADRO_P5000
    print(f"{device.name}")
    print(f"  {device.num_sms} SMs x {device.cores_per_sm} cores "
          f"@ {device.clock_ghz} GHz ({device.total_cores} cores)")
    print(f"  shared memory {device.shared_mem_per_block_bytes // 1024} KB"
          f"/block, registers "
          f"{device.register_file_per_sm_bytes // 1024} KB/SM")
    print(f"  PCIe {device.pcie_bandwidth_gbps} GB/s")
    print(f"  concurrency at 32 threads/block: "
          f"{device.concurrent_blocks(32)} blocks")
    print("cost table (cycles):")
    for field_name, value in DEFAULT_COSTS.__dict__.items():
        print(f"  {field_name}: {value:g}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GANNS reproduction: GPU proximity-graph ANN search "
                    "and construction on a simulated device.")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list Table I stand-ins")

    from repro.core.backend import backend_families

    build = sub.add_parser("build", help="build and save an index")
    _add_dataset_arguments(build)
    build.add_argument("--output", "-o", default="index.npz")
    # Validated against the backend registry at build time (a typed
    # ReproError -> exit 2), not by argparse, so newly registered
    # families need no CLI change.
    build.add_argument("--graph-type", default="nsw",
                       help="index family; registered: "
                            f"{', '.join(backend_families())}")
    build.add_argument("--strategy",
                       choices=("ggraphcon", "naive-parallel", "serial"),
                       default="ggraphcon")
    build.add_argument("--kernel", choices=("ganns", "song"),
                       default="ganns")
    build.add_argument("--d-min", type=int, default=16)
    build.add_argument("--d-max", type=int, default=32)
    build.add_argument("--blocks", type=int, default=64)

    search = sub.add_parser("search", help="search a saved index")
    _add_dataset_arguments(search)
    search.add_argument("--index", "-i", default="index.npz")
    search.add_argument("--algorithm", choices=("ganns", "song", "beam"),
                        default="ganns")
    search.add_argument("-k", type=int, default=10)
    search.add_argument("--l-n", type=int, default=64, dest="l_n")
    search.add_argument("-e", type=int, default=None)

    sweep = sub.add_parser("sweep",
                           help="mini Figure 6 on one dataset")
    _add_dataset_arguments(sweep)
    sweep.add_argument("-k", type=int, default=10)
    sweep.add_argument("--d-min", type=int, default=16)
    sweep.add_argument("--d-max", type=int, default=32)

    tune = sub.add_parser("tune",
                          help="fastest setting for a recall target")
    _add_dataset_arguments(tune)
    tune.add_argument("--target", type=float, default=0.9)
    tune.add_argument("-k", type=int, default=10)
    tune.add_argument("--algorithm", choices=("ganns", "song"),
                      default="ganns")
    tune.add_argument("--d-min", type=int, default=16)
    tune.add_argument("--d-max", type=int, default=32)

    sub.add_parser("device", help="show the simulated device")

    def _add_serving_arguments(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("dataset", nargs="?", default="sift1m",
                            help="Table I stand-in name (default sift1m)")
        parser.add_argument("--points", type=int, default=2000,
                            help="stand-in size (default 2000)")
        parser.add_argument("--queries", type=int, default=500,
                            help="distinct query pool size (default 500)")
        parser.add_argument("--requests", type=int, default=10_000,
                            help="trace length (default 10000)")
        parser.add_argument("--qps", type=float, default=50_000.0,
                            help="mean arrival rate, requests/s "
                                 "(default 50k)")
        parser.add_argument("--repeat-fraction", type=float, default=0.3,
                            help="share of hot-set repeats (default 0.3)")
        parser.add_argument("--max-batch", type=int, default=256)
        parser.add_argument("--max-wait-ms", type=float, default=1.0,
                            help="batching window in ms (default 1.0)")
        parser.add_argument("--queue-cap", type=int, default=8192,
                            help="admission bound in queries "
                                 "(default 8192)")
        parser.add_argument("--cache-size", type=int, default=4096,
                            help="result cache entries; 0 disables")
        parser.add_argument("-k", type=int, default=10)
        parser.add_argument("--l-n", type=int, default=64, dest="l_n")
        parser.add_argument("-e", type=int, default=None)
        parser.add_argument("--d-min", type=int, default=8)
        parser.add_argument("--d-max", type=int, default=16)
        parser.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve-sim",
        help="replay an online query trace through the serving engine")
    _add_serving_arguments(serve)

    from repro.faults.plan import fault_plan_names

    def _add_chaos_arguments(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--fault-plan", choices=fault_plan_names(),
                            default="aggressive",
                            help="named chaos recipe "
                                 "(default aggressive)")
        parser.add_argument("--fault-seed", type=int, default=0,
                            help="fault plan seed (default 0)")
        parser.add_argument("--retries", type=int, default=2,
                            help="retry attempts per failed dispatch "
                                 "(default 2)")
        parser.add_argument("--backoff-ms", type=float, default=0.2,
                            help="base retry backoff in ms "
                                 "(default 0.2)")
        parser.add_argument("--backoff-cap-ms", type=float, default=2.0,
                            help="retry backoff cap in ms "
                                 "(default 2.0)")
        parser.add_argument("--breaker-threshold", type=int, default=3,
                            help="consecutive failures tripping the "
                                 "breaker (default 3)")
        parser.add_argument("--breaker-cooldown-ms", type=float,
                            default=2.0,
                            help="breaker open time in ms (default 2.0)")
        parser.add_argument("--deadline-ms", type=float, default=20.0,
                            help="per-request deadline in ms; 0 "
                                 "disables (default 20)")
        parser.add_argument("--no-governor", action="store_true",
                            help="disable graceful degradation "
                                 "(reject-only baseline)")

    chaos = sub.add_parser(
        "chaos-sim",
        help="replay a trace under an injected fault plan with the "
             "fault-tolerance stack engaged")
    _add_serving_arguments(chaos)
    _add_chaos_arguments(chaos)

    trace = sub.add_parser(
        "trace",
        help="replay a chaos trace with the observability layer armed "
             "and write a byte-deterministic span trace")
    _add_serving_arguments(trace)
    _add_chaos_arguments(trace)
    trace.add_argument("--output", default="trace.json",
                       help="span trace output path "
                            "(default trace.json)")
    trace.add_argument("--chrome-output", default=None,
                       help="also write a Chrome trace_event file "
                            "loadable in chrome://tracing")

    cluster = sub.add_parser(
        "cluster-sim",
        help="replay a trace through the sharded multi-replica "
             "serving cluster with scatter-gather top-k")
    _add_serving_arguments(cluster)
    _add_chaos_arguments(cluster)
    cluster.add_argument("--shards", type=int, default=10,
                         help="index shard count (default 10)")
    cluster.add_argument("--replicas", type=int, default=2,
                         help="serving replicas per shard (default 2)")
    cluster.add_argument("--queries-per-request", type=int, default=1,
                         help="queries batched per request (default 1)")
    cluster.add_argument("--heartbeat-ms", type=float, default=1.0,
                         help="replica death detection window in ms "
                              "(default 1.0)")
    cluster.add_argument("--failover-penalty-ms", type=float,
                         default=0.2,
                         help="per-bounce failover penalty in ms "
                              "(default 0.2)")

    mutate = sub.add_parser(
        "mutate-sim",
        help="run a streaming insert/delete/compact workload with "
             "crash chaos against the crash-safe mutable index")
    mutate.add_argument("--points", type=int, default=200,
                        help="seed corpus size (default 200)")
    mutate.add_argument("--dims", type=int, default=16,
                        help="point dimensionality (default 16)")
    mutate.add_argument("--ops", type=int, default=24,
                        help="scheduled operations (default 24)")
    mutate.add_argument("--seed", type=int, default=0,
                        help="workload seed (default 0)")
    mutate.add_argument("--batch", type=int, default=8,
                        help="max points per insert batch (default 8)")
    mutate.add_argument("-k", type=int, default=5)
    mutate.add_argument("--l-n", type=int, default=32, dest="l_n")
    mutate.add_argument("--compact-every", type=int, default=6,
                        help="compaction period in ops (default 6)")
    mutate.add_argument("--checkpoint-every", type=int, default=9,
                        help="checkpoint period in ops (default 9)")
    mutate.add_argument("--fault-plan", choices=fault_plan_names(),
                        default="compaction-crash",
                        help="named chaos recipe "
                             "(default compaction-crash)")
    mutate.add_argument("--fault-seed", type=int, default=0,
                        help="fault plan seed (default 0)")

    soak = sub.add_parser(
        "soak-sim",
        help="run the whole-stack chaos soak: healing cluster, "
             "mutable store, and quantized paths under seeded chaos "
             "with zero-wrong-answer and MTTR oracles")
    soak.add_argument("--seed", type=int, default=0,
                      help="master soak seed (default 0)")
    soak.add_argument("--points", type=int, default=500,
                      help="cluster corpus size (default 500)")
    soak.add_argument("--requests", type=int, default=300,
                      help="requests in the cluster/quant phases "
                           "(default 300)")
    soak.add_argument("--shards", type=int, default=4,
                      help="shard count (default 4)")
    soak.add_argument("--replicas", type=int, default=2,
                      help="replicas per shard (default 2)")
    soak.add_argument("--mttr-bound-ms", type=float, default=50.0,
                      help="MTTR bound every healed repair must meet "
                           "in ms (default 50)")
    soak.add_argument("--corruption", type=float, default=0.2,
                      help="per-rebuild corruption probability "
                           "(default 0.2; exercises quarantine)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors (:class:`repro.errors.ReproError`) are reported as a
    single line on stderr with exit code 2 — a misconfigured run should
    read like a usage problem, not a crash.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "build": _cmd_build,
        "search": _cmd_search,
        "sweep": _cmd_sweep,
        "tune": _cmd_tune,
        "device": _cmd_device,
        "serve-sim": _cmd_serve_sim,
        "chaos-sim": _cmd_chaos_sim,
        "trace": _cmd_trace,
        "cluster-sim": _cmd_cluster_sim,
        "mutate-sim": _cmd_mutate_sim,
        "soak-sim": _cmd_soak_sim,
    }
    try:
        return handlers[args.command](args)
    except ReproError as err:
        print(f"repro {args.command}: error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
