"""Workload definitions shared by the benchmark files.

The paper's datasets range from 0.29M to 10M points; the stand-ins are
scaled down so the whole suite runs on a laptop while preserving each
dataset's *relative* size, dimensionality and metric.  One knob,
``REPRO_BENCH_SCALE``, scales every workload up or down (e.g. set it to
``4`` for a longer, higher-fidelity run).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.params import BuildParams
from repro.datasets.catalog import Dataset, load_dataset


def _scale() -> float:
    """Global workload scale from the environment (default 1.0)."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "1")
    try:
        value = float(raw)
    except ValueError:
        return 1.0
    return max(value, 0.1)


@dataclass(frozen=True)
class BenchConfig:
    """Sizing of one benchmark run.

    Attributes:
        base_points: Stand-in size of a 1M-point dataset before relative
            scaling.
        max_points: Hard cap so the 8M/10M stand-ins stay tractable.
        n_queries: Queries per dataset (the paper uses 2000).
        k: Neighbors returned (the paper's Figure 6 fixes k = 10).
        d_min: Construction lower degree bound (paper default 16).
        d_max: Construction upper degree bound (paper default 32).
        n_blocks: Construction thread blocks / group count.
        ganns_settings: ``(l_n, e)`` sweep for GANNS recall curves.
        song_settings: ``pq_bound`` sweep for SONG recall curves.
    """

    base_points: int = 4_000
    max_points: int = 10_000
    n_queries: int = 400
    k: int = 10
    d_min: int = 16
    d_max: int = 32
    n_blocks: int = 64
    ganns_settings: Tuple[Tuple[int, int], ...] = (
        (32, 16), (64, 32), (64, 64), (128, 96), (128, 128), (256, 192),
    )
    song_settings: Tuple[int, ...] = (16, 32, 64, 96, 128, 192)

    def dataset_points(self, name: str) -> int:
        """Scaled point count for one dataset."""
        from repro.datasets.catalog import DATASET_SPECS

        spec = DATASET_SPECS[name.lower()]
        scaled = spec.scaled_points(int(self.base_points * _scale()))
        return min(scaled, int(self.max_points * _scale()))

    def load(self, name: str) -> Dataset:
        """Materialise one dataset at this config's scale."""
        return load_dataset(name, n_points=self.dataset_points(name),
                            n_queries=self.n_queries)

    def build_params(self, **overrides) -> BuildParams:
        """Construction parameters at the paper's defaults."""
        kwargs = {"d_min": self.d_min, "d_max": self.d_max,
                  "n_blocks": self.n_blocks}
        kwargs.update(overrides)
        return BuildParams(**kwargs)


DEFAULT_CONFIG = BenchConfig()
"""The configuration every ``benchmarks/bench_*.py`` file uses."""


def construction_device():
    """Scaled device for the construction benchmarks.

    The paper builds 0.29M-10M-point graphs on a device that can keep
    ~640 blocks resident; what shapes Figures 11/14 and Tables II/III is
    the *fill ratio* between launch width and device concurrency (the
    merge phase saturates the device; the group count sweep stays below
    its concurrency).  Our stand-ins are ~100x smaller, so the
    construction benches use a scaled device with 64 concurrent
    32-thread blocks.  64 is the *effective* construction concurrency the
    paper's own Table II numbers imply for the P5000 (8.5 s for 1M
    insertions whose single-block searches cost ~0.5 ms each); the
    occupancy limit of 640 is not reached because construction kernels
    saturate memory bandwidth first.  Search benchmarks use the full
    device; the calibrated ``time_scale`` is shared.
    """
    from repro.gpusim.device import QUADRO_P5000

    return QUADRO_P5000.with_overrides(
        name="Quadro P5000 (construction-effective, 64 blocks)",
        num_sms=16,
        max_blocks_per_sm=4,
        max_threads_per_sm=128,
    )

#: Datasets used by the full-table benchmarks, in Table I order.
ALL_DATASETS: Tuple[str, ...] = (
    "sift1m", "gist", "nytimes", "glove200", "uq_v",
    "msong", "notre", "ukbench", "deep", "sift10m",
)

#: Smaller subsets for figure benchmarks that only need representatives.
FAST_DATASETS: Tuple[str, ...] = ("sift1m", "gist", "nytimes", "ukbench")


def bench_datasets(full: bool = False) -> Tuple[str, ...]:
    """Dataset list for a benchmark (full Table I or the fast subset)."""
    return ALL_DATASETS if full else FAST_DATASETS
