"""Plain-text table rendering for benchmark output.

Every benchmark prints a table with a "paper" column next to the measured
one, so a run reads like the paper's evaluation section.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1000:
            return f"{cell:,.0f}"
        if magnitude >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[Cell]],
                 title: str = "") -> str:
    """Render an aligned plain-text table.

    Args:
        headers: Column names.
        rows: Row cells; floats are formatted adaptively.
        title: Optional title line printed above the table.

    Returns:
        The table as a single string (no trailing newline).
    """
    rendered: List[List[str]] = [[_render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def paper_vs_measured_row(name: str, paper: float, measured: float,
                          unit: str = "") -> List[Cell]:
    """A standard (name, paper, measured, ratio) row."""
    ratio = measured / paper if paper else float("nan")
    return [name, f"{_render(paper)}{unit}", f"{_render(measured)}{unit}",
            f"{ratio:.2f}x"]


def speedup_band_note(low: float, high: float, measured: float) -> str:
    """Human-readable in-band/out-of-band verdict for a speedup."""
    if low <= measured <= high:
        return f"in paper band [{low:g}, {high:g}]"
    return f"outside paper band [{low:g}, {high:g}]"


def format_phase_bars(phase_seconds: dict, width: int = 40,
                      title: str = "") -> str:
    """Horizontal bar chart of per-phase times.

    Args:
        phase_seconds: Mapping of phase name to seconds.
        width: Width in characters of the longest bar.
        title: Optional title line.

    Returns:
        One line per phase: name, bar, seconds and share.
    """
    total = sum(phase_seconds.values())
    if not phase_seconds or total <= 0:
        return title or "(no phases recorded)"
    longest = max(phase_seconds.values())
    name_width = max(len(name) for name in phase_seconds)
    lines = [title] if title else []
    for name, seconds in sorted(phase_seconds.items(),
                                key=lambda item: -item[1]):
        bar = "#" * max(1, int(round(seconds / longest * width)))
        share = seconds / total
        lines.append(f"{name.rjust(name_width)}  {bar.ljust(width)} "
                     f"{seconds * 1e3:9.3f} ms  {share:6.1%}")
    return "\n".join(lines)
