"""Benchmark harness: regenerate every table and figure of the paper.

- :mod:`repro.bench.figures` — the paper's reported numbers, embedded, so
  every bench prints paper-vs-measured rows.
- :mod:`repro.bench.workloads` — scaled-down workload definitions shared by
  the benchmark files.
- :mod:`repro.bench.runner` — graph caching, recall/throughput sweeps and
  recall-targeted interpolation.
- :mod:`repro.bench.report` — plain-text table rendering.
"""

from repro.bench.workloads import BenchConfig, DEFAULT_CONFIG, bench_datasets
from repro.bench.runner import (
    GraphCache,
    ConstructionTiming,
    sweep_ganns,
    sweep_song,
    qps_at_recall,
    CurvePoint,
)
from repro.bench.report import format_table, paper_vs_measured_row

__all__ = [
    "BenchConfig",
    "DEFAULT_CONFIG",
    "bench_datasets",
    "GraphCache",
    "ConstructionTiming",
    "sweep_ganns",
    "sweep_song",
    "qps_at_recall",
    "CurvePoint",
    "format_table",
    "paper_vs_measured_row",
]
