"""Benchmark runner: graph caching, recall sweeps, recall-targeted lookup.

Building a stand-in graph takes tens of seconds of wall time; every
benchmark that needs "the NSW graph of dataset X at d_max 32" shares one
cached copy through :class:`GraphCache` (stored as ``.npz`` under
``.bench_cache/`` in the working directory, keyed by every parameter that
affects the build).

Recall/throughput curves are produced by sweeping the accuracy knob of
each algorithm (``(l_n, e)`` for GANNS, ``pq_bound`` for SONG) and
:func:`qps_at_recall` interpolates a curve at a recall target, which is how
"GANNS is N times faster than SONG at the same recall" is computed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.song import SongParams, song_search
from repro.core.construction import build_nsw_gpu
from repro.core.ganns import ganns_search
from repro.core.params import BuildParams, SearchParams
from repro.core.results import SearchReport
from repro.datasets.catalog import Dataset
from repro.errors import ConfigurationError
from repro.graphs.adjacency import ProximityGraph
from repro.metrics.recall import recall_at_k

DEFAULT_CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE", ".bench_cache")


@dataclass(frozen=True)
class CurvePoint:
    """One operating point of a recall/throughput curve."""

    recall: float
    qps: float
    setting: Tuple[int, ...]
    report: Optional[SearchReport] = None


@dataclass(frozen=True)
class ConstructionTiming:
    """Simulated construction seconds, with the category split."""

    seconds: float
    distance_seconds: float
    structure_seconds: float


def _run_construction(dataset: Dataset, params: BuildParams,
                      algorithm: str, device) -> ConstructionTiming:
    """Execute one construction scheme and extract its timing."""
    from repro.gpusim.tracker import PhaseCategory

    def from_report(report) -> ConstructionTiming:
        return ConstructionTiming(
            seconds=report.seconds,
            distance_seconds=report.category_seconds.get(
                PhaseCategory.DISTANCE, 0.0),
            structure_seconds=report.category_seconds.get(
                PhaseCategory.STRUCTURE, 0.0),
        )

    metric_name = dataset.metric_name
    if algorithm == "ggc-ganns":
        return from_report(build_nsw_gpu(dataset.points, params,
                                         search_kernel="ganns",
                                         metric=metric_name,
                                         device=device))
    if algorithm == "ggc-song":
        return from_report(build_nsw_gpu(dataset.points, params,
                                         search_kernel="song",
                                         metric=metric_name,
                                         device=device))
    if algorithm == "naive":
        from repro.core.naive import build_nsw_naive_parallel
        return from_report(build_nsw_naive_parallel(
            dataset.points, params, search_kernel="song",
            metric=metric_name, device=device))
    if algorithm == "serial":
        from repro.core.naive import build_nsw_serial_gpu
        return from_report(build_nsw_serial_gpu(
            dataset.points, params, search_kernel="song",
            metric=metric_name, device=device))
    if algorithm == "cpu-nsw":
        from repro.baselines.cpu_cost import DEFAULT_CPU
        from repro.baselines.nsw_cpu import build_nsw_cpu
        report = build_nsw_cpu(dataset.points, params.d_min, params.d_max,
                               metric=metric_name,
                               ef_construction=params.effective_ef)
        seconds = DEFAULT_CPU.seconds(
            report.counters,
            dataset.metric.flops_per_distance(dataset.n_dims))
        return ConstructionTiming(seconds=seconds, distance_seconds=0.0,
                                  structure_seconds=0.0)
    if algorithm in ("hnsw-ganns", "hnsw-song"):
        from repro.core.hnsw import build_hnsw_gpu
        kernel = algorithm.split("-")[1]
        return from_report(build_hnsw_gpu(dataset.points, params,
                                          search_kernel=kernel,
                                          metric=metric_name,
                                          device=device))
    if algorithm == "cpu-hnsw":
        from repro.baselines.cpu_cost import DEFAULT_CPU
        from repro.baselines.hnsw_cpu import build_hnsw_cpu
        report = build_hnsw_cpu(dataset.points, params.d_min, params.d_max,
                                metric=metric_name,
                                ef_construction=params.effective_ef,
                                seed=params.seed)
        seconds = DEFAULT_CPU.seconds(
            report.counters,
            dataset.metric.flops_per_distance(dataset.n_dims))
        return ConstructionTiming(seconds=seconds, distance_seconds=0.0,
                                  structure_seconds=0.0)
    raise ConfigurationError(
        f"unknown construction algorithm {algorithm!r}"
    )


class GraphCache:
    """Build-once cache of NSW graphs keyed by dataset and parameters."""

    def __init__(self, cache_dir: str = DEFAULT_CACHE_DIR):
        self.cache_dir = cache_dir

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.npz")

    @staticmethod
    def _key(dataset: Dataset, params: BuildParams, builder: str) -> str:
        return (f"{dataset.name}-n{dataset.n_points}-d{dataset.n_dims}"
                f"-dmin{params.d_min}-dmax{params.d_max}"
                f"-ef{params.effective_ef}-b{params.n_blocks}-{builder}")

    def nsw_graph(self, dataset: Dataset, params: BuildParams,
                  builder: str = "ggraphcon") -> ProximityGraph:
        """Return the cached NSW graph, building it on a miss.

        Args:
            dataset: Materialised dataset.
            params: Build parameters.
            builder: ``"ggraphcon"`` (the paper's construction) or
                ``"cpu"`` (sequential insertion — used where the paper
                searches on the baseline-built graph).
        """
        key = self._key(dataset, params, builder)
        path = self._path(key)
        if os.path.exists(path):
            try:
                with np.load(path, allow_pickle=False) as archive:
                    graph = ProximityGraph(dataset.n_points, params.d_max,
                                           dataset.metric_name)
                    graph.neighbor_ids = archive["ids"]
                    graph.neighbor_dists = archive["dists"]
                    graph.degrees = archive["degrees"]
                    return graph
            except (OSError, ValueError, KeyError):
                # Corrupted or stale cache entry: drop it and rebuild.
                os.remove(path)
        if builder == "ggraphcon":
            report = build_nsw_gpu(dataset.points, params,
                                   metric=dataset.metric_name)
            graph = report.graph
        elif builder == "cpu":
            from repro.baselines.nsw_cpu import build_nsw_cpu
            report = build_nsw_cpu(dataset.points, params.d_min,
                                   params.d_max,
                                   metric=dataset.metric_name,
                                   ef_construction=params.effective_ef)
            graph = report.graph
        else:
            raise ConfigurationError(
                f"unknown builder {builder!r}; valid: ggraphcon, cpu"
            )
        os.makedirs(self.cache_dir, exist_ok=True)
        np.savez_compressed(path, ids=graph.neighbor_ids,
                            dists=graph.neighbor_dists,
                            degrees=graph.degrees)
        return graph

    def construction_timing(self, dataset: Dataset, params: BuildParams,
                            algorithm: str,
                            device=None) -> "ConstructionTiming":
        """Cached simulated construction timing for one scheme.

        Args:
            dataset: Materialised dataset.
            params: Build parameters.
            algorithm: ``"ggc-ganns"``, ``"ggc-song"``, ``"naive"``,
                ``"serial"``, ``"cpu-nsw"``, ``"hnsw-ganns"``,
                ``"hnsw-song"`` or ``"cpu-hnsw"``.

        Returns:
            A :class:`ConstructionTiming` (seconds plus the
            distance/structure split when the scheme reports one).
        """
        if device is None:
            from repro.gpusim.device import QUADRO_P5000
            device = QUADRO_P5000
        device_tag = f"c{device.num_sms}x{device.max_blocks_per_sm}"
        key = self._key(dataset, params, f"time-{algorithm}-{device_tag}")
        path = self._path(key)
        if os.path.exists(path):
            try:
                with np.load(path, allow_pickle=False) as archive:
                    return ConstructionTiming(
                        seconds=float(archive["seconds"]),
                        distance_seconds=float(
                            archive["distance_seconds"]),
                        structure_seconds=float(
                            archive["structure_seconds"]),
                    )
            except (OSError, ValueError, KeyError):
                os.remove(path)
        timing = _run_construction(dataset, params, algorithm, device)
        os.makedirs(self.cache_dir, exist_ok=True)
        np.savez_compressed(path, seconds=timing.seconds,
                            distance_seconds=timing.distance_seconds,
                            structure_seconds=timing.structure_seconds)
        return timing


def sweep_ganns(graph: ProximityGraph, dataset: Dataset, k: int,
                settings: Iterable[Tuple[int, int]],
                n_threads: int = 32,
                keep_reports: bool = False) -> List[CurvePoint]:
    """GANNS recall/throughput curve over ``(l_n, e)`` settings."""
    ground_truth = dataset.ground_truth(k)
    curve = []
    for l_n, e in settings:
        params = SearchParams(k=k, l_n=l_n, e=min(e, l_n),
                              n_threads=n_threads)
        report = ganns_search(graph, dataset.points, dataset.queries, params)
        curve.append(CurvePoint(
            recall=recall_at_k(report.ids, ground_truth),
            qps=report.queries_per_second(),
            setting=(l_n, e),
            report=report if keep_reports else None,
        ))
    return curve


def sweep_song(graph: ProximityGraph, dataset: Dataset, k: int,
               settings: Iterable[int], n_threads: int = 32,
               keep_reports: bool = False) -> List[CurvePoint]:
    """SONG recall/throughput curve over ``pq_bound`` settings."""
    ground_truth = dataset.ground_truth(k)
    curve = []
    for pq_bound in settings:
        params = SongParams(k=k, pq_bound=max(pq_bound, k),
                            n_threads=n_threads)
        report = song_search(graph, dataset.points, dataset.queries, params)
        curve.append(CurvePoint(
            recall=recall_at_k(report.ids, ground_truth),
            qps=report.queries_per_second(),
            setting=(pq_bound,),
            report=report if keep_reports else None,
        ))
    return curve


def qps_at_recall(curve: Sequence[CurvePoint], target: float) -> float:
    """Interpolated throughput of a curve at a recall target.

    Curves are monotone in the accuracy knob (higher knob: higher recall,
    lower throughput).  Interpolation is linear in recall against
    log-throughput, the standard presentation of ANN benchmark plots.
    Falls back to the nearest endpoint when the target is outside the
    measured range.
    """
    if not curve:
        raise ConfigurationError("cannot interpolate an empty curve")
    points = sorted(curve, key=lambda p: p.recall)
    if target <= points[0].recall:
        return points[0].qps
    if target >= points[-1].recall:
        return points[-1].qps
    for lo, hi in zip(points, points[1:]):
        if lo.recall <= target <= hi.recall:
            if hi.recall == lo.recall:
                return max(lo.qps, hi.qps)
            frac = (target - lo.recall) / (hi.recall - lo.recall)
            log_qps = (np.log(max(lo.qps, 1e-12)) * (1 - frac)
                       + np.log(max(hi.qps, 1e-12)) * frac)
            return float(np.exp(log_qps))
    return points[-1].qps


def closest_point(curve: Sequence[CurvePoint], target: float) -> CurvePoint:
    """The measured operating point whose recall is nearest the target."""
    if not curve:
        raise ConfigurationError("cannot search an empty curve")
    return min(curve, key=lambda p: abs(p.recall - target))
