"""The paper's reported numbers (Section V), embedded for comparison.

Every benchmark prints its measured values next to the corresponding
figures from the paper.  Absolute numbers from the paper refer to the full
datasets on the authors' Quadro P5000; our stand-ins are smaller, so the
meaningful comparisons are the *ratios* and *shapes* (see DESIGN.md).
Values read off plots carry the precision the plots allow.
"""

from __future__ import annotations

from typing import Dict, NamedTuple


class Fig6Point(NamedTuple):
    """Headline Figure 6 operating point or speedup band for one dataset."""

    speedup_low: float
    speedup_high: float
    ganns_qps: float  # paper's quoted GANNS throughput, when stated; else 0
    recall: float     # recall of the quoted operating point, when stated


#: Figure 6 — GANNS-over-SONG speedup bands around recall 0.8 (text of
#: Section V-A), plus the explicitly quoted SIFT1M operating point.
PAPER_FIG6: Dict[str, Fig6Point] = {
    "sift1m": Fig6Point(5.0, 5.2, 458_500.0, 0.795),
    "gist": Fig6Point(1.5, 1.5, 0.0, 0.8),
    "nytimes": Fig6Point(2.0, 2.0, 0.0, 0.8),
    "glove200": Fig6Point(2.0, 2.0, 0.0, 0.8),
    "uq_v": Fig6Point(1.5, 5.0, 0.0, 0.8),
    "msong": Fig6Point(1.5, 5.0, 0.0, 0.8),
    "notre": Fig6Point(1.5, 5.0, 0.0, 0.8),
    "ukbench": Fig6Point(1.5, 5.0, 0.0, 0.8),
    "deep": Fig6Point(1.5, 5.0, 0.0, 0.8),
    "sift10m": Fig6Point(1.5, 5.0, 0.0, 0.8),
}

#: Figure 7 — share of SONG's time spent on data-structure operations
#: ("around 50-90%" across datasets, Section I).
PAPER_FIG7_SONG_STRUCTURE_SHARE = (0.5, 0.9)

#: Figure 8 — speedup stability while k varies from 1 to 100 at recall 0.8.
PAPER_FIG8 = {
    "sift1m": (5.0, 5.3),
    "gist": (1.5, 2.0),
}

#: Figure 9 — GIST dimensionality sweep: speedup grows from 1.5x at
#: n_d = 960 to 6x at n_d = 60.
PAPER_FIG9 = {960: 1.5, 60: 6.0}

#: Figure 10 — SIFT1M, threads per block 4 -> 32: distance time 100 -> 24
#: ms for both algorithms; GANNS structure time 71 -> 12.3 ms; SONG
#: structure time does not improve with threads.
PAPER_FIG10 = {
    "distance_ms": {4: 100.0, 32: 24.0},
    "ganns_structure_ms": {4: 71.0, 32: 12.3},
}

#: Table II — NSW construction seconds: CPU GraphCon_NSW, GGraphCon_GANNS,
#: GGraphCon_SONG (speedups in parentheses in the paper).
PAPER_TABLE2: Dict[str, Dict[str, float]] = {
    "sift1m": {"cpu": 355.0, "ggc_ganns": 8.5, "ggc_song": 23.0},
    "gist": {"cpu": 1335.0, "ggc_ganns": 27.0, "ggc_song": 38.0},
    "nytimes": {"cpu": 249.0, "ggc_ganns": 3.0, "ggc_song": 8.0},
    "glove200": {"cpu": 531.0, "ggc_ganns": 13.0, "ggc_song": 31.5},
    "uq_v": {"cpu": 1720.0, "ggc_ganns": 43.0, "ggc_song": 145.0},
    "msong": {"cpu": 620.0, "ggc_ganns": 14.0, "ggc_song": 28.0},
    "notre": {"cpu": 87.0, "ggc_ganns": 3.0, "ggc_song": 7.0},
    "ukbench": {"cpu": 375.0, "ggc_ganns": 10.0, "ggc_song": 27.0},
    "deep": {"cpu": 4135.0, "ggc_ganns": 49.5, "ggc_song": 224.0},
    "sift10m": {"cpu": 2986.0, "ggc_ganns": 48.0, "ggc_song": 222.0},
}

#: Table III — HNSW construction seconds: CPU GraphCon_HNSW and the two
#: GGraphCon variants.
PAPER_TABLE3: Dict[str, Dict[str, float]] = {
    "sift1m": {"cpu": 313.0, "ggc_ganns": 11.0, "ggc_song": 37.0},
    "gist": {"cpu": 2138.0, "ggc_ganns": 48.0, "ggc_song": 68.0},
    "nytimes": {"cpu": 324.0, "ggc_ganns": 4.0, "ggc_song": 12.0},
    "glove200": {"cpu": 5255.0, "ggc_ganns": 17.0, "ggc_song": 52.0},
    "uq_v": {"cpu": 1737.0, "ggc_ganns": 47.0, "ggc_song": 215.0},
    "msong": {"cpu": 823.0, "ggc_ganns": 20.0, "ggc_song": 48.0},
    "notre": {"cpu": 85.0, "ggc_ganns": 3.2, "ggc_song": 11.0},
    "ukbench": {"cpu": 342.0, "ggc_ganns": 11.0, "ggc_song": 38.0},
    "deep": {"cpu": 4550.0, "ggc_ganns": 70.2, "ggc_song": 308.0},
    "sift10m": {"cpu": 2823.0, "ggc_ganns": 82.0, "ggc_song": 338.0},
}

#: Figure 11 text — GSerial on SIFT1M: 3810 s (versus 8.5 s GGraphCon).
PAPER_GSERIAL_SIFT1M = 3810.0

#: Figure 12 — graph quality: on SIFT1M, GNaiveParallel tops out at recall
#: ~0.7 even at e = 100 while GGraphCon and the sequential CPU build both
#: reach ~0.92.
PAPER_FIG12 = {"naive_ceiling": 0.70, "ggc_ceiling": 0.92}

#: Figure 13 — construction time grows roughly linearly in d_max (32->128).
PAPER_FIG13_LINEARITY = "almost linear"

#: Figure 14 — 50 -> 800 thread blocks (16x) gives ~10-13x on both the
#: distance and the data-structure components.
PAPER_FIG14_SPEEDUP = (10.0, 13.0)

#: GGraphCon_GANNS over GGraphCon_SONG construction speedup (Section V-B):
#: 2-3.3x on regular datasets, 1.4-2.2x on hard ones.
PAPER_GGC_KERNEL_SPEEDUP = {"regular": (2.0, 3.3), "hard": (1.4, 2.2)}

#: Table II speedups-over-CPU band quoted in the abstract: 40-50x on most
#: datasets for GGraphCon_GANNS.
PAPER_TABLE2_SPEEDUP_BAND = (29.0, 83.5)
