"""Terminal (ASCII) plotting for benchmark output.

The paper's figures are log-scale throughput-vs-recall curves; the
benchmark suite prints tables, and this module renders the same data as
a quick character plot so a terminal run still gives the figure's visual
gestalt.  No plotting dependency required.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

_MARKERS = "ox+*#@%&"


def _nice_number(value: float) -> str:
    if value >= 10_000:
        return f"{value / 1000:.0f}k"
    if value >= 1000:
        return f"{value / 1000:.1f}k"
    if value >= 10:
        return f"{value:.0f}"
    return f"{value:.2f}"


def ascii_plot(series: Dict[str, Sequence[Tuple[float, float]]],
               width: int = 64, height: int = 18,
               log_y: bool = True, x_label: str = "recall",
               y_label: str = "queries/s") -> str:
    """Render named (x, y) series as an ASCII scatter plot.

    Args:
        series: Mapping of series name to ``(x, y)`` points.  Each series
            gets its own marker; a legend is appended.
        width: Plot width in characters (axis excluded).
        height: Plot height in rows.
        log_y: Plot ``log10(y)`` (the standard ANN-benchmark y-axis).
        x_label: X-axis caption.
        y_label: Y-axis caption.

    Returns:
        The plot as a multi-line string.
    """
    if not series:
        raise ConfigurationError("ascii_plot needs at least one series")
    if width < 16 or height < 6:
        raise ConfigurationError(
            f"plot must be at least 16x6 characters, got {width}x{height}"
        )
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ConfigurationError("ascii_plot needs at least one point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if log_y:
        if min(ys) <= 0:
            raise ConfigurationError(
                "log-scale y requires positive values"
            )
        transform = math.log10
    else:
        def transform(v: float) -> float:
            return v
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = transform(min(ys)), transform(max(ys))
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for marker, (name, pts) in zip(_MARKERS, series.items()):
        for x, y in pts:
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((transform(y) - y_lo) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    top_label = _nice_number(max(ys))
    bottom_label = _nice_number(min(ys))
    gutter = max(len(top_label), len(bottom_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(gutter)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = (f"{x_lo:.2f}".ljust(width - 6) + f"{x_hi:.2f}")
    lines.append(" " * (gutter + 1) + x_axis)
    legend = "  ".join(f"{marker}={name}" for marker, name
                       in zip(_MARKERS, series))
    lines.append(f"{y_label} ({'log' if log_y else 'lin'}) vs {x_label}"
                 f":  {legend}")
    return "\n".join(lines)


def curve_plot(curves: Dict[str, Sequence], **kwargs) -> str:
    """ASCII plot straight from :class:`repro.bench.runner.CurvePoint`
    lists (the output of ``sweep_ganns`` / ``sweep_song``)."""
    series = {name: [(p.recall, p.qps) for p in pts]
              for name, pts in curves.items()}
    return ascii_plot(series, **kwargs)
