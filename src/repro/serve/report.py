"""Serving-run summary: latency percentiles, throughput, cache, rejects.

A :class:`ServeReport` is to the serving engine what
:class:`repro.core.results.SearchReport` is to one kernel launch — the
single object benchmarks and the CLI print, so that no caller re-derives
percentile or throughput rules.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ObservabilityError
from repro.faults.report import FaultReport
from repro.serve.request import RequestOutcome, RequestStatus


def _percentile(values: np.ndarray, q: float) -> float:
    """Linear-interpolation percentile with exact degenerate cases.

    ``np.percentile`` interpolates as ``a + gamma * (b - a)`` even when
    the bracketing samples coincide, which turns a single-sample or
    all-identical population containing ``inf`` into ``inf - inf =
    nan`` (and, for gamma on the boundary, need not return the stored
    float bit-for-bit).  The trace↔report reconciliation suite demands
    byte-exact percentiles, so the degenerate populations short-circuit
    to the exact stored value before NumPy interpolates.
    """
    if len(values) == 0:
        return float("nan")
    if len(values) == 1:
        return float(values[0])
    lo = float(values.min())
    hi = float(values.max())
    if lo == hi:
        return lo
    return float(np.percentile(values, q, method="linear"))


@dataclass
class ServeReport:
    """Outcome of replaying one query trace through the serving engine.

    Attributes:
        outcomes: Per-request records, in arrival order.
        batch_sizes: Queries per dispatched batch, in dispatch order.
        batch_triggers: Flush trigger per dispatched batch.
        makespan_seconds: First arrival to last completion.
        gpu_busy_seconds: Total simulated time the device spent on
            dispatched batches.
        cache_stats: The result cache's counters (``None`` when serving
            ran without a cache).
        fault_report: Fault-tolerance event ledger (``None`` when the
            engine ran without any fault machinery).
        metrics: The :class:`~repro.observability.metrics.MetricsRegistry`
            the replay published into.  The derived properties below
            are *views* whose values must reconcile with the registry
            exactly — :meth:`verify_against_metrics` enforces it, and
            the observability invariant suite pins it.
        wallclock_seconds: Host wall-clock the replay took.  Volatile:
            it varies run to run, so it is excluded from
            :meth:`to_bytes` (replay determinism is over *results*, not
            host speed) but still reconciled against the registry's
            ``perf.wallclock_seconds`` gauge.
        backend: Resolved execution backend (``"reference"`` or
            ``"fast"``) the replay dispatched with.
        quant: Resolved quantization mode the replay dispatched with
            (``"fp16"``/``"int8"``/``"pca"``), or ``None`` for exact
            serving.  Quantized serving is **lossy** — results under a
            mode live in their own cache namespace and may differ from
            exact serving (see ``docs/quantization.md``).
    """

    outcomes: List[RequestOutcome]
    batch_sizes: List[int] = field(default_factory=list)
    batch_triggers: List[str] = field(default_factory=list)
    makespan_seconds: float = 0.0
    gpu_busy_seconds: float = 0.0
    cache_stats: Optional[object] = None
    fault_report: Optional[FaultReport] = None
    metrics: Optional[object] = None
    wallclock_seconds: float = 0.0
    backend: str = "reference"
    quant: Optional[str] = None

    # ------------------------------------------------------------------
    # Populations
    # ------------------------------------------------------------------

    @property
    def n_requests(self) -> int:
        """All requests in the trace, whatever their fate."""
        return len(self.outcomes)

    @property
    def n_served(self) -> int:
        """Requests answered (batched or from cache)."""
        return sum(1 for o in self.outcomes if o.served)

    @property
    def n_cache_hits(self) -> int:
        """Requests answered entirely from the result cache."""
        return sum(1 for o in self.outcomes
                   if o.status is RequestStatus.CACHE_HIT)

    @property
    def n_rejected(self) -> int:
        """Requests refused by admission control."""
        return sum(1 for o in self.outcomes
                   if o.status is RequestStatus.REJECTED)

    @property
    def n_failed(self) -> int:
        """Requests whose dispatch failed permanently."""
        return sum(1 for o in self.outcomes
                   if o.status is RequestStatus.FAILED)

    @property
    def n_timed_out(self) -> int:
        """Requests dropped because their deadline expired in queue."""
        return sum(1 for o in self.outcomes
                   if o.status is RequestStatus.TIMED_OUT)

    @property
    def n_degraded(self) -> int:
        """Requests served below the full-quality tier."""
        return sum(1 for o in self.outcomes if o.degraded)

    @property
    def n_deadline_missed(self) -> int:
        """Requests served, but after their deadline."""
        return sum(1 for o in self.outcomes
                   if o.served and o.deadline_missed)

    def per_tier_counts(self) -> Dict[int, int]:
        """Served-request counts per degradation tier."""
        counts: Dict[int, int] = {}
        for o in self.outcomes:
            if o.served:
                counts[o.degraded_tier] = \
                    counts.get(o.degraded_tier, 0) + 1
        return counts

    @property
    def n_batches(self) -> int:
        """Batches dispatched to the device."""
        return len(self.batch_sizes)

    @property
    def served_queries(self) -> int:
        """Query vectors answered across served requests."""
        return sum(o.ids.shape[0] for o in self.outcomes if o.served)

    # ------------------------------------------------------------------
    # Latency / throughput
    # ------------------------------------------------------------------

    def latencies(self) -> np.ndarray:
        """End-to-end latency of every *served* request, arrival order."""
        return np.array([o.latency_seconds for o in self.outcomes
                         if o.served], dtype=np.float64)

    def queue_seconds(self) -> np.ndarray:
        """Queue-wait component of every served request's latency."""
        return np.array([o.queue_seconds for o in self.outcomes
                         if o.served], dtype=np.float64)

    @property
    def p50_latency(self) -> float:
        """Median served latency (seconds)."""
        return _percentile(self.latencies(), 50)

    @property
    def p95_latency(self) -> float:
        """95th-percentile served latency (seconds)."""
        return _percentile(self.latencies(), 95)

    @property
    def p99_latency(self) -> float:
        """99th-percentile served latency (seconds)."""
        return _percentile(self.latencies(), 99)

    @property
    def mean_latency(self) -> float:
        """Mean served latency (seconds)."""
        lats = self.latencies()
        return float(lats.mean()) if len(lats) else float("nan")

    @property
    def qps(self) -> float:
        """Served queries per simulated second of makespan."""
        if self.makespan_seconds <= 0:
            return float("inf") if self.served_queries else 0.0
        return self.served_queries / self.makespan_seconds

    @property
    def mean_batch_size(self) -> float:
        """Average queries per dispatched batch."""
        if not self.batch_sizes:
            return 0.0
        return float(np.mean(self.batch_sizes))

    @property
    def gpu_utilisation(self) -> float:
        """Fraction of the makespan the device was busy."""
        if self.makespan_seconds <= 0:
            return 0.0
        return min(self.gpu_busy_seconds / self.makespan_seconds, 1.0)

    # ------------------------------------------------------------------
    # Rates
    # ------------------------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        """Cache hits over all non-rejected requests."""
        served = self.n_served
        if served == 0:
            return 0.0
        return self.n_cache_hits / served

    @property
    def rejection_rate(self) -> float:
        """Rejected requests over all requests."""
        if self.n_requests == 0:
            return 0.0
        return self.n_rejected / self.n_requests

    @property
    def completion_rate(self) -> float:
        """Served requests (any tier) over all requests."""
        if self.n_requests == 0:
            return 0.0
        return self.n_served / self.n_requests

    def trigger_counts(self) -> Dict[str, int]:
        """How many batches each flush trigger produced."""
        counts: Dict[str, int] = {}
        for trigger in self.batch_triggers:
            counts[trigger] = counts.get(trigger, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Result access
    # ------------------------------------------------------------------

    def results(self) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
        """Demultiplexed ``request_id -> (ids, dists)`` for served requests."""
        return {o.request_id: (o.ids, o.dists)
                for o in self.outcomes if o.served}

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def summary(self) -> str:
        """Multi-line human-readable summary (what ``serve-sim`` prints)."""
        lines = [
            f"ServeReport: {self.n_requests} requests "
            f"({self.served_queries} queries served) over "
            f"{self.makespan_seconds * 1e3:.1f} ms simulated",
            f"  throughput    {self.qps:,.0f} queries/s",
            f"  latency       p50 {self.p50_latency * 1e3:.3f} ms   "
            f"p95 {self.p95_latency * 1e3:.3f} ms   "
            f"p99 {self.p99_latency * 1e3:.3f} ms   "
            f"mean {self.mean_latency * 1e3:.3f} ms",
            f"  batches       {self.n_batches} dispatched, mean size "
            f"{self.mean_batch_size:.1f}"
            + (f" ({self._trigger_note()})" if self.batch_triggers else ""),
            f"  cache         {self.n_cache_hits} hits, "
            f"hit rate {self.cache_hit_rate:.1%}"
            + self._cache_detail_note(),
            f"  rejected      {self.n_rejected} "
            f"({self.rejection_rate:.1%})",
            f"  gpu busy      {self.gpu_utilisation:.1%} of makespan",
            # Deliberately no wall-clock here: summaries are part of the
            # CLI's byte-deterministic output; host seconds live in the
            # volatile perf.wallclock_seconds gauge instead.
            f"  backend       {self.backend}",
        ]
        if self.quant is not None:
            lines.append(f"  quant         {self.quant} (lossy staged "
                         f"search; exact rerank of the candidate pool)")
        if (self.n_degraded or self.n_failed or self.n_timed_out
                or self.fault_report is not None):
            tiers = ", ".join(
                f"tier {tier}: {count}" for tier, count in
                sorted(self.per_tier_counts().items()))
            lines.append(f"  degraded      {self.n_degraded} served "
                         f"below tier 0 ({tiers})")
            lines.append(f"  failed        {self.n_failed} failed, "
                         f"{self.n_timed_out} timed out, "
                         f"{self.n_deadline_missed} served late")
        if self.fault_report is not None:
            lines.append(self.fault_report.summary())
        return "\n".join(lines)

    def _cache_detail_note(self) -> str:
        stats = self.cache_stats
        if stats is None:
            return ""
        return (f" ({stats.collisions} collision-rejects, "
                f"{stats.evictions} evictions)")

    # ------------------------------------------------------------------
    # Registry view
    # ------------------------------------------------------------------

    def verify_against_metrics(self) -> None:
        """Assert this report is an exact view over its registry.

        Every derived count above must equal the corresponding counter
        the engine published while replaying — the two accounting paths
        (outcome records vs. live metric publication) are allowed zero
        drift.  Raises :class:`repro.errors.ObservabilityError` on the
        first mismatch; a no-op when the report carries no registry.
        """
        registry = self.metrics
        if registry is None:
            return
        expectations = {
            "serve.requests": self.n_requests,
            "serve.served": self.n_served,
            "serve.outcomes.cache_hit": self.n_cache_hits,
            "serve.outcomes.rejected": self.n_rejected,
            "serve.outcomes.failed": self.n_failed,
            "serve.outcomes.timed_out": self.n_timed_out,
            "serve.degraded": self.n_degraded,
            "serve.deadline_missed": self.n_deadline_missed,
            "serve.queries_served": self.served_queries,
            "serve.batches": self.n_batches,
            "serve.makespan_seconds": self.makespan_seconds,
            "serve.gpu_busy_seconds": self.gpu_busy_seconds,
        }
        for trigger, count in self.trigger_counts().items():
            expectations[f"serve.batches.{trigger}"] = count
        for tier, count in self.per_tier_counts().items():
            expectations[f"serve.served_tier.{tier}"] = count
        if self.fault_report is not None:
            fr = self.fault_report
            expectations.update({
                "faults.scheduled": fr.scheduled_faults,
                "faults.injected": fr.n_injected,
                "faults.fatal": fr.n_fatal,
                "faults.retries": fr.n_retries,
                "faults.fast_failed": fr.fast_failed_requests,
                "faults.deadline_dropped":
                    fr.deadline_dropped_requests,
                "faults.degraded_batches": fr.n_degraded_batches,
            })
            if fr.n_breaker_trips:
                expectations["faults.breaker.open"] = \
                    fr.n_breaker_trips
        # The wall-clock gauge is volatile (varies run to run), but
        # within one replay the report and the registry must still hold
        # the same reading — the engine publishes both from the same
        # perf_counter delta.
        if "perf.wallclock_seconds" in registry:
            expectations["perf.wallclock_seconds"] = \
                self.wallclock_seconds
        # A quantized replay records one quant.batches tick per
        # dispatched batch; an exact replay must publish no quant
        # metrics at all.
        if self.quant is not None:
            expectations["quant.batches"] = self.n_batches
        elif "quant.batches" in registry:
            raise ObservabilityError(
                "report/registry drift: exact replay published "
                "quant.batches"
            )
        for name, expected in expectations.items():
            actual = registry.value(name, default=0.0)
            if actual != expected:
                raise ObservabilityError(
                    f"report/registry drift on {name!r}: report says "
                    f"{expected}, registry says {actual}"
                )
        hist = (registry.snapshot().get("serve.latency_seconds")
                if "serve.latency_seconds" in registry else None)
        if hist is not None and hist["count"] != self.n_served:
            raise ObservabilityError(
                f"report/registry drift on latency histogram count: "
                f"{self.n_served} served, {hist['count']} observed"
            )
        if self.quant is not None:
            pool_hist = (registry.snapshot().get("quant.rerank_pool_size")
                         if "quant.rerank_pool_size" in registry
                         else None)
            if pool_hist is None or pool_hist["count"] != self.n_batches:
                observed = (pool_hist["count"] if pool_hist is not None
                            else "no histogram")
                raise ObservabilityError(
                    f"report/registry drift on rerank-pool histogram "
                    f"count: {self.n_batches} batches, {observed} "
                    f"observed"
                )

    # ------------------------------------------------------------------
    # Canonical form
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Canonical byte encoding of every result-bearing field.

        Two replays of the same trace under the same fault plan must
        produce equal encodings — the golden chaos-determinism test
        compares these bytes directly.
        """
        chunks: List[bytes] = []
        for o in self.outcomes:
            head = (f"{o.request_id} {o.status.value} {o.batch_index} "
                    f"{o.degraded_tier} {o.n_retries} "
                    f"{int(o.deadline_missed)} {o.arrival_seconds!r} "
                    f"{o.completion_seconds!r} {o.queue_seconds!r} "
                    f"{o.compute_seconds!r} {o.detail}\n")
            chunks.append(head.encode("utf-8"))
            for arr in (o.ids, o.dists):
                chunks.append(b"-" if arr is None
                              else np.ascontiguousarray(arr).tobytes())
        tail = (f"\nsizes={self.batch_sizes}"
                f"\ntriggers={self.batch_triggers}"
                f"\nmakespan={self.makespan_seconds!r}"
                f"\ngpu_busy={self.gpu_busy_seconds!r}")
        chunks.append(tail.encode("utf-8"))
        if self.fault_report is not None:
            chunks.append(b"\n")
            chunks.append(self.fault_report.to_bytes())
        return b"".join(chunks)

    def digest(self) -> str:
        """SHA-256 hex digest of :meth:`to_bytes`."""
        return hashlib.sha256(self.to_bytes()).hexdigest()

    def _trigger_note(self) -> str:
        counts = self.trigger_counts()
        return ", ".join(f"{n} by {trigger}"
                         for trigger, n in sorted(counts.items()))
