"""Batched query-serving subsystem.

Turns the paper's batch-oriented GANNS kernel into a serving layer:
individual requests are admitted through a bounded queue, answered from
an exact-verified LRU result cache when possible, aggregated by a
dynamic micro-batching scheduler (flush on size or deadline), dispatched
through the stream-overlap pipeline of :mod:`repro.core.pipeline`, and
demultiplexed back into per-request results with queue/compute latency
accounting.  The engine is fault-tolerant: wired to a
:class:`repro.faults.FaultPlan` it survives injected kernel faults with
deadlines, retries, a circuit breaker and graceful quality degradation.
See ``docs/serving.md`` and ``docs/fault_model.md`` for the design.
"""

from repro.serve.cache import CacheStats, ResultCache, quantize_query
from repro.serve.engine import ServeEngine
from repro.serve.report import ServeReport
from repro.serve.request import QueryRequest, RequestOutcome, RequestStatus
from repro.serve.scheduler import (
    Batch,
    BatchPolicy,
    MicroBatchScheduler,
    TRIGGER_DEADLINE,
    TRIGGER_DRAIN,
    TRIGGER_SIZE,
)
from repro.serve.trace import synthetic_trace

__all__ = [
    "Batch",
    "BatchPolicy",
    "CacheStats",
    "MicroBatchScheduler",
    "QueryRequest",
    "RequestOutcome",
    "RequestStatus",
    "ResultCache",
    "ServeEngine",
    "ServeReport",
    "TRIGGER_DEADLINE",
    "TRIGGER_DRAIN",
    "TRIGGER_SIZE",
    "quantize_query",
    "synthetic_trace",
]
