"""Request and outcome records of the query-serving engine.

A :class:`QueryRequest` is one client call: one or more query vectors
that arrive together at a simulated wall-clock instant and must be
answered together.  A :class:`RequestOutcome` is the engine's record of
what happened to it — served from a dispatched batch, served from the
result cache, or rejected by admission control — together with the
latency split the serving benchmarks plot (queue wait vs compute).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ServeError


class RequestStatus(enum.Enum):
    """Terminal state of one request."""

    SERVED = "served"
    CACHE_HIT = "cache_hit"
    REJECTED = "rejected"
    #: Deadline expired while queued; dropped before dispatch.
    TIMED_OUT = "timed_out"
    #: Dispatch failed permanently (retries exhausted or breaker open).
    FAILED = "failed"


@dataclass(frozen=True, eq=False)
class QueryRequest:
    """One client request entering the serving engine.

    Attributes:
        request_id: Caller-chosen identifier, unique within a trace.
        queries: ``(m, d)`` query matrix — ``m`` is usually 1, but a
            client may bundle a few queries into one request.
        arrival_seconds: Simulated arrival time.
        deadline_seconds: Optional per-request deadline, *relative* to
            arrival.  A request still queued past its deadline is
            dropped (``TIMED_OUT``); one completing late is served but
            marked ``deadline_missed``.  ``None`` defers to the
            engine's default deadline, if any.
    """

    request_id: int
    queries: np.ndarray
    arrival_seconds: float
    deadline_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        queries = np.asarray(self.queries)
        if queries.ndim == 1:
            queries = queries[None, :]
        if queries.ndim != 2 or len(queries) == 0:
            raise ServeError(
                f"request {self.request_id}: queries must be a non-empty "
                f"1-D vector or 2-D matrix, got shape "
                f"{np.asarray(self.queries).shape}"
            )
        object.__setattr__(self, "queries", queries)
        if self.arrival_seconds < 0:
            raise ServeError(
                f"request {self.request_id}: arrival_seconds must be "
                f">= 0, got {self.arrival_seconds}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ServeError(
                f"request {self.request_id}: deadline_seconds must be "
                f"positive, got {self.deadline_seconds}"
            )

    @property
    def n_queries(self) -> int:
        """Number of query vectors bundled in this request."""
        return len(self.queries)


@dataclass(frozen=True, eq=False)
class RequestOutcome:
    """What the engine did with one request.

    Attributes:
        request_id: The request's identifier.
        status: Served, served from cache, or rejected.
        ids: ``(m, k)`` neighbor ids (``None`` when rejected).
        dists: Matching distances (``None`` when rejected).
        arrival_seconds: When the request arrived.
        completion_seconds: When its results were ready (equals the
            arrival time for cache hits and rejections).
        queue_seconds: Time spent waiting for its batch to start.
        compute_seconds: Time from batch start to batch completion.
        batch_index: Index of the dispatched batch that served it, or
            ``-1`` for cache hits and rejections.
        degraded_tier: Quality tier the request was served at — ``0``
            is full quality; higher tiers searched with a shrunken
            candidate pool under the admission governor and are
            *explicitly marked* as such (never silently degraded).
        deadline_missed: Served, but after the request's deadline.
        n_retries: Dispatch re-executions the serving batch survived.
        detail: Failure reason for ``FAILED``/``TIMED_OUT`` outcomes.
    """

    request_id: int
    status: RequestStatus
    ids: Optional[np.ndarray]
    dists: Optional[np.ndarray]
    arrival_seconds: float
    completion_seconds: float
    queue_seconds: float = 0.0
    compute_seconds: float = 0.0
    batch_index: int = -1
    degraded_tier: int = 0
    deadline_missed: bool = False
    n_retries: int = 0
    detail: str = ""

    @property
    def latency_seconds(self) -> float:
        """End-to-end latency (0 for rejections, by construction)."""
        return self.completion_seconds - self.arrival_seconds

    @property
    def served(self) -> bool:
        """True when results were delivered (full quality or degraded)."""
        return self.status in (RequestStatus.SERVED,
                               RequestStatus.CACHE_HIT)

    @property
    def degraded(self) -> bool:
        """True when served below the full-quality tier."""
        return self.served and self.degraded_tier > 0
