"""Deterministic synthetic query traces for serving simulations.

A trace models what a production front-end sees: Poisson arrivals (i.i.d.
exponential inter-arrival gaps at a target rate) over a query population
with a *hot set* — a small fraction of queries that account for a large
share of traffic, which is what makes a result cache worth its memory.
Everything is driven by one seed, so a trace is fully reproducible.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ServeError
from repro.serve.request import QueryRequest


def synthetic_trace(query_pool: np.ndarray, n_requests: int,
                    mean_qps: float = 50_000.0,
                    repeat_fraction: float = 0.3,
                    hot_fraction: float = 0.02,
                    queries_per_request: int = 1,
                    seed: int = 0) -> Tuple[QueryRequest, ...]:
    """Generate an arrival-ordered request trace over a query pool.

    Args:
        query_pool: ``(p, d)`` matrix of candidate query vectors.
        n_requests: Number of requests to generate.
        mean_qps: Mean arrival rate (requests per simulated second);
            gaps are exponential, so bursts and lulls both occur.
        repeat_fraction: Probability that a request draws from the hot
            set instead of the whole pool — the cache-hit knob.
        hot_fraction: Fraction of the pool forming the hot set (at
            least one query).
        queries_per_request: Query vectors bundled per request.
        seed: RNG seed; identical arguments give identical traces.

    Returns:
        A tuple of :class:`QueryRequest` with non-decreasing arrivals
        and ``request_id`` equal to the trace position.
    """
    query_pool = np.asarray(query_pool)
    if query_pool.ndim != 2 or len(query_pool) == 0:
        raise ServeError(
            f"query_pool must be a non-empty 2-D matrix, got shape "
            f"{query_pool.shape}"
        )
    if n_requests <= 0:
        raise ServeError(f"n_requests must be positive, got {n_requests}")
    if mean_qps <= 0:
        raise ServeError(f"mean_qps must be positive, got {mean_qps}")
    if not 0.0 <= repeat_fraction <= 1.0:
        raise ServeError(
            f"repeat_fraction must lie in [0, 1], got {repeat_fraction}"
        )
    if not 0.0 < hot_fraction <= 1.0:
        raise ServeError(
            f"hot_fraction must lie in (0, 1], got {hot_fraction}"
        )
    if queries_per_request <= 0:
        raise ServeError(
            f"queries_per_request must be positive, got "
            f"{queries_per_request}"
        )

    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / mean_qps, size=n_requests))
    hot_size = max(1, int(round(hot_fraction * len(query_pool))))
    from_hot = rng.random(n_requests) < repeat_fraction
    hot_picks = rng.integers(0, hot_size,
                             size=(n_requests, queries_per_request))
    cold_picks = rng.integers(0, len(query_pool),
                              size=(n_requests, queries_per_request))
    picks = np.where(from_hot[:, None], hot_picks, cold_picks)

    return tuple(
        QueryRequest(request_id=i,
                     queries=query_pool[picks[i]].copy(),
                     arrival_seconds=float(arrivals[i]))
        for i in range(n_requests)
    )
