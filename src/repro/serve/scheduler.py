"""Dynamic micro-batching: aggregate requests, flush on size or deadline.

GPU graph search only pays off when queries arrive at the kernel in
large batches (one thread block per query; a batch of one leaves the
device idle).  The scheduler therefore holds arriving requests in a FIFO
accumulator and flushes a merged batch when either

- the accumulated query count reaches ``max_batch`` (*size* trigger), or
- the oldest waiting request has waited ``max_wait_seconds`` (*deadline*
  trigger) — the knob that bounds worst-case queueing latency.

Whichever fires first wins, giving the classic latency/throughput
trade-off the serving benchmark sweeps.  All time is simulated seconds,
consistent with the rest of the package: the scheduler never reads a
real clock, so every replay is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, ServeError
from repro.serve.request import QueryRequest

#: Flush triggers, in the order they are checked.
TRIGGER_SIZE = "size"
TRIGGER_DEADLINE = "deadline"
TRIGGER_DRAIN = "drain"


@dataclass(frozen=True)
class BatchPolicy:
    """Micro-batching and admission-control knobs.

    Attributes:
        max_batch: Flush when this many queries have accumulated.
        max_wait_seconds: Flush when the oldest request has waited this
            long (the batching window).
        max_queue: Admission bound — maximum queries waiting or
            in flight before new requests are rejected.
    """

    max_batch: int = 256
    max_wait_seconds: float = 2e-3
    max_queue: int = 8192

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ConfigurationError(
                f"max_batch must be positive, got {self.max_batch}"
            )
        if self.max_wait_seconds < 0:
            raise ConfigurationError(
                f"max_wait_seconds must be >= 0, got "
                f"{self.max_wait_seconds}"
            )
        if self.max_queue < self.max_batch:
            raise ConfigurationError(
                f"max_queue ({self.max_queue}) must be >= max_batch "
                f"({self.max_batch}), or every full batch would be "
                f"rejected"
            )


@dataclass(frozen=True)
class Batch:
    """One flushed micro-batch, ready for dispatch.

    Attributes:
        index: Dispatch order (0-based, strictly increasing).
        requests: The member requests, in arrival (FIFO) order.
        open_seconds: Arrival time of the first member.
        flush_seconds: When the flush fired (the deadline itself for
            deadline flushes, not the time the next event was noticed).
        trigger: ``"size"``, ``"deadline"`` or ``"drain"``.
    """

    index: int
    requests: Tuple[QueryRequest, ...]
    open_seconds: float
    flush_seconds: float
    trigger: str

    @property
    def n_queries(self) -> int:
        """Total query vectors across member requests."""
        return sum(r.n_queries for r in self.requests)

    @property
    def n_requests(self) -> int:
        """Number of member requests."""
        return len(self.requests)


class MicroBatchScheduler:
    """FIFO accumulator with size- and deadline-triggered flushing.

    Drive it with simulated time: call :meth:`poll` with the current
    time before each arrival (to fire any deadline that expired in the
    gap), then :meth:`submit` the arrival, and :meth:`drain` once the
    trace ends.  Flushed batches preserve arrival order both across
    batches and within each batch, so serving is globally FIFO.
    """

    def __init__(self, policy: BatchPolicy):
        self.policy = policy
        self._pending: List[QueryRequest] = []
        self._pending_queries = 0
        self._open_seconds: Optional[float] = None
        self._last_event_seconds = 0.0
        self._next_index = 0
        self.flush_counts: Dict[str, int] = {
            TRIGGER_SIZE: 0, TRIGGER_DEADLINE: 0, TRIGGER_DRAIN: 0}

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def pending_requests(self) -> int:
        """Requests currently accumulating."""
        return len(self._pending)

    @property
    def pending_queries(self) -> int:
        """Query vectors currently accumulating."""
        return self._pending_queries

    def deadline(self) -> Optional[float]:
        """When the current accumulation must flush, or ``None`` if empty."""
        if self._open_seconds is None:
            return None
        return self._open_seconds + self.policy.max_wait_seconds

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def _check_time(self, now: float) -> None:
        if now < self._last_event_seconds:
            raise ServeError(
                f"scheduler driven backwards in time: {now} after "
                f"{self._last_event_seconds}"
            )
        self._last_event_seconds = now

    def _flush(self, flush_seconds: float, trigger: str) -> Batch:
        if not self._pending:
            raise ServeError("cannot flush an empty scheduler")
        batch = Batch(
            index=self._next_index,
            requests=tuple(self._pending),
            open_seconds=self._open_seconds,
            flush_seconds=flush_seconds,
            trigger=trigger,
        )
        self._next_index += 1
        self.flush_counts[trigger] += 1
        self._pending = []
        self._pending_queries = 0
        self._open_seconds = None
        return batch

    def poll(self, now: float) -> List[Batch]:
        """Fire any deadline that expired at or before ``now``.

        The flush is stamped with the *deadline* time, not ``now`` —
        in a live system a timer fires at the deadline regardless of
        when the next request happens to arrive.
        """
        self._check_time(now)
        flushed: List[Batch] = []
        deadline = self.deadline()
        if deadline is not None and deadline <= now:
            flushed.append(self._flush(deadline, TRIGGER_DEADLINE))
        return flushed

    def submit(self, request: QueryRequest, now: float) -> List[Batch]:
        """Accept one request; return any batches this arrival flushed.

        A request whose queries would overflow the accumulating batch
        first flushes the accumulation (size trigger), then opens a new
        batch — so batches never exceed ``max_batch`` queries unless a
        single request alone is larger (it then forms its own oversized
        batch rather than being split, because a request's queries must
        be answered together).
        """
        self._check_time(now)
        flushed: List[Batch] = []
        if (self._pending
                and self._pending_queries + request.n_queries
                > self.policy.max_batch):
            flushed.append(self._flush(now, TRIGGER_SIZE))
        if self._open_seconds is None:
            self._open_seconds = now
        self._pending.append(request)
        self._pending_queries += request.n_queries
        if self._pending_queries >= self.policy.max_batch:
            flushed.append(self._flush(now, TRIGGER_SIZE))
        return flushed

    def drain(self) -> List[Batch]:
        """Flush whatever is left at the end of a trace.

        The batch is stamped with its deadline — the engine replays the
        trace to quiescence, and the batching window still applies to
        the tail.
        """
        if not self._pending:
            return []
        return [self._flush(self.deadline(), TRIGGER_DRAIN)]
