"""LRU result cache keyed by quantized query vector + search params.

Serving workloads repeat themselves: hot queries (trending searches,
retried calls) arrive many times within seconds.  Answering a repeat
from a cache costs a hash lookup instead of a graph traversal, so the
GPU batches stay full of *novel* work.

The key quantizes the query vector to a fixed number of decimals — two
float vectors that differ below the quantization step share a bucket.
Because approximate matches could silently return another query's
neighbors, every hit is verified against the exact vector stored in the
entry; a bucket collision is counted and treated as a miss, never
served.  The cache therefore only ever returns results that are
byte-identical to a fresh search of the same vector.

The cache is additionally keyed by an index *version*: every entry
remembers the version it was inserted under, and
:meth:`ResultCache.bump_version` (called when the served index mutates
— e.g. a delete tombstones a vertex) invalidates every entry of older
versions.  A post-delete lookup therefore can never return a result
computed against the previous corpus, such as a tombstoned id.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError


def quantize_query(query: np.ndarray, decimals: int = 6) -> bytes:
    """Bucket key for a query vector: rounded float64 bytes.

    Rounding collapses float noise (e.g. a re-encoded float32 upload of
    the same logical vector) into one bucket; ``-0.0`` is normalised so
    it shares the bucket of ``+0.0``.
    """
    rounded = np.round(np.asarray(query, dtype=np.float64).ravel(),
                       decimals)
    rounded += 0.0  # -0.0 + 0.0 == +0.0
    return rounded.tobytes()


@dataclass
class CacheStats:
    """Counters accumulated over a cache's lifetime."""

    hits: int = 0
    misses: int = 0
    collisions: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups (collisions count as misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class ResultCache:
    """Bounded LRU cache of per-query search results.

    Args:
        capacity: Maximum resident entries; ``0`` disables the cache
            (every lookup misses, every put is dropped).
        decimals: Quantization decimals for the bucket key.
        version: Initial index version the cache serves; entries are
            keyed by it, and :meth:`bump_version` invalidates the
            entries of superseded versions.
    """

    def __init__(self, capacity: int = 4096, decimals: int = 6,
                 version: int = 0):
        if capacity < 0:
            raise ConfigurationError(
                f"cache capacity must be >= 0, got {capacity}"
            )
        if decimals < 0:
            raise ConfigurationError(
                f"cache decimals must be >= 0, got {decimals}"
            )
        self.capacity = capacity
        self.decimals = decimals
        self.version = int(version)
        self.stats = CacheStats()
        # key -> (exact query vector, ids, dists); most recent last.
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def _key(self, query: np.ndarray, signature: tuple) -> tuple:
        return (quantize_query(query, self.decimals), signature,
                self.version)

    def bump_version(self, version: Optional[int] = None) -> int:
        """Advance the index version, invalidating all older entries.

        Call whenever the served corpus changes (insert, delete,
        compaction): results computed against the previous version —
        including any that reference now-tombstoned ids — become
        unreachable *and* are dropped immediately, each counted in
        ``stats.invalidations``.

        Args:
            version: Explicit new version (e.g. the index epoch); must
                not move backwards.  Defaults to ``current + 1``.

        Returns:
            The new version.
        """
        new_version = self.version + 1 if version is None else int(version)
        if new_version < self.version:
            raise ConfigurationError(
                f"cache version cannot move backwards: "
                f"{self.version} -> {new_version}"
            )
        if new_version == self.version:
            return self.version
        self.version = new_version
        stale = len(self._entries)
        self._entries.clear()
        self.stats.invalidations += stale
        return self.version

    def get(self, query: np.ndarray, signature: tuple
            ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Look up one query vector; returns ``(ids, dists)`` or ``None``.

        Args:
            query: ``(d,)`` query vector.
            signature: Result-affecting search-parameter identity, as
                produced by :meth:`repro.core.params.SearchParams.signature`.
        """
        key = self._key(query, signature)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        stored_query, ids, dists = entry
        if not np.array_equal(
                np.asarray(query, dtype=np.float64).ravel(), stored_query):
            # Two distinct vectors share the quantization bucket; serving
            # the stored result would answer the wrong query.
            self.stats.collisions += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return ids, dists

    def put(self, query: np.ndarray, signature: tuple,
            ids: np.ndarray, dists: np.ndarray) -> None:
        """Insert one query's results, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        key = self._key(query, signature)
        exact = np.asarray(query, dtype=np.float64).ravel().copy()
        self._entries[key] = (exact, np.asarray(ids).copy(),
                              np.asarray(dists).copy())
        self._entries.move_to_end(key)
        self.stats.insertions += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()
