"""The serving engine: admission, batching, dispatch, fault tolerance.

This is the layer the ROADMAP's "serving heavy traffic" goal needs on
top of the paper's kernel: individual requests arrive at arbitrary
times, but the GPU only pays off on large batches (Section III-B's
stream-overlap remark assumes thousands of queries in flight).  The
engine closes that gap:

1. **Admission** — a bounded queue; requests beyond ``max_queue``
   waiting-or-in-flight queries are rejected explicitly
   (:class:`repro.errors.OverloadError` semantics) instead of growing
   tail latency without bound.
2. **Cache** — an exact-verified LRU result cache answers repeated
   queries without touching the device.
3. **Micro-batching** — a :class:`MicroBatchScheduler` merges admitted
   requests and flushes on size or deadline.
4. **Dispatch** — merged batches run through
   :func:`repro.core.pipeline.stream_batches`; consecutive batches
   overlap on the simulated device exactly as the paper's CUDA streams
   do (batch ``i+1`` uploads while batch ``i`` computes).
5. **Fault tolerance** (:mod:`repro.faults`) — a seeded
   :class:`~repro.faults.plan.FaultPlan` may inject kernel timeouts,
   stalls, ECC errors and memory exhaustion into dispatch; the engine
   answers with per-request deadlines, capped-exponential retries, a
   circuit breaker, and (with an
   :class:`~repro.faults.policy.AdmissionGovernor`) graceful quality
   degradation instead of outright rejection.  Every event lands in a
   :class:`~repro.faults.report.FaultReport`.
6. **Demultiplexing** — per-request result slices, latency split into
   queue wait and compute, and a :class:`ServeReport` summary.

Everything runs in simulated seconds; a replay of the same trace under
the same fault plan is bit-for-bit deterministic, and every served
answer is either byte-identical to a direct
:func:`repro.core.ganns.ganns_search` of the same queries or explicitly
marked with the degradation tier it was served at (the integration
tests pin both properties).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.params import SearchParams
from repro.core.pipeline import stream_batches
from repro.errors import FaultError, ServeError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.policy import (
    AdmissionGovernor,
    BreakerPolicy,
    CircuitBreaker,
    DEGRADE_BREAKER,
    DEGRADE_PRESSURE,
    RetryPolicy,
)
from repro.faults.report import (
    DegradationRecord,
    FaultReport,
    InjectionRecord,
    RetryRecord,
)
from repro.graphs.adjacency import ProximityGraph
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.device import DeviceSpec, QUADRO_P5000
from repro.observability.bridge import publish_tracker_totals
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
)
from repro.observability.span import SpanTracer
from repro.perf.backend import resolve_backend
from repro.perf.quant import QUANT_BITS, resolve_quant
from repro.serve.cache import ResultCache
from repro.serve.report import ServeReport
from repro.serve.request import QueryRequest, RequestOutcome, RequestStatus
from repro.serve.scheduler import Batch, BatchPolicy, MicroBatchScheduler


@dataclass(frozen=True)
class EngineSlots:
    """The exact engine occupancy of one dispatch attempt.

    The observability layer turns these into ``upload`` / ``compute`` /
    ``download`` spans on the per-engine lanes; the engine itself only
    needs :attr:`service_start` and :attr:`completion`.
    """

    upload_start: float
    upload_end: float
    compute_start: float
    compute_end: float
    download_start: float = 0.0
    download_end: float = 0.0

    @property
    def service_start(self) -> float:
        """When the attempt first occupied a device engine."""
        return self.upload_start

    @property
    def completion(self) -> float:
        """When the attempt's results finished downloading."""
        return self.download_end


@dataclass
class _EngineClock:
    """Free times of the three simulated device engines.

    Mirrors the double-buffered schedule of
    :func:`repro.core.pipeline.stream_batches`, but across dispatched
    micro-batches: the upload of batch ``i+1`` may proceed while batch
    ``i`` computes and batch ``i-1`` downloads.
    """

    upload_free: float = 0.0
    compute_free: float = 0.0
    download_free: float = 0.0

    def schedule(self, ready: float, upload: float, compute: float,
                 download: float) -> EngineSlots:
        """Run one batch; returns the attempt's engine occupancy."""
        upload_start = max(ready, self.upload_free)
        self.upload_free = upload_start + upload
        compute_start = max(self.compute_free, self.upload_free)
        self.compute_free = compute_start + compute
        download_start = max(self.download_free, self.compute_free)
        self.download_free = download_start + download
        return EngineSlots(
            upload_start=upload_start, upload_end=self.upload_free,
            compute_start=compute_start, compute_end=self.compute_free,
            download_start=download_start,
            download_end=self.download_free)

    def charge_failure(self, ready: float, upload: float,
                       compute: float) -> EngineSlots:
        """Occupy the upload/compute engines for a *failed* attempt.

        Nothing downloads — the attempt died before producing results —
        but the wasted engine time still delays everything behind it.
        The failure is detected at ``compute_end``.
        """
        upload_start = max(ready, self.upload_free)
        self.upload_free = upload_start + upload
        compute_start = max(self.compute_free, self.upload_free)
        self.compute_free = compute_start + compute
        return EngineSlots(
            upload_start=upload_start, upload_end=self.upload_free,
            compute_start=compute_start, compute_end=self.compute_free,
            download_start=self.compute_free,
            download_end=self.compute_free)


class ServeEngine:
    """Batched query-serving over one shared GANNS index.

    Args:
        graph: Proximity graph over ``points`` (a flat NSW/KNN graph).
        points: ``(n, d)`` data matrix the graph was built on.
        params: Search parameters applied to every dispatched batch.
        policy: Micro-batching and admission knobs.
        cache: Result cache; ``None`` disables caching entirely.
        device: Simulated device (clock and PCIe figures).
        costs: Cycle cost table.
        entry: Search entry vertex (scalar; shared by all queries).
        faults: Optional :class:`FaultPlan` to inject during dispatch.
            A fresh :class:`FaultInjector` is built per replay, so the
            same engine replays identically any number of times.
        retry: Backoff policy for failed dispatch attempts; defaults to
            :class:`RetryPolicy` when a fault plan is given.
        breaker: Circuit-breaker knobs; defaults to
            :class:`BreakerPolicy` when a fault plan is given.
        governor: Optional graceful-degradation governor.  Without one,
            overload rejects and an open breaker fails fast; with one,
            search quality steps down through its tiers instead.
        default_deadline_seconds: Deadline applied to requests that do
            not carry their own (relative to arrival); ``None`` means
            no deadline.
        family: Registered index family of the served graph (default
            ``"nsw"``).  Folded into every result-cache signature, so a
            cache shared across engines can never serve one family's
            results for another's.
    """

    def __init__(self, graph: ProximityGraph, points: np.ndarray,
                 params: Optional[SearchParams] = None,
                 policy: Optional[BatchPolicy] = None,
                 cache: Optional[ResultCache] = None,
                 device: DeviceSpec = QUADRO_P5000,
                 costs: CostTable = DEFAULT_COSTS,
                 entry: int = 0,
                 faults: Optional[FaultPlan] = None,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[BreakerPolicy] = None,
                 governor: Optional[AdmissionGovernor] = None,
                 default_deadline_seconds: Optional[float] = None,
                 family: str = "nsw"):
        from repro.core.backend import get_backend
        get_backend(family)  # typed error on unknown family names
        #: Index family of the served graph.  Results are family-shaped,
        #: so the family is folded into every cache signature — two
        #: engines sharing one :class:`ResultCache` across families can
        #: never serve each other's entries.
        self.family = family
        self.graph = graph
        self.points = np.asarray(points)
        if self.points.ndim != 2:
            raise ServeError(
                f"points must be a 2-D matrix, got shape "
                f"{self.points.shape}"
            )
        self.params = params if params is not None else SearchParams()
        self.policy = policy if policy is not None else BatchPolicy()
        self.cache = cache
        self.device = device
        self.costs = costs
        self.entry = int(entry)
        self.faults = faults
        if faults is not None:
            retry = retry if retry is not None else RetryPolicy()
            breaker = breaker if breaker is not None else BreakerPolicy()
        self.retry = retry
        self.breaker_policy = breaker
        self.governor = governor
        if governor is not None:
            # Fail at construction if any tier cannot hold k results.
            for tier in range(1, governor.n_tiers):
                governor.params_for(tier, self.params)
        if (default_deadline_seconds is not None
                and default_deadline_seconds <= 0):
            raise ServeError(
                f"default_deadline_seconds must be positive, got "
                f"{default_deadline_seconds}"
            )
        self.default_deadline_seconds = default_deadline_seconds
        #: Epoch of the pinned snapshot this engine serves, or ``None``
        #: for an engine built directly over a graph.
        self.snapshot_epoch: Optional[int] = None

    @classmethod
    def from_snapshot(cls, handle, **kwargs) -> "ServeEngine":
        """Serve one pinned epoch of a mutable index.

        Args:
            handle: A :class:`repro.mutable.snapshot.SnapshotHandle`.
                Its ``serving_view()`` — where tombstoned vertices are
                already detached, so no answer can name a deleted id —
                becomes the engine's graph, points and entry.
            **kwargs: Everything :class:`ServeEngine` accepts except
                ``graph``/``points``/``entry``.

        The handle pins its arrays against later mutations, so replays
        through the returned engine are byte-identical no matter what
        lands on the live index afterwards.  A supplied ``cache`` is
        version-bumped to the snapshot epoch, evicting entries cached
        under any older epoch.
        """
        view_graph, view_points, view_entry = handle.serving_view()
        cache = kwargs.get("cache")
        if cache is not None and cache.version < handle.epoch:
            cache.bump_version(handle.epoch)
        engine = cls(view_graph, view_points, entry=view_entry,
                     **kwargs)
        engine.snapshot_epoch = handle.epoch
        return engine

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def _deadline_of(self, req: QueryRequest) -> Optional[float]:
        """Absolute deadline of one request, or ``None``."""
        relative = (req.deadline_seconds
                    if req.deadline_seconds is not None
                    else self.default_deadline_seconds)
        if relative is None:
            return None
        return req.arrival_seconds + relative

    def replay(self, trace: Sequence[QueryRequest],
               tracer: Optional[SpanTracer] = None,
               metrics: Optional[MetricsRegistry] = None) -> ServeReport:
        """Replay an arrival-ordered trace to quiescence.

        Args:
            trace: Requests with non-decreasing ``arrival_seconds``.
            tracer: Optional :class:`SpanTracer`; when given, the whole
                replay is traced on the simulated clock (request
                lifecycles, batch formation, dispatch attempts, engine
                occupancy, fault/retry/degrade events).  Every span the
                engine opens is closed before :meth:`replay` returns.
            metrics: Optional :class:`MetricsRegistry` to publish into;
                one is created internally when omitted.  Either way the
                registry is attached to the returned report
                (``report.metrics``), whose derived properties are
                views that reconcile with it exactly
                (:meth:`ServeReport.verify_against_metrics`).

        Returns:
            A :class:`ServeReport` holding every request's outcome and,
            when fault machinery is configured, a
            :class:`FaultReport` of every fault-tolerance event.

        Raises:
            ServeError: On an out-of-order trace or a query whose
                dimensionality does not match the served points.
        """
        wall_start = time.perf_counter()
        trace = list(trace)
        quant_mode = resolve_quant(self.params.quant)
        rerank_pool = self.params.rerank_factor * self.params.l_n
        # Quantized serving is lossy, so its results live in their own
        # cache namespace: the signature gains a quant component and a
        # compressed-traversal hit can never answer an exact request
        # (or a request under a different mode / rerank factor).
        signature = (self.family,) + self.params.signature()
        if quant_mode is not None:
            signature = ((self.family,
                          f"quant:{quant_mode}:rf"
                          f"{self.params.rerank_factor}")
                         + self.params.signature())
        backend_name = resolve_backend(self.params.backend)
        scheduler = MicroBatchScheduler(self.policy)
        clock = _EngineClock()
        injector = (FaultInjector(self.faults)
                    if self.faults is not None else None)
        breaker = (CircuitBreaker(self.breaker_policy)
                   if self.breaker_policy is not None else None)
        jitter_rng = (injector.jitter_rng if injector is not None
                      else np.random.default_rng(0))
        fault_report = FaultReport(
            scheduled_faults=len(self.faults.kernel_events())
            if self.faults is not None else 0)
        registry = metrics if metrics is not None else MetricsRegistry()
        registry.counter("faults.scheduled").inc(
            fault_report.scheduled_faults)
        latency_hist = registry.histogram("serve.latency_seconds",
                                          DEFAULT_LATENCY_BUCKETS)
        queue_hist = registry.histogram("serve.queue_seconds",
                                        DEFAULT_LATENCY_BUCKETS)
        size_hist = registry.histogram("serve.batch_size",
                                       DEFAULT_SIZE_BUCKETS)
        # Quant metrics exist only when the replay actually runs the
        # staged pipeline — an exact replay publishes nothing under
        # ``quant.*``, so committed golden traces are quant-silent.
        rerank_hist = (registry.histogram("quant.rerank_pool_size",
                                          DEFAULT_SIZE_BUCKETS)
                       if quant_mode is not None else None)
        outcomes: List[Optional[RequestOutcome]] = [None] * len(trace)
        positions = {}
        for pos, req in enumerate(trace):
            if id(req) in positions:
                raise ServeError(
                    f"trace contains the same request object twice "
                    f"(request_id {req.request_id}); construct a fresh "
                    f"QueryRequest per arrival"
                )
            positions[id(req)] = pos
        batch_sizes: List[int] = []
        batch_triggers: List[str] = []
        in_flight: List[tuple] = []  # (completion_seconds, n_queries)
        gpu_busy = 0.0
        root_start = trace[0].arrival_seconds if trace else 0.0
        root_span = (tracer.begin(
            "serve.replay", root_start, lane="engine",
            attributes={"n_requests": len(trace)})
            if tracer is not None else None)
        request_spans: dict = {}

        def finish(req: QueryRequest, **kwargs) -> None:
            outcome = RequestOutcome(
                request_id=req.request_id,
                arrival_seconds=req.arrival_seconds, **kwargs)
            outcomes[positions[id(req)]] = outcome
            registry.counter(
                f"serve.outcomes.{outcome.status.value}").inc()
            if outcome.served:
                registry.counter("serve.served").inc()
                registry.counter("serve.queries_served").inc(
                    req.n_queries)
                registry.counter(
                    f"serve.served_tier.{outcome.degraded_tier}").inc()
                latency_hist.observe(outcome.latency_seconds)
                queue_hist.observe(outcome.queue_seconds)
                if outcome.degraded:
                    registry.counter("serve.degraded").inc()
                if outcome.deadline_missed:
                    registry.counter("serve.deadline_missed").inc()
            span_id = request_spans.pop(id(req), None)
            if span_id is None:
                return
            if outcome.status is RequestStatus.SERVED:
                service_start = (outcome.arrival_seconds
                                 + outcome.queue_seconds)
                tracer.add("request.queue", outcome.arrival_seconds,
                           service_start, parent_id=span_id)
                tracer.add("request.compute", service_start,
                           outcome.completion_seconds,
                           parent_id=span_id)
            close_attrs = {
                "status": outcome.status.value,
                "batch_index": outcome.batch_index,
                "tier": outcome.degraded_tier,
                "n_retries": outcome.n_retries,
                "deadline_missed": outcome.deadline_missed,
            }
            if outcome.detail:
                close_attrs["detail"] = outcome.detail
            tracer.end(span_id, outcome.completion_seconds,
                       attributes=close_attrs)

        def fail_batch(live, batch, when, detail) -> None:
            for req in live:
                finish(req, status=RequestStatus.FAILED,
                       ids=None, dists=None, completion_seconds=when,
                       queue_seconds=when - req.arrival_seconds,
                       batch_index=batch.index, detail=detail)

        def record_batch(batch: Batch, n_queries: int) -> None:
            batch_sizes.append(n_queries)
            batch_triggers.append(batch.trigger)
            registry.counter("serve.batches").inc()
            registry.counter(f"serve.batches.{batch.trigger}").inc()
            registry.counter("serve.queries_dispatched").inc(n_queries)
            size_hist.observe(n_queries)
            if rerank_hist is not None:
                registry.counter("quant.batches").inc()
                rerank_hist.observe(rerank_pool)

        def attempt_spans(batch_span, ready: float, attempt: int,
                          slots: EngineSlots, end: float,
                          failed: bool) -> Optional[int]:
            """Trace one dispatch attempt's engine occupancy."""
            if tracer is None:
                return None
            span = tracer.begin("attempt", ready, parent_id=batch_span,
                                attributes={"attempt": attempt})
            tracer.add("upload", slots.upload_start, slots.upload_end,
                       parent_id=span, lane="engine/upload")
            compute_id = tracer.add(
                "compute", slots.compute_start, slots.compute_end,
                parent_id=span, lane="engine/compute")
            if not failed:
                tracer.add("download", slots.download_start,
                           slots.download_end, parent_id=span,
                           lane="engine/download")
            tracer.end(span, end, attributes={
                "outcome": "failed" if failed else "ok"})
            return compute_id

        def dispatch(batch: Batch) -> None:
            nonlocal gpu_busy
            now = batch.flush_seconds
            batch_span = None
            if tracer is not None:
                batch_span = tracer.begin(
                    "batch", batch.open_seconds, parent_id=root_span,
                    lane_group="batches",
                    attributes={"batch_index": batch.index,
                                "trigger": batch.trigger,
                                "n_requests": batch.n_requests,
                                "n_queries": batch.n_queries})
                tracer.add("batch.form", batch.open_seconds, now,
                           parent_id=batch_span)

            # Deadline load-shedding: a request already past its
            # deadline gains nothing from dispatch — drop it before it
            # wastes device time.
            live = []
            for req in batch.requests:
                deadline = self._deadline_of(req)
                if deadline is not None and deadline <= now:
                    if batch_span is not None:
                        tracer.event(batch_span, now, "deadline_drop",
                                     {"request_id": req.request_id})
                    finish(req, status=RequestStatus.TIMED_OUT,
                           ids=None, dists=None, completion_seconds=now,
                           queue_seconds=now - req.arrival_seconds,
                           batch_index=batch.index,
                           detail="deadline expired while queued")
                    fault_report.deadline_dropped_requests += 1
                    registry.counter("faults.deadline_dropped").inc()
                else:
                    live.append(req)
            if not live:
                if batch_span is not None:
                    tracer.end(batch_span, now,
                               attributes={"outcome": "all_dropped"})
                return

            # Circuit breaker: while open, fail fast instead of feeding
            # a dying kernel more work.
            if breaker is not None and not breaker.allow(now):
                if batch_span is not None:
                    tracer.event(batch_span, now, "breaker_open")
                fail_batch(live, batch, now, "circuit breaker open")
                fault_report.fast_failed_requests += len(live)
                registry.counter("faults.fast_failed").inc(len(live))
                if batch_span is not None:
                    tracer.end(batch_span, now,
                               attributes={"outcome": "fast_failed"})
                return

            # Graceful degradation: pick this dispatch's quality tier.
            tier = 0
            params = self.params
            if self.governor is not None:
                inflight_queries = sum(n for c, n in in_flight if c > now)
                pressure = ((batch.n_queries + inflight_queries
                             + scheduler.pending_queries)
                            / self.policy.max_queue)
                impaired = breaker is not None and breaker.impaired
                tier = self.governor.select_tier(pressure, impaired)
                if tier > 0:
                    params = self.governor.params_for(tier, self.params)
                    reason = (DEGRADE_BREAKER if impaired
                              else DEGRADE_PRESSURE)
                    fault_report.degradations.append(DegradationRecord(
                        seconds=now, batch_index=batch.index, tier=tier,
                        reason=reason))
                    registry.counter("faults.degraded_batches").inc()
                    if batch_span is not None:
                        tracer.event(batch_span, now, "degrade",
                                     {"tier": tier, "reason": reason})

            queries = np.concatenate(
                [req.queries for req in live], axis=0)

            ready = now
            attempt = 0
            while True:
                consumed: List = []
                hook = (injector.hook(ready, sink=consumed,
                                      metrics=registry)
                        if injector is not None else None)
                try:
                    stream = stream_batches(
                        self.graph, self.points, queries, params,
                        batch_size=len(queries), device=self.device,
                        costs=self.costs, entry=self.entry,
                        fault_hook=hook)
                except FaultError as err:
                    fault_report.injections.append(InjectionRecord(
                        seconds=ready, kind=err.kind,
                        batch_index=batch.index, attempt=attempt,
                        fatal=True))
                    registry.counter("faults.injected").inc()
                    registry.counter("faults.fatal").inc()
                    slots = clock.charge_failure(
                        ready, err.upload_seconds, err.compute_seconds)
                    failed_at = slots.compute_end
                    gpu_busy += err.compute_seconds
                    if tracer is not None:
                        att = tracer.begin(
                            "attempt", ready, parent_id=batch_span,
                            attributes={"attempt": attempt})
                        tracer.add("upload", slots.upload_start,
                                   slots.upload_end, parent_id=att,
                                   lane="engine/upload")
                        tracer.add("compute", slots.compute_start,
                                   slots.compute_end, parent_id=att,
                                   lane="engine/compute")
                        tracer.event(att, failed_at, "fault",
                                     {"kind": err.kind, "fatal": True})
                        tracer.end(att, failed_at, attributes={
                            "outcome": "failed"})
                    if breaker is not None:
                        breaker.record_failure(failed_at)
                    tripped = (breaker is not None
                               and not breaker.allow(failed_at))
                    exhausted = (self.retry is None
                                 or attempt >= self.retry.max_retries)
                    if tripped or exhausted:
                        detail = ("circuit breaker open" if tripped
                                  else f"retries exhausted after "
                                       f"{attempt + 1} attempts "
                                       f"({err.kind})")
                        fail_batch(live, batch, failed_at, detail)
                        in_flight.append((failed_at, len(queries)))
                        record_batch(batch, len(queries))
                        if batch_span is not None:
                            tracer.end(batch_span, failed_at,
                                       attributes={"outcome": "failed",
                                                   "detail": detail})
                        return
                    attempt += 1
                    backoff = self.retry.backoff_seconds(
                        attempt, jitter_rng)
                    fault_report.retries.append(RetryRecord(
                        seconds=failed_at, batch_index=batch.index,
                        attempt=attempt, backoff_seconds=backoff))
                    registry.counter("faults.retries").inc()
                    if tracer is not None:
                        tracer.add("retry.backoff", failed_at,
                                   failed_at + backoff,
                                   parent_id=batch_span,
                                   attributes={"attempt": attempt})
                    ready = failed_at + backoff
                    continue
                break

            # Survivable faults (stalls) consumed by the winning attempt.
            for event in consumed:
                fault_report.injections.append(InjectionRecord(
                    seconds=ready, kind=event.kind,
                    batch_index=batch.index, attempt=attempt,
                    fatal=False))
                registry.counter("faults.injected").inc()

            timing = stream.batches[0]
            slots = clock.schedule(
                ready, timing.upload_seconds,
                timing.compute_seconds, timing.download_seconds)
            start, completion = slots.service_start, slots.completion
            compute_span = attempt_spans(batch_span, ready, attempt,
                                         slots, completion, False)
            kernel_tracker = stream.reports[0].tracker
            publish_tracker_totals(registry, kernel_tracker)
            if compute_span is not None:
                cycle_attrs = {
                    f"cycles.{phase}": total for phase, total
                    in kernel_tracker.phase_totals().items()}
                cycle_attrs["cycles_total"] = \
                    kernel_tracker.total_cycles()
                cycle_attrs["kernel.backend"] = backend_name
                if quant_mode is not None:
                    cycle_attrs["quant.mode"] = quant_mode
                    cycle_attrs["quant.bits"] = QUANT_BITS[quant_mode]
                    cycle_attrs["quant.rerank"] = \
                        self.params.rerank_factor
                tracer.spans[compute_span].attributes.update(
                    cycle_attrs)
                for event in consumed:
                    tracer.event(compute_span, slots.compute_start,
                                 "fault", {"kind": event.kind,
                                           "fatal": False})
            if breaker is not None:
                breaker.record_success(completion)
            gpu_busy += timing.compute_seconds
            in_flight.append((completion, len(queries)))
            record_batch(batch, len(queries))
            if batch_span is not None:
                tracer.end(batch_span, completion,
                           attributes={"outcome": "served",
                                       "tier": tier,
                                       "n_attempts": attempt + 1})

            offset = 0
            for req in live:
                ids = stream.ids[offset:offset + req.n_queries]
                dists = stream.dists[offset:offset + req.n_queries]
                offset += req.n_queries
                deadline = self._deadline_of(req)
                finish(req, status=RequestStatus.SERVED,
                       ids=ids.copy(), dists=dists.copy(),
                       completion_seconds=completion,
                       queue_seconds=start - req.arrival_seconds,
                       compute_seconds=completion - start,
                       batch_index=batch.index,
                       degraded_tier=tier,
                       deadline_missed=(deadline is not None
                                        and completion > deadline),
                       n_retries=attempt)
                # Only full-quality answers enter the cache: a degraded
                # result under the tier-0 signature would be a silent
                # quality lie on the next hit.
                if self.cache is not None and tier == 0:
                    for row in range(req.n_queries):
                        self.cache.put(req.queries[row], signature,
                                       ids[row], dists[row])

        last_arrival = float("-inf")
        for pos, req in enumerate(trace):
            if req.arrival_seconds < last_arrival:
                raise ServeError(
                    f"trace is not arrival-ordered: request "
                    f"{req.request_id} at {req.arrival_seconds} after "
                    f"{last_arrival}"
                )
            last_arrival = req.arrival_seconds
            if req.queries.shape[1] != self.points.shape[1]:
                raise ServeError(
                    f"request {req.request_id}: query dimensionality "
                    f"{req.queries.shape[1]} does not match the index "
                    f"({self.points.shape[1]})"
                )
            now = req.arrival_seconds
            registry.counter("serve.requests").inc()
            if tracer is not None:
                request_spans[id(req)] = tracer.begin(
                    "request", now, parent_id=root_span,
                    lane_group="requests",
                    attributes={"request_id": req.request_id,
                                "n_queries": req.n_queries})
            for batch in scheduler.poll(now):
                dispatch(batch)

            hit = self._cache_lookup(req, signature)
            if hit is not None:
                ids, dists = hit
                registry.counter("serve.cache_hits").inc()
                finish(req, status=RequestStatus.CACHE_HIT,
                       ids=ids, dists=dists, completion_seconds=now)
                continue

            in_flight[:] = [(c, n) for c, n in in_flight if c > now]
            backlog = scheduler.pending_queries \
                + sum(n for _, n in in_flight)
            if backlog + req.n_queries > self.policy.max_queue:
                finish(req, status=RequestStatus.REJECTED,
                       ids=None, dists=None, completion_seconds=now,
                       detail="admission queue full")
                continue

            for batch in scheduler.submit(req, now):
                dispatch(batch)

        for batch in scheduler.drain():
            dispatch(batch)

        assert all(outcome is not None for outcome in outcomes)
        if breaker is not None:
            fault_report.breaker_transitions = list(breaker.transitions)
            fault_report.probe_successes = breaker.probe_successes
            for transition in breaker.transitions:
                registry.counter(
                    f"faults.breaker.{transition.to_state}").inc()
            registry.counter("faults.breaker.probe_successes").inc(
                breaker.probe_successes)
        first_arrival = trace[0].arrival_seconds if trace else 0.0
        last_completion = max(
            (o.completion_seconds for o in outcomes), default=0.0)
        makespan = max(last_completion - first_arrival, 0.0)
        registry.gauge("serve.makespan_seconds").set(makespan)
        registry.gauge("serve.gpu_busy_seconds").set(gpu_busy)
        # Host wall-clock of this replay — the one *volatile* metric the
        # engine publishes (excluded from canonical snapshots; see
        # repro.observability.metrics.VOLATILE_PREFIX).  This is what
        # the fast/reference backends actually trade: simulated seconds
        # and cycle charges are backend-invariant, wallclock is not.
        wallclock = time.perf_counter() - wall_start
        registry.gauge("perf.wallclock_seconds").set(wallclock)
        if tracer is not None:
            root_end = max(last_completion, last_arrival, root_start) \
                if trace else root_start
            tracer.end(root_span, root_end)
        has_fault_machinery = (self.faults is not None
                               or self.breaker_policy is not None
                               or self.governor is not None
                               or self.default_deadline_seconds is not None)
        return ServeReport(
            outcomes=outcomes,
            batch_sizes=batch_sizes,
            batch_triggers=batch_triggers,
            makespan_seconds=makespan,
            gpu_busy_seconds=gpu_busy,
            cache_stats=self.cache.stats if self.cache is not None
            else None,
            fault_report=fault_report if has_fault_machinery else None,
            metrics=registry,
            wallclock_seconds=wallclock,
            backend=backend_name,
            quant=quant_mode,
        )

    def _cache_lookup(self, req: QueryRequest, signature: tuple
                      ) -> Optional[tuple]:
        """All-or-nothing cache lookup for one request.

        Every vector of the request must hit for the request to be a
        cache hit (a request's queries are answered together); a partial
        hit falls through to batching and the hit vectors are simply
        recomputed — the per-vector counters in ``cache.stats`` record
        the partial hits.
        """
        if self.cache is None:
            return None
        rows = []
        for row in range(req.n_queries):
            found = self.cache.get(req.queries[row], signature)
            if found is None:
                return None
            rows.append(found)
        ids = np.stack([r[0] for r in rows], axis=0)
        dists = np.stack([r[1] for r in rows], axis=0)
        return ids, dists
