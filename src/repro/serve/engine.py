"""The serving engine: admission, batching, dispatch, demultiplexing.

This is the layer the ROADMAP's "serving heavy traffic" goal needs on
top of the paper's kernel: individual requests arrive at arbitrary
times, but the GPU only pays off on large batches (Section III-B's
stream-overlap remark assumes thousands of queries in flight).  The
engine closes that gap:

1. **Admission** — a bounded queue; requests beyond ``max_queue``
   waiting-or-in-flight queries are rejected explicitly
   (:class:`repro.errors.OverloadError` semantics) instead of growing
   tail latency without bound.
2. **Cache** — an exact-verified LRU result cache answers repeated
   queries without touching the device.
3. **Micro-batching** — a :class:`MicroBatchScheduler` merges admitted
   requests and flushes on size or deadline.
4. **Dispatch** — merged batches run through
   :func:`repro.core.pipeline.stream_batches`; consecutive batches
   overlap on the simulated device exactly as the paper's CUDA streams
   do (batch ``i+1`` uploads while batch ``i`` computes).
5. **Demultiplexing** — per-request result slices, latency split into
   queue wait and compute, and a :class:`ServeReport` summary.

Everything runs in simulated seconds; a replay of the same trace is
bit-for-bit deterministic, and the answers are byte-identical to a
direct :func:`repro.core.ganns.ganns_search` of the same queries (the
integration tests pin both properties).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.params import SearchParams
from repro.core.pipeline import stream_batches
from repro.errors import ServeError
from repro.graphs.adjacency import ProximityGraph
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.device import DeviceSpec, QUADRO_P5000
from repro.serve.cache import ResultCache
from repro.serve.report import ServeReport
from repro.serve.request import QueryRequest, RequestOutcome, RequestStatus
from repro.serve.scheduler import Batch, BatchPolicy, MicroBatchScheduler


@dataclass
class _EngineClock:
    """Free times of the three simulated device engines.

    Mirrors the double-buffered schedule of
    :func:`repro.core.pipeline.stream_batches`, but across dispatched
    micro-batches: the upload of batch ``i+1`` may proceed while batch
    ``i`` computes and batch ``i-1`` downloads.
    """

    upload_free: float = 0.0
    compute_free: float = 0.0
    download_free: float = 0.0

    def schedule(self, ready: float, upload: float, compute: float,
                 download: float) -> tuple:
        """Run one batch; returns ``(service_start, completion)``."""
        upload_start = max(ready, self.upload_free)
        self.upload_free = upload_start + upload
        self.compute_free = max(self.compute_free, self.upload_free) \
            + compute
        self.download_free = max(self.download_free, self.compute_free) \
            + download
        return upload_start, self.download_free


class ServeEngine:
    """Batched query-serving over one shared GANNS index.

    Args:
        graph: Proximity graph over ``points`` (a flat NSW/KNN graph).
        points: ``(n, d)`` data matrix the graph was built on.
        params: Search parameters applied to every dispatched batch.
        policy: Micro-batching and admission knobs.
        cache: Result cache; ``None`` disables caching entirely.
        device: Simulated device (clock and PCIe figures).
        costs: Cycle cost table.
        entry: Search entry vertex (scalar; shared by all queries).
    """

    def __init__(self, graph: ProximityGraph, points: np.ndarray,
                 params: Optional[SearchParams] = None,
                 policy: Optional[BatchPolicy] = None,
                 cache: Optional[ResultCache] = None,
                 device: DeviceSpec = QUADRO_P5000,
                 costs: CostTable = DEFAULT_COSTS,
                 entry: int = 0):
        self.graph = graph
        self.points = np.asarray(points)
        if self.points.ndim != 2:
            raise ServeError(
                f"points must be a 2-D matrix, got shape "
                f"{self.points.shape}"
            )
        self.params = params if params is not None else SearchParams()
        self.policy = policy if policy is not None else BatchPolicy()
        self.cache = cache
        self.device = device
        self.costs = costs
        self.entry = int(entry)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def replay(self, trace: Sequence[QueryRequest]) -> ServeReport:
        """Replay an arrival-ordered trace to quiescence.

        Args:
            trace: Requests with non-decreasing ``arrival_seconds``.

        Returns:
            A :class:`ServeReport` holding every request's outcome.

        Raises:
            ServeError: On an out-of-order trace or a query whose
                dimensionality does not match the served points.
        """
        trace = list(trace)
        signature = self.params.signature()
        scheduler = MicroBatchScheduler(self.policy)
        clock = _EngineClock()
        outcomes: List[Optional[RequestOutcome]] = [None] * len(trace)
        positions = {}
        for pos, req in enumerate(trace):
            if id(req) in positions:
                raise ServeError(
                    f"trace contains the same request object twice "
                    f"(request_id {req.request_id}); construct a fresh "
                    f"QueryRequest per arrival"
                )
            positions[id(req)] = pos
        batch_sizes: List[int] = []
        batch_triggers: List[str] = []
        in_flight: List[tuple] = []  # (completion_seconds, n_queries)
        gpu_busy = 0.0

        def dispatch(batch: Batch) -> None:
            nonlocal gpu_busy
            queries = np.concatenate(
                [req.queries for req in batch.requests], axis=0)
            stream = stream_batches(
                self.graph, self.points, queries, self.params,
                batch_size=len(queries), device=self.device,
                costs=self.costs, entry=self.entry)
            timing = stream.batches[0]
            start, completion = clock.schedule(
                batch.flush_seconds, timing.upload_seconds,
                timing.compute_seconds, timing.download_seconds)
            gpu_busy += timing.compute_seconds
            in_flight.append((completion, batch.n_queries))
            batch_sizes.append(batch.n_queries)
            batch_triggers.append(batch.trigger)

            offset = 0
            for req in batch.requests:
                ids = stream.ids[offset:offset + req.n_queries]
                dists = stream.dists[offset:offset + req.n_queries]
                offset += req.n_queries
                outcomes[positions[id(req)]] = RequestOutcome(
                    request_id=req.request_id,
                    status=RequestStatus.SERVED,
                    ids=ids.copy(), dists=dists.copy(),
                    arrival_seconds=req.arrival_seconds,
                    completion_seconds=completion,
                    queue_seconds=start - req.arrival_seconds,
                    compute_seconds=completion - start,
                    batch_index=batch.index,
                )
                if self.cache is not None:
                    for row in range(req.n_queries):
                        self.cache.put(req.queries[row], signature,
                                       ids[row], dists[row])

        last_arrival = float("-inf")
        for pos, req in enumerate(trace):
            if req.arrival_seconds < last_arrival:
                raise ServeError(
                    f"trace is not arrival-ordered: request "
                    f"{req.request_id} at {req.arrival_seconds} after "
                    f"{last_arrival}"
                )
            last_arrival = req.arrival_seconds
            if req.queries.shape[1] != self.points.shape[1]:
                raise ServeError(
                    f"request {req.request_id}: query dimensionality "
                    f"{req.queries.shape[1]} does not match the index "
                    f"({self.points.shape[1]})"
                )
            now = req.arrival_seconds
            for batch in scheduler.poll(now):
                dispatch(batch)

            hit = self._cache_lookup(req, signature)
            if hit is not None:
                ids, dists = hit
                outcomes[pos] = RequestOutcome(
                    request_id=req.request_id,
                    status=RequestStatus.CACHE_HIT,
                    ids=ids, dists=dists,
                    arrival_seconds=now, completion_seconds=now,
                )
                continue

            in_flight[:] = [(c, n) for c, n in in_flight if c > now]
            backlog = scheduler.pending_queries \
                + sum(n for _, n in in_flight)
            if backlog + req.n_queries > self.policy.max_queue:
                outcomes[pos] = RequestOutcome(
                    request_id=req.request_id,
                    status=RequestStatus.REJECTED,
                    ids=None, dists=None,
                    arrival_seconds=now, completion_seconds=now,
                )
                continue

            for batch in scheduler.submit(req, now):
                dispatch(batch)

        for batch in scheduler.drain():
            dispatch(batch)

        assert all(outcome is not None for outcome in outcomes)
        first_arrival = trace[0].arrival_seconds if trace else 0.0
        last_completion = max(
            (o.completion_seconds for o in outcomes), default=0.0)
        return ServeReport(
            outcomes=outcomes,
            batch_sizes=batch_sizes,
            batch_triggers=batch_triggers,
            makespan_seconds=max(last_completion - first_arrival, 0.0),
            gpu_busy_seconds=gpu_busy,
            cache_stats=self.cache.stats if self.cache is not None
            else None,
        )

    def _cache_lookup(self, req: QueryRequest, signature: tuple
                      ) -> Optional[tuple]:
        """All-or-nothing cache lookup for one request.

        Every vector of the request must hit for the request to be a
        cache hit (a request's queries are answered together); a partial
        hit falls through to batching and the hit vectors are simply
        recomputed — the per-vector counters in ``cache.stats`` record
        the partial hits.
        """
        if self.cache is None:
            return None
        rows = []
        for row in range(req.n_queries):
            found = self.cache.get(req.queries[row], signature)
            if found is None:
                return None
            rows.append(found)
        ids = np.stack([r[0] for r in rows], axis=0)
        dists = np.stack([r[1] for r in rows], axis=0)
        return ids, dists
