"""Replica routing: round-robin with health masking and failover.

Each shard is served by ``n_replicas`` interchangeable replicas.  The
router spreads load round-robin per shard, but a replica can die at any
simulated instant (a ``worker_loss`` event in the fault plan, promoted
here from the construction path to the *query* path).  Death is not
observed instantly: the router only learns of it after the policy's
heartbeat window, so for a short interval queries are still routed at a
dead replica, bounce, pay the failover penalty, and retry on a sibling
— exactly the detection/retry structure a real serving mesh exhibits,
just on the deterministic simulated clock.

Routing outcome taxonomy:

- **clean** — the picked replica is alive; no penalty.
- **failover** — one or more dead replicas were tried first
  (undetected deaths); each attempt adds ``failover_penalty_seconds``
  and one failover count before a live sibling answers.
- **shard dead** — every replica of the shard is dead; the query for
  this shard is *missing* and the cluster degrades to an explicitly
  flagged partial result (never silently).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ClusterError
from repro.faults.plan import FAULT_WORKER_LOSS, FaultPlan


@dataclass(frozen=True)
class RouterPolicy:
    """Router timing knobs.

    Attributes:
        heartbeat_seconds: How long a replica's death stays *undetected*
            — queries routed at it during this window bounce and pay
            the failover penalty; afterwards the router masks it out.
        failover_penalty_seconds: Added latency per bounced attempt
            (connection timeout + re-dispatch to the sibling).
    """

    heartbeat_seconds: float = 1e-3
    failover_penalty_seconds: float = 2e-4

    def __post_init__(self) -> None:
        if self.heartbeat_seconds < 0:
            raise ClusterError(
                f"heartbeat_seconds must be >= 0, got "
                f"{self.heartbeat_seconds}"
            )
        if self.failover_penalty_seconds < 0:
            raise ClusterError(
                f"failover_penalty_seconds must be >= 0, got "
                f"{self.failover_penalty_seconds}"
            )


@dataclass(frozen=True)
class RouteDecision:
    """Where one shard-query went.

    Attributes:
        replica: Replica index within the shard (``-1`` when the whole
            shard is dead).
        n_failovers: Dead replicas bounced off before this decision.
        penalty_seconds: Total failover penalty accrued.
        shard_dead: True when no replica of the shard is alive.
    """

    replica: int
    n_failovers: int = 0
    penalty_seconds: float = 0.0
    shard_dead: bool = False


class ReplicaRouter:
    """Deterministic per-shard round-robin router over replica health.

    Args:
        n_shards: Shard count.
        n_replicas: Replicas per shard.
        policy: Timing knobs.
        plan: Optional fault plan whose ``worker_loss`` events kill
            shard-replica slots on the query path.  An event's
            ``target`` is a flat slot id ``shard * n_replicas +
            replica``; out-of-range or unset targets are folded onto a
            slot deterministically by event order.
    """

    def __init__(self, n_shards: int, n_replicas: int,
                 policy: Optional[RouterPolicy] = None,
                 plan: Optional[FaultPlan] = None):
        if n_shards <= 0 or n_replicas <= 0:
            raise ClusterError(
                f"n_shards and n_replicas must be positive, got "
                f"{n_shards}, {n_replicas}"
            )
        self.n_shards = int(n_shards)
        self.n_replicas = int(n_replicas)
        self.policy = policy if policy is not None else RouterPolicy()
        self._rr = [0] * self.n_shards
        #: Flat slot id -> simulated death time (first loss wins).
        self.death_at: Dict[int, float] = {}
        self.n_loss_events = 0
        if plan is not None:
            n_slots = self.n_shards * self.n_replicas
            for event in plan.cluster_events():
                if event.kind != FAULT_WORKER_LOSS:
                    continue
                slot = event.target
                if not 0 <= slot < n_slots:
                    slot = self.n_loss_events % n_slots
                self.n_loss_events += 1
                previous = self.death_at.get(slot, math.inf)
                self.death_at[slot] = min(previous, event.at_seconds)

    def _slot(self, shard: int, replica: int) -> int:
        return shard * self.n_replicas + replica

    def death_time(self, shard: int, replica: int) -> float:
        """Simulated death instant of a replica (``inf`` if never)."""
        return self.death_at.get(self._slot(shard, replica), math.inf)

    def is_alive(self, shard: int, replica: int, now: float) -> bool:
        """True while the replica has not died yet."""
        return now < self.death_time(shard, replica)

    def is_masked(self, shard: int, replica: int, now: float) -> bool:
        """True once the heartbeat window has exposed the death."""
        death = self.death_time(shard, replica)
        return death + self.policy.heartbeat_seconds <= now

    def reset(self) -> None:
        """Rewind the round-robin pointers (health state is static)."""
        self._rr = [0] * self.n_shards

    def route(self, shard: int, now: float) -> RouteDecision:
        """Route one shard-query arriving at simulated time ``now``."""
        if not 0 <= shard < self.n_shards:
            raise ClusterError(
                f"shard {shard} out of range [0, {self.n_shards})"
            )
        candidates = [r for r in range(self.n_replicas)
                      if not self.is_masked(shard, r, now)]
        if not candidates:
            return RouteDecision(replica=-1, shard_dead=True)
        start = self._rr[shard] % len(candidates)
        self._rr[shard] += 1
        penalty = 0.0
        failovers = 0
        for offset in range(len(candidates)):
            replica = candidates[(start + offset) % len(candidates)]
            if self.is_alive(shard, replica, now + penalty):
                return RouteDecision(replica=replica,
                                     n_failovers=failovers,
                                     penalty_seconds=penalty)
            # Undetected death: bounce, pay the penalty, try a sibling.
            failovers += 1
            penalty += self.policy.failover_penalty_seconds
        return RouteDecision(replica=-1, n_failovers=failovers,
                             penalty_seconds=penalty, shard_dead=True)

    def sibling(self, shard: int, exclude: Tuple[int, ...],
                now: float) -> Optional[int]:
        """Lowest-index replica alive at ``now`` and not excluded.

        The retry lane uses this after a replica's *dispatch* failed
        (retries exhausted, breaker open, deadline): the failed
        replica is excluded and the query re-executes on a live
        sibling.  Returns ``None`` when no such sibling exists.
        """
        for replica in range(self.n_replicas):
            if replica in exclude:
                continue
            if self.is_alive(shard, replica, now):
                return replica
        return None

    def partition_windows(self, plan: Optional[FaultPlan]
                          ) -> List[Tuple[float, float]]:
        """Sorted ``(start, end)`` network-partition intervals of a plan."""
        if plan is None:
            return []
        from repro.faults.plan import FAULT_NETWORK_PARTITION
        windows = [(e.at_seconds, e.at_seconds + e.magnitude)
                   for e in plan.cluster_events()
                   if e.kind == FAULT_NETWORK_PARTITION]
        return sorted(windows)
