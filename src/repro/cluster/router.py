"""Replica routing: round-robin with health masking and failover.

Each shard is served by ``n_replicas`` interchangeable replicas.  The
router spreads load round-robin per shard, but a replica can die at any
simulated instant (a ``worker_loss`` event in the fault plan, promoted
here from the construction path to the *query* path).  Death is not
observed instantly: the router only learns of it after the policy's
heartbeat window, so for a short interval queries are still routed at a
dead replica, bounce, pay the failover penalty, and retry on a sibling
— exactly the detection/retry structure a real serving mesh exhibits,
just on the deterministic simulated clock.

Health is tracked as **down windows** ``[death, revive)`` per slot.
Without a self-healing layer every window is ``[death, inf)`` — a dead
replica stays dead, which is exactly the pre-heal behavior.  The
:class:`repro.heal.controller.RepairController` closes windows by
installing the simulated instant a rebuilt, digest-verified replica is
re-admitted to routing (:meth:`ReplicaRouter.install_downtime`); from
that instant the slot serves again and a shard that had degraded to
``PARTIAL`` is healthy once more.

Routing outcome taxonomy:

- **clean** — the picked replica is alive; no penalty.
- **failover** — one or more dead replicas were tried first
  (undetected deaths); each attempt adds ``failover_penalty_seconds``
  and one failover count before a live sibling answers.
- **shard dead** — every replica of the shard is dead; the query for
  this shard is *missing* and the cluster degrades to an explicitly
  flagged partial result (never silently).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ClusterError
from repro.faults.plan import FAULT_WORKER_LOSS, FaultPlan


@dataclass(frozen=True)
class RouterPolicy:
    """Router timing knobs.

    Attributes:
        heartbeat_seconds: How long a replica's death stays *undetected*
            — queries routed at it during this window bounce and pay
            the failover penalty; afterwards the router masks it out.
        failover_penalty_seconds: Added latency per bounced attempt
            (connection timeout + re-dispatch to the sibling).
    """

    heartbeat_seconds: float = 1e-3
    failover_penalty_seconds: float = 2e-4

    def __post_init__(self) -> None:
        if self.heartbeat_seconds < 0:
            raise ClusterError(
                f"heartbeat_seconds must be >= 0, got "
                f"{self.heartbeat_seconds}"
            )
        if self.failover_penalty_seconds < 0:
            raise ClusterError(
                f"failover_penalty_seconds must be >= 0, got "
                f"{self.failover_penalty_seconds}"
            )


@dataclass(frozen=True)
class RouteDecision:
    """Where one shard-query went.

    Attributes:
        replica: Replica index within the shard (``-1`` when the whole
            shard is dead).
        n_failovers: Dead replicas bounced off before this decision.
        penalty_seconds: Total failover penalty accrued.
        shard_dead: True when no replica of the shard is alive.
    """

    replica: int
    n_failovers: int = 0
    penalty_seconds: float = 0.0
    shard_dead: bool = False


class ReplicaRouter:
    """Deterministic per-shard round-robin router over replica health.

    Args:
        n_shards: Shard count.
        n_replicas: Replicas per shard.
        policy: Timing knobs.
        plan: Optional fault plan whose ``worker_loss`` events kill
            shard-replica slots on the query path.  An event's
            ``target`` is a flat slot id ``shard * n_replicas +
            replica``; out-of-range or unset targets are folded onto a
            slot deterministically by event order.
    """

    def __init__(self, n_shards: int, n_replicas: int,
                 policy: Optional[RouterPolicy] = None,
                 plan: Optional[FaultPlan] = None):
        if n_shards <= 0 or n_replicas <= 0:
            raise ClusterError(
                f"n_shards and n_replicas must be positive, got "
                f"{n_shards}, {n_replicas}"
            )
        self.n_shards = int(n_shards)
        self.n_replicas = int(n_replicas)
        self.policy = policy if policy is not None else RouterPolicy()
        self._rr = [0] * self.n_shards
        #: Flat slot id -> simulated death time (first loss wins).
        self.death_at: Dict[int, float] = {}
        #: ``(at_seconds, slot)`` of every loss event after target
        #: folding, in plan event order — the repair controller replays
        #: this schedule so both layers agree on which slot each event
        #: killed.
        self.loss_schedule: List[Tuple[float, int]] = []
        self.n_loss_events = 0
        if plan is not None:
            n_slots = self.n_shards * self.n_replicas
            for event in plan.cluster_events():
                if event.kind != FAULT_WORKER_LOSS:
                    continue
                slot = event.target
                if not 0 <= slot < n_slots:
                    slot = self.n_loss_events % n_slots
                self.n_loss_events += 1
                self.loss_schedule.append((event.at_seconds, slot))
                previous = self.death_at.get(slot, math.inf)
                self.death_at[slot] = min(previous, event.at_seconds)
        #: Flat slot id -> sorted, disjoint ``[death, revive)`` down
        #: windows.  Defaults to one unbounded window per death — dead
        #: forever — which reproduces the pre-heal router exactly; the
        #: repair controller replaces these with bounded windows.
        self.down_windows: Dict[int, List[Tuple[float, float]]] = {
            slot: [(death, math.inf)]
            for slot, death in self.death_at.items()}

    def _slot(self, shard: int, replica: int) -> int:
        return shard * self.n_replicas + replica

    def install_downtime(self, slot: int,
                         windows: Sequence[Tuple[float, float]]) -> None:
        """Replace one slot's down windows with healed intervals.

        Args:
            slot: Flat slot id ``shard * n_replicas + replica``.
            windows: ``(death, revive)`` pairs, ascending and disjoint;
                ``revive`` may be ``inf`` for a repair that never
                completed.  The replica serves outside every window.

        Raises:
            ClusterError: On an out-of-range slot or malformed windows.
        """
        if not 0 <= slot < self.n_shards * self.n_replicas:
            raise ClusterError(
                f"slot {slot} out of range "
                f"[0, {self.n_shards * self.n_replicas})"
            )
        cleaned: List[Tuple[float, float]] = []
        last_end = -math.inf
        for death, revive in windows:
            if not revive > death:
                raise ClusterError(
                    f"down window must satisfy revive > death, got "
                    f"[{death}, {revive})"
                )
            if death < last_end:
                raise ClusterError(
                    f"down windows must be ascending and disjoint, got "
                    f"{list(windows)}"
                )
            cleaned.append((float(death), float(revive)))
            last_end = revive
        if cleaned:
            self.down_windows[slot] = cleaned
        else:
            self.down_windows.pop(slot, None)

    def _window_at(self, slot: int,
                   now: float) -> Optional[Tuple[float, float]]:
        for death, revive in self.down_windows.get(slot, ()):
            if death <= now < revive:
                return (death, revive)
        return None

    def death_time(self, shard: int, replica: int) -> float:
        """Simulated instant of the replica's *first* death (``inf``
        if it never dies)."""
        windows = self.down_windows.get(self._slot(shard, replica))
        return windows[0][0] if windows else math.inf

    def revive_time(self, shard: int, replica: int) -> float:
        """Re-admission instant of the replica's last down window
        (``inf`` while it is dead forever, also ``inf`` if it never
        died)."""
        windows = self.down_windows.get(self._slot(shard, replica))
        return windows[-1][1] if windows else math.inf

    def is_alive(self, shard: int, replica: int, now: float) -> bool:
        """True while the replica is not inside a down window."""
        return self._window_at(self._slot(shard, replica), now) is None

    def is_masked(self, shard: int, replica: int, now: float) -> bool:
        """True once the heartbeat window has exposed a death that has
        not yet been healed."""
        window = self._window_at(self._slot(shard, replica), now)
        if window is None:
            return False
        death, _ = window
        return death + self.policy.heartbeat_seconds <= now

    def reset(self) -> None:
        """Rewind the round-robin pointers (health state is static)."""
        self._rr = [0] * self.n_shards

    def route(self, shard: int, now: float) -> RouteDecision:
        """Route one shard-query arriving at simulated time ``now``."""
        if not 0 <= shard < self.n_shards:
            raise ClusterError(
                f"shard {shard} out of range [0, {self.n_shards})"
            )
        candidates = [r for r in range(self.n_replicas)
                      if not self.is_masked(shard, r, now)]
        if not candidates:
            return RouteDecision(replica=-1, shard_dead=True)
        start = self._rr[shard] % len(candidates)
        self._rr[shard] += 1
        penalty = 0.0
        failovers = 0
        for offset in range(len(candidates)):
            replica = candidates[(start + offset) % len(candidates)]
            if self.is_alive(shard, replica, now + penalty):
                return RouteDecision(replica=replica,
                                     n_failovers=failovers,
                                     penalty_seconds=penalty)
            # Undetected death: bounce, pay the penalty, try a sibling.
            failovers += 1
            penalty += self.policy.failover_penalty_seconds
        return RouteDecision(replica=-1, n_failovers=failovers,
                             penalty_seconds=penalty, shard_dead=True)

    def sibling(self, shard: int, exclude: Tuple[int, ...],
                now: float) -> Optional[int]:
        """Lowest-index replica alive at ``now`` and not excluded.

        The retry lane uses this after a replica's *dispatch* failed
        (retries exhausted, breaker open, deadline): the failed
        replica is excluded and the query re-executes on a live
        sibling.  Returns ``None`` when no such sibling exists.
        """
        for replica in range(self.n_replicas):
            if replica in exclude:
                continue
            if self.is_alive(shard, replica, now):
                return replica
        return None

    def partition_windows(self, plan: Optional[FaultPlan]
                          ) -> List[Tuple[float, float]]:
        """Sorted ``(start, end)`` network-partition intervals of a plan."""
        if plan is None:
            return []
        from repro.faults.plan import FAULT_NETWORK_PARTITION
        windows = [(e.at_seconds, e.at_seconds + e.magnitude)
                   for e in plan.cluster_events()
                   if e.kind == FAULT_NETWORK_PARTITION]
        return sorted(windows)
