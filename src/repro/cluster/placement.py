"""Deterministic shard placement: a consistent-hash ring over point ids.

The cluster splits the corpus into ``n_shards`` disjoint index shards.
Placement must be (a) *deterministic* — the same corpus always lands in
the same shards, across processes and Python versions, so cluster
replays stay byte-identical — and (b) *stable* — growing the ring moves
only ``~1/n_shards`` of the keys, the classic consistent-hashing
property a production deployment would rely on when resharding.

Python's built-in ``hash`` is salted per process, so the ring hashes
with BLAKE2b instead: :func:`hash64` is a pure function of its input
bytes everywhere.  Each shard owns ``n_vnodes`` virtual nodes on a
64-bit ring; a key belongs to the first virtual node clockwise from its
own hash.

:class:`ShardMap` materializes the assignment: per-shard member arrays
(ascending *global* point ids) that double as the local→global id
translation the scatter-gather merge needs.
"""

from __future__ import annotations

import hashlib
from typing import List, Tuple

import numpy as np

from repro.errors import ClusterError


def hash64(data: bytes) -> int:
    """Deterministic 64-bit hash (BLAKE2b; stable across processes)."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big")


class ConsistentHashRing:
    """A 64-bit consistent-hash ring with virtual nodes.

    Args:
        n_shards: Number of shards owning positions on the ring.
        n_vnodes: Virtual nodes per shard; more vnodes flatten the
            shard-size distribution at O(n_shards * n_vnodes) ring size.
        salt: Namespace mixed into every hash, so two rings over the
            same ids can be made independent.
    """

    def __init__(self, n_shards: int, n_vnodes: int = 64, salt: int = 0):
        if n_shards <= 0:
            raise ClusterError(
                f"n_shards must be positive, got {n_shards}"
            )
        if n_vnodes <= 0:
            raise ClusterError(
                f"n_vnodes must be positive, got {n_vnodes}"
            )
        self.n_shards = int(n_shards)
        self.n_vnodes = int(n_vnodes)
        self.salt = int(salt)
        entries: List[Tuple[int, int]] = []
        for shard in range(self.n_shards):
            for vnode in range(self.n_vnodes):
                position = hash64(
                    f"{self.salt}:vnode:{shard}:{vnode}".encode("ascii"))
                entries.append((position, shard))
        # Sort by (position, shard): position collisions (astronomically
        # unlikely at 64 bits) still resolve deterministically.
        entries.sort()
        self._positions = np.array([p for p, _ in entries],
                                   dtype=np.uint64)
        self._owners = np.array([s for _, s in entries], dtype=np.int64)

    def shard_of(self, key: int) -> int:
        """Owning shard of one integer key."""
        h = np.uint64(hash64(f"{self.salt}:key:{int(key)}"
                             .encode("ascii")))
        index = int(np.searchsorted(self._positions, h, side="left"))
        return int(self._owners[index % len(self._owners)])

    def assign(self, n_keys: int) -> np.ndarray:
        """Shard of every key in ``range(n_keys)`` as an ``(n,)`` array."""
        if n_keys < 0:
            raise ClusterError(f"n_keys must be >= 0, got {n_keys}")
        return np.array([self.shard_of(key) for key in range(n_keys)],
                        dtype=np.int64)


class ShardMap:
    """Materialized point→shard assignment over a corpus.

    Attributes:
        assignment: ``(n,)`` shard index per global point id.
        members: Per shard, the ascending array of global point ids it
            holds — index ``local`` of shard ``s`` is global point
            ``members[s][local]``, which is exactly the translation the
            scatter-gather merge applies to per-shard results.
        n_shards: Number of shards.
    """

    def __init__(self, assignment: np.ndarray, n_shards: int):
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.ndim != 1:
            raise ClusterError(
                f"assignment must be 1-D, got shape {assignment.shape}"
            )
        if n_shards <= 0:
            raise ClusterError(
                f"n_shards must be positive, got {n_shards}"
            )
        if len(assignment) and (assignment.min() < 0
                                or assignment.max() >= n_shards):
            raise ClusterError(
                f"assignment references shards outside [0, {n_shards})"
            )
        self.assignment = assignment
        self.n_shards = int(n_shards)
        self.members: Tuple[np.ndarray, ...] = tuple(
            np.flatnonzero(assignment == shard).astype(np.int64)
            for shard in range(self.n_shards))
        empty = [s for s, m in enumerate(self.members) if len(m) == 0]
        if empty:
            raise ClusterError(
                f"shard(s) {empty} received no points; use fewer shards "
                f"or more vnodes for {len(assignment)} points"
            )

    @classmethod
    def from_ring(cls, n_points: int,
                  ring: ConsistentHashRing) -> "ShardMap":
        """Assign ``range(n_points)`` through a consistent-hash ring."""
        return cls(ring.assign(n_points), ring.n_shards)

    def shard_sizes(self) -> Tuple[int, ...]:
        """Points held by each shard."""
        return tuple(len(m) for m in self.members)

    def to_global(self, shard: int, local_ids: np.ndarray) -> np.ndarray:
        """Translate one shard's local result ids to global ids.

        Negative ids are padding (a shard holding fewer than ``k``
        points) and pass through unchanged — the merge keeps treating
        them as padding.
        """
        local_ids = np.asarray(local_ids, dtype=np.int64)
        out = np.full(local_ids.shape, -1, dtype=np.int64)
        valid = local_ids >= 0
        out[valid] = self.members[shard][local_ids[valid]]
        return out
