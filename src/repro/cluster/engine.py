"""The sharded serving cluster: N index shards x M replicas, one clock.

This module promotes :mod:`repro.extensions.distributed` from a
construction-time helper to a *query-path* topology — the ROADMAP's
"serving heavy traffic" step and the shard/replica decomposition GGNN
demonstrates for multi-GPU graph ANN:

1. **Placement** — a consistent-hash ring assigns every corpus point to
   one of ``n_shards`` disjoint shards; each shard gets its own NSW
   graph (:mod:`repro.cluster.placement`).
2. **Replication** — each shard runs ``n_replicas`` interchangeable
   :class:`~repro.serve.engine.ServeEngine` instances over identical
   shard data, all on the shared simulated clock.
3. **Routing** — per shard, a round-robin router with health masking
   picks the serving replica; an undetected replica death bounces the
   query to a sibling at a failover penalty
   (:mod:`repro.cluster.router`).
4. **Scatter-gather** — every request fans out to all shards (queries
   are broadcast, charged to the
   :class:`~repro.extensions.distributed.NetworkModel`), each shard
   answers its local top-k, and the coordinator reduces the runs with
   the exact bitonic-cost merge (:mod:`repro.cluster.merge`), waiting
   on the *slowest* shard — the tail-amplification structure the
   cluster report quantifies.
5. **Failover** — ``worker_loss`` events in the fault plan kill
   shard-replica slots on the query path.  A failed dispatch (retries
   exhausted, breaker open, deadline, overload) re-executes on a live
   sibling through a dedicated retry lane; only when a *whole shard*
   is gone does the cluster degrade — to an explicitly flagged
   ``PARTIAL`` answer, never silently.

Determinism: routing, sub-trace construction, per-replica replays, the
retry lane and the merge are all pure functions of (trace, topology,
fault plan, seeds), so repeated :meth:`ClusterEngine.replay` calls
produce byte-identical :class:`~repro.cluster.report.ClusterReport`
encodings.  The retry lane deliberately dispatches *outside* the
sibling's micro-batch queue (a dedicated spare-capacity path at serial
stream cost): failed work re-executes without perturbing the sibling's
own deterministic schedule.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.params import SearchParams
from repro.core.pipeline import stream_batches
from repro.errors import ClusterError
from repro.extensions.distributed import NetworkModel, _EDGE_BYTES
from repro.faults.plan import FaultPlan
from repro.faults.policy import (
    AdmissionGovernor,
    BreakerPolicy,
    RetryPolicy,
)
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.device import DeviceSpec, QUADRO_P5000
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
)
from repro.observability.span import SpanTracer
from repro.serve.cache import ResultCache
from repro.serve.engine import ServeEngine
from repro.serve.report import ServeReport
from repro.serve.request import QueryRequest
from repro.serve.scheduler import BatchPolicy
from repro.cluster.merge import merge_launch, merge_topk
from repro.cluster.placement import ConsistentHashRing, ShardMap
from repro.cluster.report import (
    ClusterOutcome,
    ClusterReport,
    ClusterStatus,
)
from repro.cluster.router import ReplicaRouter, RouterPolicy
from repro.heal.controller import RepairController, RepairRecord
from repro.heal.policy import HealPolicy
from repro.heal.source import StaticShardSource, StoreShardSource


class _ShardRoute:
    """Bookkeeping of one (request, shard) routing decision."""

    __slots__ = ("replica", "penalty", "failovers", "sub_arrival",
                 "dead")

    def __init__(self, replica: int, penalty: float, failovers: int,
                 sub_arrival: float, dead: bool):
        self.replica = replica
        self.penalty = penalty
        self.failovers = failovers
        self.sub_arrival = sub_arrival
        self.dead = dead


class ClusterEngine:
    """Scatter-gather serving over a sharded, replicated GANNS index.

    Args:
        points: ``(n, d)`` corpus, split across shards by consistent
            hashing of the global point id.
        n_shards: Index shard count.
        n_replicas: Serving replicas per shard.
        params: Search parameters every shard serves with.
        d_min: NSW degree lower bound for the per-shard graph builds.
        d_max: NSW degree upper bound.
        metric: Distance metric name.
        policy: Micro-batching policy of every shard replica.
        cache_capacity: Per-replica result-cache entries (0 disables).
            Caches are rebuilt per replay so repeated replays match.
        device: Simulated device each replica runs on.
        costs: Cycle cost table (also charges the merge).
        faults: Optional :class:`FaultPlan`.  Kernel-scope events are
            delivered inside every replica's dispatch path;
            ``worker_loss`` events kill shard-replica slots on the
            query path; ``network_partition`` events delay scatter
            delivery for their duration.
        retry: Per-replica dispatch retry policy.
        breaker: Per-replica circuit-breaker policy.
        governor: Optional graceful-degradation governor (per replica).
        default_deadline_seconds: Default per-request deadline applied
            by every replica.
        network: Cluster interconnect model for scatter/gather costs.
        router_policy: Heartbeat and failover-penalty knobs.
        n_vnodes: Virtual nodes per shard on the placement ring.
        placement_salt: Namespace for the placement hashes.
        family: Registered index family the per-shard graphs are built
            as (default ``"nsw"``); resolved through
            :func:`repro.core.backend.get_backend`, so unknown names
            raise a typed error and families without a flat serving
            graph raise :class:`~repro.errors.UnsupportedOperationError`
            at construction.
        heal: Optional :class:`repro.heal.policy.HealPolicy`.  When
            armed, a :class:`repro.heal.controller.RepairController`
            rebuilds every dead replica from the owning shard's latest
            snapshot (rate-limited transfer + deserialize + WAL-delta
            catch-up + anti-entropy digest verification) and re-admits
            it to routing — replays publish ``heal.*`` metrics/spans
            and the report carries the repair records.  ``None``
            (default) reproduces the pre-heal cluster byte-for-byte.
        repair_store: Optional :class:`repro.mutable.wal.DurableStore`
            backing the served corpus (pass it alongside
            :meth:`from_snapshot`): rebuilds then charge the store's
            surviving WAL delta as catch-up work through
            :mod:`repro.mutable.recovery`.

    Raises:
        ClusterError: On an invalid topology, an empty shard, or a
            shard holding fewer than ``params.k`` points.
    """

    def __init__(self, points: np.ndarray, n_shards: int,
                 n_replicas: int,
                 params: Optional[SearchParams] = None,
                 d_min: int = 8, d_max: int = 16,
                 metric: str = "euclidean",
                 policy: Optional[BatchPolicy] = None,
                 cache_capacity: int = 0,
                 device: DeviceSpec = QUADRO_P5000,
                 costs: CostTable = DEFAULT_COSTS,
                 faults: Optional[FaultPlan] = None,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[BreakerPolicy] = None,
                 governor: Optional[AdmissionGovernor] = None,
                 default_deadline_seconds: Optional[float] = None,
                 network: Optional[NetworkModel] = None,
                 router_policy: Optional[RouterPolicy] = None,
                 n_vnodes: int = 64, placement_salt: int = 0,
                 family: str = "nsw",
                 heal: Optional[HealPolicy] = None,
                 repair_store=None):
        from repro.core.backend import get_backend
        backend = get_backend(family)  # typed error on unknown names
        points = np.asarray(points)
        if points.ndim != 2 or len(points) == 0:
            raise ClusterError(
                f"points must be a non-empty 2-D matrix, got shape "
                f"{points.shape}"
            )
        if n_replicas <= 0:
            raise ClusterError(
                f"n_replicas must be positive, got {n_replicas}"
            )
        self.points = points
        self.params = params if params is not None else SearchParams()
        self.n_shards = int(n_shards)
        self.n_replicas = int(n_replicas)
        self.ring = ConsistentHashRing(n_shards, n_vnodes=n_vnodes,
                                       salt=placement_salt)
        self.shard_map = ShardMap.from_ring(len(points), self.ring)
        undersized = [s for s, size
                      in enumerate(self.shard_map.shard_sizes())
                      if size < self.params.k]
        if undersized:
            raise ClusterError(
                f"shard(s) {undersized} hold fewer than k="
                f"{self.params.k} points; use fewer shards (sizes: "
                f"{self.shard_map.shard_sizes()})"
            )
        self.policy = policy
        self.cache_capacity = int(cache_capacity)
        self.device = device
        self.costs = costs
        self.faults = faults
        self.retry = retry
        self.breaker = breaker
        self.governor = governor
        self.default_deadline_seconds = default_deadline_seconds
        self.network = network if network is not None else NetworkModel()
        self.router_policy = (router_policy if router_policy is not None
                              else RouterPolicy())
        self.metric = metric
        #: Index family the per-shard graphs are built as (the shard
        #: engines fold it into their cache signatures).
        self.family = family
        self.shard_points: List[np.ndarray] = []
        self.shard_graphs: List[object] = []
        for shard in range(self.n_shards):
            shard_pts = np.ascontiguousarray(
                points[self.shard_map.members[shard]])
            self.shard_points.append(shard_pts)
            self.shard_graphs.append(
                backend.serving_graph(shard_pts, d_min=d_min,
                                      d_max=d_max, metric=metric))
        #: Dense-row -> external-id mapping when the cluster serves a
        #: mutable-index snapshot (``None`` for a plain corpus).
        self.external_ids: Optional[np.ndarray] = None
        #: Epoch of the pinned snapshot, or ``None``.
        self.snapshot_epoch: Optional[int] = None
        self.heal = heal
        self.repair_store = repair_store
        self._repair_sources_cache: Optional[
            List[StaticShardSource]] = None

    @classmethod
    def from_snapshot(cls, handle, n_shards: int, n_replicas: int,
                      **kwargs) -> "ClusterEngine":
        """Shard one pinned epoch of a mutable index across a cluster.

        The handle's *live* points (tombstoned slots excluded) become
        the cluster corpus, re-sharded by consistent hashing of their
        dense row index.  Because the cluster renumbers rows densely,
        the returned engine carries an ``external_ids`` mapping; pass
        merged result ids through :meth:`map_to_external` to translate
        them back to the mutable index's stable slot ids.

        Args:
            handle: A :class:`repro.mutable.snapshot.SnapshotHandle`.
            n_shards: Index shard count.
            n_replicas: Serving replicas per shard.
            **kwargs: Everything the constructor accepts except
                ``points``; ``metric`` defaults to the pinned graph's.
        """
        live = handle.live_ids()
        kwargs.setdefault("metric", handle.graph.metric_name)
        engine = cls(np.ascontiguousarray(handle.points[live]),
                     n_shards, n_replicas, **kwargs)
        engine.external_ids = live
        engine.snapshot_epoch = handle.epoch
        return engine

    def map_to_external(self, ids: np.ndarray) -> np.ndarray:
        """Translate dense result ids to the snapshot's slot ids.

        ``-1`` padding passes through.  Identity for engines built
        directly over a corpus.
        """
        ids = np.asarray(ids)
        if self.external_ids is None:
            return ids
        return np.where(ids >= 0,
                        self.external_ids[np.where(ids < 0, 0, ids)],
                        ids)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def _slot(self, shard: int, replica: int) -> int:
        return shard * self.n_replicas + replica

    def _repair_sources(self) -> List[StaticShardSource]:
        """One snapshot source per shard for the repair controller.

        The shard's own graph + points are the snapshot a rebuilt
        replica receives.  When the cluster serves a durable store's
        epoch, every rebuild additionally replays the store's
        surviving WAL delta — the catch-up charge comes from
        :class:`repro.heal.source.StoreShardSource`, i.e. from a real
        :func:`repro.mutable.recovery.recover` pass over the store.
        Cached: sources are pure functions of the (immutable) shard
        state, so repeated replays agree.
        """
        if self._repair_sources_cache is None:
            catchup = 0.0
            wal_records = 0
            if self.repair_store is not None:
                delta = StoreShardSource(self.repair_store,
                                         device=self.device,
                                         costs=self.costs)
                catchup = delta.catchup_seconds
                wal_records = delta.wal_records
            self._repair_sources_cache = [
                StaticShardSource(self.shard_graphs[shard],
                                  self.shard_points[shard],
                                  catchup_seconds=catchup,
                                  wal_records=wal_records)
                for shard in range(self.n_shards)]
        return self._repair_sources_cache

    def _make_engine(self, shard: int) -> ServeEngine:
        """A fresh serving engine over one shard (fresh cache state)."""
        cache = (ResultCache(capacity=self.cache_capacity)
                 if self.cache_capacity > 0 else None)
        return ServeEngine(
            self.shard_graphs[shard], self.shard_points[shard],
            self.params, policy=self.policy, cache=cache,
            device=self.device, costs=self.costs, faults=self.faults,
            retry=self.retry, breaker=self.breaker,
            governor=self.governor,
            default_deadline_seconds=self.default_deadline_seconds,
            family=self.family)

    def replay(self, trace: Sequence[QueryRequest],
               tracer: Optional[SpanTracer] = None,
               metrics: Optional[MetricsRegistry] = None
               ) -> ClusterReport:
        """Replay an arrival-ordered trace through the whole topology.

        Args:
            trace: Requests with non-decreasing ``arrival_seconds``.
            tracer: Optional :class:`SpanTracer`; the replay records
                cluster-level spans (``cluster.replay`` root, one
                ``cluster.replica`` span per active shard-replica, and
                per-request ``cluster.request`` spans with scatter /
                wait / merge children plus failover events).  Shard
                replicas replay untraced — their internal spans live at
                a different granularity than the cluster clock view.
            metrics: Optional registry to publish ``cluster.*`` metrics
                into; created internally when omitted and attached to
                the returned report for
                :meth:`~repro.cluster.report.ClusterReport
                .verify_against_metrics`.

        Returns:
            A :class:`ClusterReport`; byte-identical across repeated
            calls with the same inputs.

        Raises:
            ClusterError: On an out-of-order trace or a dimensionality
                mismatch.
        """
        wall_start = time.perf_counter()
        trace = list(trace)
        last_arrival = float("-inf")
        for req in trace:
            if req.arrival_seconds < last_arrival:
                raise ClusterError(
                    f"trace is not arrival-ordered: request "
                    f"{req.request_id} at {req.arrival_seconds} after "
                    f"{last_arrival}"
                )
            last_arrival = req.arrival_seconds
            if req.queries.shape[1] != self.points.shape[1]:
                raise ClusterError(
                    f"request {req.request_id}: query dimensionality "
                    f"{req.queries.shape[1]} does not match the corpus "
                    f"({self.points.shape[1]})"
                )
        registry = metrics if metrics is not None else MetricsRegistry()
        router = ReplicaRouter(self.n_shards, self.n_replicas,
                               policy=self.router_policy,
                               plan=self.faults)
        repairs: List[RepairRecord] = []
        if self.heal is not None:
            controller = RepairController(self.heal,
                                          network=self.network,
                                          device=self.device,
                                          costs=self.costs)
            repairs = controller.plan_repairs(
                router, self._repair_sources(), plan=self.faults)
        partitions = router.partition_windows(self.faults)
        dims = self.points.shape[1]
        k = self.params.k

        def partition_delay(t: float) -> float:
            # Windows are sorted by start; a delivery pushed to one
            # window's end may land inside a later window.
            for start, end in partitions:
                if start <= t < end:
                    t = end
            return t

        # ---- Routing pass ------------------------------------------
        scatter_cost: List[float] = []
        routes: List[Optional[List[_ShardRoute]]] = []
        slot_subtrace: Dict[int, List[Tuple[float, int]]] = {}
        for pos, req in enumerate(trace):
            scatter = self.network.broadcast_seconds(
                req.n_queries * dims * 4, self.n_shards)
            scatter_cost.append(scatter)
            deadline = (req.deadline_seconds
                        if req.deadline_seconds is not None
                        else self.default_deadline_seconds)
            if deadline is not None and deadline <= scatter:
                # The deadline expires within one scatter round-trip:
                # fanning out would burn every shard on an answer that
                # is already guaranteed late.  Fail fast before
                # scatter (no shard ever sees the request).
                routes.append(None)
                continue
            per_shard: List[_ShardRoute] = []
            for shard in range(self.n_shards):
                decision = router.route(shard, req.arrival_seconds)
                if decision.shard_dead:
                    per_shard.append(_ShardRoute(
                        replica=-1,
                        penalty=decision.penalty_seconds,
                        failovers=decision.n_failovers,
                        sub_arrival=req.arrival_seconds
                        + decision.penalty_seconds,
                        dead=True))
                    continue
                sub_arrival = partition_delay(
                    req.arrival_seconds + scatter
                    + decision.penalty_seconds)
                per_shard.append(_ShardRoute(
                    replica=decision.replica,
                    penalty=decision.penalty_seconds,
                    failovers=decision.n_failovers,
                    sub_arrival=sub_arrival, dead=False))
                slot = self._slot(shard, decision.replica)
                slot_subtrace.setdefault(slot, []).append(
                    (sub_arrival, pos))
            routes.append(per_shard)

        # ---- Per-replica replays -----------------------------------
        slot_outcomes: Dict[int, Dict[int, object]] = {}
        slot_spans: Dict[int, Tuple[float, float, int, int]] = {}
        slot_reports: Dict[int, ServeReport] = {}
        for slot in sorted(slot_subtrace):
            entries = sorted(slot_subtrace[slot])
            shard = slot // self.n_replicas
            sub_trace = [
                QueryRequest(
                    request_id=pos,
                    queries=trace[pos].queries,
                    arrival_seconds=sub_arrival,
                    deadline_seconds=trace[pos].deadline_seconds)
                for sub_arrival, pos in entries]
            engine = self._make_engine(shard)
            sub_report = engine.replay(sub_trace)
            slot_reports[slot] = sub_report
            slot_outcomes[slot] = {
                o.request_id: o for o in sub_report.outcomes}
            first = entries[0][0]
            last = max((o.completion_seconds
                        for o in sub_report.outcomes), default=first)
            slot_spans[slot] = (first, max(last, first),
                                len(entries), sub_report.n_served)

        # ---- Assembly: retries, gather, merge ----------------------
        outcomes: List[ClusterOutcome] = []
        shard_lat: List[List[float]] = [[] for _ in
                                        range(self.n_shards)]
        request_events: List[List[Tuple[str, float, Dict]]] = []
        request_base: List[float] = []
        for pos, req in enumerate(trace):
            arrival = req.arrival_seconds
            scatter = scatter_cost[pos]
            if routes[pos] is None:
                deadline = (req.deadline_seconds
                            if req.deadline_seconds is not None
                            else self.default_deadline_seconds)
                request_base.append(arrival)
                request_events.append([])
                outcomes.append(ClusterOutcome(
                    request_id=req.request_id,
                    status=ClusterStatus.DEADLINE,
                    ids=None, dists=None,
                    arrival_seconds=arrival,
                    completion_seconds=arrival,
                    scatter_seconds=0.0,
                    detail=(f"DeadlineExceededError: deadline "
                            f"{deadline!r}s within one scatter "
                            f"round-trip ({scatter!r}s)")))
                continue
            events: List[Tuple[str, float, Dict]] = []
            answered_ids: List[np.ndarray] = []
            answered_dists: List[np.ndarray] = []
            answered_shards: List[int] = []
            missing: List[int] = []
            resolutions: List[float] = [arrival + scatter]
            failovers = 0
            tier = 0
            for shard in range(self.n_shards):
                route = routes[pos][shard]
                failovers += route.failovers
                if route.dead:
                    missing.append(shard)
                    resolutions.append(route.sub_arrival)
                    events.append(("cluster.shard_dead", arrival,
                                   {"shard": shard}))
                    continue
                if route.failovers:
                    events.append(("cluster.failover", arrival,
                                   {"shard": shard,
                                    "n_bounces": route.failovers,
                                    "stage": "route"}))
                outcome = slot_outcomes[
                    self._slot(shard, route.replica)][pos]
                if outcome.served:
                    completion = outcome.completion_seconds
                    answered_ids.append(self.shard_map.to_global(
                        shard, outcome.ids))
                    answered_dists.append(outcome.dists)
                    answered_shards.append(shard)
                    resolutions.append(completion)
                    shard_lat[shard].append(completion - arrival)
                    tier = max(tier, outcome.degraded_tier)
                    continue
                # Dispatch failed on the routed replica: retry lane on
                # a live sibling at serial stream cost.
                retry_at = (outcome.completion_seconds
                            + self.router_policy
                            .failover_penalty_seconds)
                sibling = router.sibling(shard, (route.replica,),
                                         retry_at)
                if sibling is None:
                    missing.append(shard)
                    resolutions.append(retry_at)
                    events.append(("cluster.shard_dead", retry_at,
                                   {"shard": shard,
                                    "stage": "retry"}))
                    continue
                failovers += 1
                events.append(("cluster.failover", retry_at,
                               {"shard": shard, "replica": sibling,
                                "stage": "retry"}))
                stream = stream_batches(
                    self.shard_graphs[shard],
                    self.shard_points[shard], req.queries,
                    self.params, batch_size=req.n_queries,
                    device=self.device, costs=self.costs)
                completion = retry_at + stream.serial_seconds
                answered_ids.append(self.shard_map.to_global(
                    shard, stream.ids))
                answered_dists.append(stream.dists)
                answered_shards.append(shard)
                resolutions.append(completion)
                shard_lat[shard].append(completion - arrival)
            base = max(resolutions)
            request_base.append(base)
            if answered_shards:
                gather = self.network.gather_seconds(
                    len(answered_shards) * req.n_queries * k
                    * _EDGE_BYTES, len(answered_shards))
                cycles, merge_seconds = merge_launch(
                    req.n_queries, len(answered_shards), k,
                    n_threads=self.params.n_threads,
                    device=self.device, costs=self.costs)
                ids, dists = merge_topk(k, answered_ids,
                                        answered_dists)
                completion = base + gather + merge_seconds
                status = (ClusterStatus.SERVED if not missing
                          else ClusterStatus.PARTIAL)
                detail = ("" if not missing else
                          f"shards {missing} missing")
                outcomes.append(ClusterOutcome(
                    request_id=req.request_id, status=status,
                    ids=ids, dists=dists, arrival_seconds=arrival,
                    completion_seconds=completion,
                    scatter_seconds=scatter, gather_seconds=gather,
                    merge_seconds=merge_seconds, merge_cycles=cycles,
                    n_shards_answered=len(answered_shards),
                    missing_shards=tuple(missing),
                    n_failovers=failovers, degraded_tier=tier,
                    detail=detail))
            else:
                outcomes.append(ClusterOutcome(
                    request_id=req.request_id,
                    status=ClusterStatus.FAILED, ids=None, dists=None,
                    arrival_seconds=arrival, completion_seconds=base,
                    scatter_seconds=scatter,
                    missing_shards=tuple(missing),
                    n_failovers=failovers,
                    detail="no shard answered"))
            request_events.append(events)

        # ---- Metrics (publication order = arrival order) -----------
        latency_hist = registry.histogram("cluster.latency_seconds",
                                          DEFAULT_LATENCY_BUCKETS)
        registry.counter("cluster.replica_deaths").inc(
            router.n_loss_events)
        for outcome in outcomes:
            registry.counter("cluster.requests").inc()
            registry.counter(
                f"cluster.outcomes.{outcome.status.value}").inc()
            if outcome.status is ClusterStatus.DEADLINE:
                # Failed fast before fan-out: no shard saw the request.
                registry.counter("cluster.deadline_failfast").inc()
            else:
                registry.counter("cluster.shard_queries").inc(
                    self.n_shards)
            registry.counter("cluster.shards_answered").inc(
                outcome.n_shards_answered)
            registry.counter("cluster.failovers").inc(
                outcome.n_failovers)
            registry.counter("cluster.shard_misses").inc(
                len(outcome.missing_shards))
            registry.counter("cluster.merge_seconds").inc(
                outcome.merge_seconds)
            registry.counter("cluster.merge_cycles").inc(
                outcome.merge_cycles)
            registry.counter("cluster.gather_seconds").inc(
                outcome.gather_seconds)
            registry.counter("cluster.scatter_seconds").inc(
                outcome.scatter_seconds)
            if outcome.answered:
                registry.counter("cluster.queries_answered").inc(
                    outcome.n_queries)
                latency_hist.observe(outcome.latency_seconds)
        if self.heal is not None:
            mttr_hist = registry.histogram("heal.mttr_seconds",
                                           DEFAULT_LATENCY_BUCKETS)
            for r in repairs:
                registry.counter("heal.deaths_detected").inc()
                registry.counter("heal.rebuild_attempts").inc(
                    r.n_attempts)
                registry.counter("heal.quarantines").inc(
                    r.n_quarantined)
                registry.counter("heal.bytes_transferred").inc(
                    r.bytes_transferred)
                registry.counter("heal.wal_records_replayed").inc(
                    r.wal_records_replayed)
                registry.counter("heal.transfer_seconds").inc(
                    r.transfer_seconds)
                registry.counter("heal.catchup_seconds").inc(
                    r.catchup_seconds)
                registry.counter("heal.verify_seconds").inc(
                    r.verify_seconds)
                registry.counter("heal.deserialize_seconds").inc(
                    sum(a.deserialize_seconds for a in r.attempts))
                if r.healed:
                    registry.counter("heal.repairs_completed").inc()
                    mttr_hist.observe(r.mttr_seconds)
                else:
                    registry.counter("heal.repairs_abandoned").inc()
            registry.gauge("heal.unhealed_replicas").set(
                sum(1 for r in repairs if not r.healed))
        first_arrival = trace[0].arrival_seconds if trace else 0.0
        last_completion = max(
            (o.completion_seconds for o in outcomes), default=0.0)
        makespan = (max(last_completion - first_arrival, 0.0)
                    if trace else 0.0)
        registry.gauge("cluster.makespan_seconds").set(makespan)

        # ---- Spans (deterministic retroactive emission) ------------
        if tracer is not None:
            root_start = first_arrival if trace else 0.0
            root_end = root_start
            for first, last, _, _ in slot_spans.values():
                root_end = max(root_end, last)
            root_end = max(root_end, last_completion, last_arrival
                           if trace else root_start)
            for r in repairs:
                root_start = min(root_start, r.death_seconds)
                root_end = max(root_end,
                               r.attempts[-1].end_seconds)
            root_attrs = {"n_requests": len(trace),
                          "n_shards": self.n_shards,
                          "n_replicas": self.n_replicas}
            # Quant attrs only when the shards actually ran the staged
            # pipeline — exact cluster traces (incl. the committed
            # golden) stay quant-silent.  The per-shard ServeEngines
            # share self.params, so their caches are already namespaced
            # by the same resolved mode.
            from repro.perf.quant import resolve_quant
            cluster_quant = resolve_quant(self.params.quant)
            if cluster_quant is not None:
                root_attrs["quant.mode"] = cluster_quant
                root_attrs["quant.rerank"] = self.params.rerank_factor
            root = tracer.begin(
                "cluster.replay", root_start, lane="cluster",
                attributes=root_attrs)
            for slot in sorted(slot_spans):
                first, last, n_requests, n_served = slot_spans[slot]
                shard = slot // self.n_replicas
                replica = slot % self.n_replicas
                tracer.add(
                    "cluster.replica", first, last, parent_id=root,
                    lane=f"cluster/s{shard}r{replica}",
                    attributes={"shard": shard, "replica": replica,
                                "n_requests": n_requests,
                                "n_served": n_served})
            for r in repairs:
                span = tracer.begin(
                    "heal.repair", r.death_seconds, parent_id=root,
                    lane_group="heal.repairs",
                    attributes={"shard": r.shard,
                                "replica": r.replica,
                                "snapshot_bytes": r.snapshot_bytes,
                                "wal_records": r.wal_records})
                tracer.event(span, r.detect_seconds, "heal.detected")
                for index, attempt in enumerate(r.attempts):
                    t = attempt.start_seconds
                    tracer.add("heal.transfer", t,
                               t + attempt.transfer_seconds,
                               parent_id=span)
                    t += attempt.transfer_seconds
                    tracer.add("heal.deserialize", t,
                               t + attempt.deserialize_seconds,
                               parent_id=span)
                    t += attempt.deserialize_seconds
                    if attempt.catchup_seconds > 0:
                        tracer.add("heal.catchup", t,
                                   t + attempt.catchup_seconds,
                                   parent_id=span)
                    t += attempt.catchup_seconds
                    tracer.add("heal.verify", t,
                               t + attempt.verify_seconds,
                               parent_id=span)
                    if not attempt.digest_matched:
                        tracer.event(span, attempt.end_seconds,
                                     "heal.quarantine",
                                     {"attempt": index})
                tracer.end(span, r.attempts[-1].end_seconds,
                           attributes={
                               "status": r.status,
                               "n_attempts": r.n_attempts,
                               "mttr_seconds": (r.mttr_seconds
                                                if r.healed
                                                else -1.0)})
            for pos, outcome in enumerate(outcomes):
                arrival = outcome.arrival_seconds
                span = tracer.begin(
                    "cluster.request", arrival, parent_id=root,
                    lane_group="cluster.requests",
                    attributes={
                        "request_id": outcome.request_id,
                        "n_queries": trace[pos].n_queries})
                if outcome.status is not ClusterStatus.DEADLINE:
                    scatter_end = arrival + outcome.scatter_seconds
                    tracer.add("cluster.scatter", arrival,
                               scatter_end, parent_id=span)
                    tracer.add("cluster.wait", scatter_end,
                               request_base[pos], parent_id=span)
                if outcome.answered:
                    tracer.add("cluster.merge", request_base[pos],
                               outcome.completion_seconds,
                               parent_id=span,
                               attributes={
                                   "merge_cycles":
                                       outcome.merge_cycles,
                                   "n_runs":
                                       outcome.n_shards_answered})
                for name, seconds, attrs in request_events[pos]:
                    tracer.event(span, seconds, name, attrs)
                tracer.end(span, outcome.completion_seconds,
                           attributes={
                               "status": outcome.status.value,
                               "n_shards_answered":
                                   outcome.n_shards_answered,
                               "n_failovers": outcome.n_failovers})
            tracer.end(root, root_end)

        wallclock = time.perf_counter() - wall_start
        registry.gauge("perf.wallclock_seconds").set(wallclock)
        return ClusterReport(
            outcomes=outcomes,
            n_shards=self.n_shards,
            n_replicas=self.n_replicas,
            shard_sizes=self.shard_map.shard_sizes(),
            shard_latencies=[np.array(lat, dtype=np.float64)
                             for lat in shard_lat],
            makespan_seconds=makespan,
            n_replica_deaths=router.n_loss_events,
            metrics=registry,
            wallclock_seconds=wallclock,
            heal_enabled=self.heal is not None,
            repairs=tuple(repairs),
            mttr_bound_seconds=(self.heal.mttr_bound_seconds
                                if self.heal is not None else 0.0),
        )
