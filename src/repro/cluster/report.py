"""Cluster-replay summary: per-shard tails, merge overhead, failovers.

A :class:`ClusterReport` is to :class:`repro.cluster.engine.ClusterEngine`
what :class:`repro.serve.report.ServeReport` is to one serving engine:
the single object the CLI and the smoke scripts print, a *view* over
the metrics registry the replay published into (zero drift enforced by
:meth:`ClusterReport.verify_against_metrics`), and a canonical byte
encoding (:meth:`ClusterReport.to_bytes`) that two replays of the same
trace under the same fault plan must reproduce exactly.

The cluster-specific headline is **tail amplification**: a
scatter-gather answer waits for the *maximum* of its shard latencies,
so the cluster's p99 sits above any individual shard's p99 — the ratio
against the slowest shard quantifies how much of the cluster tail is
synchronization rather than any one shard being slow.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ObservabilityError
from repro.serve.report import _percentile


class ClusterStatus(enum.Enum):
    """Terminal state of one request at the cluster level."""

    #: Every shard answered; the merged result is exact over the corpus.
    SERVED = "served"
    #: At least one whole shard was dead — the merged result covers only
    #: the answering shards and is *explicitly flagged* as partial.
    PARTIAL = "partial"
    #: No shard answered.
    FAILED = "failed"
    #: The request arrived within one scatter round-trip of its
    #: deadline and was failed fast *before* fan-out — no shard ever
    #: saw it (:class:`repro.errors.DeadlineExceededError`).
    DEADLINE = "deadline"


@dataclass(frozen=True, eq=False)
class ClusterOutcome:
    """What the cluster did with one request.

    Attributes:
        request_id: The request's identifier.
        status: Served complete, flagged partial, or failed.
        ids: ``(m, k)`` merged *global* neighbor ids (``None`` when
            failed); padded with ``-1``.
        dists: Matching distances (``inf`` padding).
        arrival_seconds: Request arrival.
        completion_seconds: When the merged answer was ready — the
            slowest shard path, plus gather communication, plus the
            merge kernel.
        scatter_seconds: Broadcast cost of fanning the query out.
        gather_seconds: Gather cost of collecting shard answers.
        merge_seconds: Simulated time of the top-k merge launch.
        merge_cycles: Cycle charge of the merge launch.
        n_shards_answered: Shards contributing to the merged answer.
        missing_shards: Shards that contributed nothing (dead, or
            dispatch failed with no live sibling), ascending.
        n_failovers: Replica bounces + retry-lane re-executions this
            request survived.
        degraded_tier: Worst per-shard degradation tier merged in.
        detail: Failure reason for ``FAILED`` outcomes.
    """

    request_id: int
    status: ClusterStatus
    ids: Optional[np.ndarray]
    dists: Optional[np.ndarray]
    arrival_seconds: float
    completion_seconds: float
    scatter_seconds: float = 0.0
    gather_seconds: float = 0.0
    merge_seconds: float = 0.0
    merge_cycles: float = 0.0
    n_shards_answered: int = 0
    missing_shards: Tuple[int, ...] = ()
    n_failovers: int = 0
    degraded_tier: int = 0
    detail: str = ""

    @property
    def latency_seconds(self) -> float:
        """End-to-end latency of the merged answer."""
        return self.completion_seconds - self.arrival_seconds

    @property
    def answered(self) -> bool:
        """True when any result was delivered (complete or partial)."""
        return self.status in (ClusterStatus.SERVED,
                               ClusterStatus.PARTIAL)

    @property
    def complete(self) -> bool:
        """True when every shard contributed (exact over the corpus)."""
        return self.status is ClusterStatus.SERVED

    @property
    def n_queries(self) -> int:
        """Query vectors in the merged answer (0 when failed)."""
        return 0 if self.ids is None else int(self.ids.shape[0])


@dataclass
class ClusterReport:
    """Outcome of replaying one trace through the sharded cluster.

    Attributes:
        outcomes: Per-request records, arrival order.
        n_shards: Shard count of the topology.
        n_replicas: Replicas per shard.
        shard_sizes: Points held by each shard.
        shard_latencies: Per shard, the latency (request arrival to
            that shard's answer) of every shard-query it answered, in
            arrival order — the per-shard tail populations.
        makespan_seconds: First arrival to last completion.
        n_replica_deaths: ``worker_loss`` events the fault plan applied
            to the query path.
        metrics: Registry the replay published into;
            :meth:`verify_against_metrics` reconciles against it.
        wallclock_seconds: Host wall-clock of the replay (volatile;
            excluded from :meth:`to_bytes`).
        heal_enabled: Whether a self-healing policy was armed for the
            replay; gates the ``heal.*`` reconciliation and the heal
            section of :meth:`to_bytes` so heal-off reports stay
            byte-identical to their pre-heal encodings.
        repairs: :class:`repro.heal.controller.RepairRecord` per
            effective replica death, death order.
        mttr_bound_seconds: The armed policy's healing SLO (``0.0``
            when healing is off); :meth:`unhealed_within` and the soak
            oracles check repairs against it.
    """

    outcomes: List[ClusterOutcome]
    n_shards: int
    n_replicas: int
    shard_sizes: Tuple[int, ...] = ()
    shard_latencies: List[np.ndarray] = field(default_factory=list)
    makespan_seconds: float = 0.0
    n_replica_deaths: int = 0
    metrics: Optional[object] = None
    wallclock_seconds: float = 0.0
    heal_enabled: bool = False
    repairs: Tuple = ()
    mttr_bound_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Populations
    # ------------------------------------------------------------------

    @property
    def n_requests(self) -> int:
        """All requests in the trace."""
        return len(self.outcomes)

    @property
    def n_served(self) -> int:
        """Requests answered completely (every shard contributed)."""
        return sum(1 for o in self.outcomes if o.complete)

    @property
    def n_partial(self) -> int:
        """Requests answered with one or more shards missing."""
        return sum(1 for o in self.outcomes
                   if o.status is ClusterStatus.PARTIAL)

    @property
    def n_failed(self) -> int:
        """Requests no shard answered."""
        return sum(1 for o in self.outcomes
                   if o.status is ClusterStatus.FAILED)

    @property
    def n_deadline_failfast(self) -> int:
        """Requests rejected before fan-out (deadline unmeetable)."""
        return sum(1 for o in self.outcomes
                   if o.status is ClusterStatus.DEADLINE)

    @property
    def n_answered(self) -> int:
        """Requests that received any merged answer."""
        return sum(1 for o in self.outcomes if o.answered)

    @property
    def answered_queries(self) -> int:
        """Query vectors answered across the trace."""
        return sum(o.n_queries for o in self.outcomes if o.answered)

    @property
    def n_failovers(self) -> int:
        """Total replica bounces and retry-lane re-executions."""
        return sum(o.n_failovers for o in self.outcomes)

    @property
    def n_shard_misses(self) -> int:
        """Total (request, shard) pairs that contributed nothing."""
        return sum(len(o.missing_shards) for o in self.outcomes)

    # ------------------------------------------------------------------
    # Healing
    # ------------------------------------------------------------------

    @property
    def n_repairs(self) -> int:
        """Effective replica deaths the repair controller processed."""
        return len(self.repairs)

    @property
    def n_repairs_healed(self) -> int:
        """Repairs that re-admitted a digest-verified replica."""
        return sum(1 for r in self.repairs if r.healed)

    @property
    def n_repairs_abandoned(self) -> int:
        """Repairs that ran out of rebuild attempts (slot stays dead)."""
        return sum(1 for r in self.repairs if not r.healed)

    @property
    def n_quarantines(self) -> int:
        """Rebuild attempts discarded on a digest mismatch."""
        return sum(r.n_quarantined for r in self.repairs)

    def mttr_values(self) -> np.ndarray:
        """Death-to-re-admission times of every healed repair."""
        return np.array([r.mttr_seconds for r in self.repairs
                         if r.healed], dtype=np.float64)

    @property
    def max_mttr_seconds(self) -> float:
        """Worst healed MTTR (``0.0`` with no healed repairs)."""
        values = self.mttr_values()
        return float(values.max()) if len(values) else 0.0

    def unhealed_within(self, bound_seconds: float) -> List:
        """Repairs that missed the MTTR bound (abandoned, or too slow).

        The soak gate demands this list be empty for every
        single-replica loss the chaos plan induced.
        """
        return [r for r in self.repairs
                if not r.healed or r.mttr_seconds > bound_seconds]

    # ------------------------------------------------------------------
    # Latency / overhead
    # ------------------------------------------------------------------

    def latencies(self) -> np.ndarray:
        """Latency of every answered request, arrival order."""
        return np.array([o.latency_seconds for o in self.outcomes
                         if o.answered], dtype=np.float64)

    @property
    def p50_latency(self) -> float:
        """Median answered latency (seconds)."""
        return _percentile(self.latencies(), 50)

    @property
    def p95_latency(self) -> float:
        """95th-percentile answered latency (seconds)."""
        return _percentile(self.latencies(), 95)

    @property
    def p99_latency(self) -> float:
        """99th-percentile answered latency (seconds)."""
        return _percentile(self.latencies(), 99)

    def shard_percentile(self, shard: int, q: float) -> float:
        """Latency percentile of one shard's answered shard-queries."""
        return _percentile(self.shard_latencies[shard], q)

    def shard_p99s(self) -> List[float]:
        """p99 of every shard's answered shard-queries."""
        return [self.shard_percentile(s, 99)
                for s in range(len(self.shard_latencies))]

    @property
    def slowest_shard(self) -> int:
        """Shard with the highest p99 (``-1`` with no data)."""
        p99s = self.shard_p99s()
        finite = [(p, s) for s, p in enumerate(p99s)
                  if not np.isnan(p)]
        if not finite:
            return -1
        return max(finite)[1]

    @property
    def tail_amplification(self) -> float:
        """Cluster p99 over the slowest shard's p99.

        Scatter-gather waits for the maximum of the shard latencies, so
        this ratio is >= 1 in practice: it isolates how much of the
        cluster tail is fan-out synchronization + merge overhead rather
        than any single shard's own tail.  ``0.0`` when there is no
        latency population to compare.
        """
        slowest = self.slowest_shard
        if slowest < 0:
            return 0.0
        shard_p99 = self.shard_percentile(slowest, 99)
        cluster_p99 = self.p99_latency
        if np.isnan(cluster_p99) or shard_p99 <= 0:
            return 0.0
        return cluster_p99 / shard_p99

    @property
    def merge_overhead_cycles(self) -> float:
        """Total cycles charged to scatter-gather merge launches."""
        total = 0.0
        for o in self.outcomes:
            total += o.merge_cycles
        return total

    @property
    def merge_overhead_seconds(self) -> float:
        """Total simulated seconds of merge launches."""
        total = 0.0
        for o in self.outcomes:
            total += o.merge_seconds
        return total

    @property
    def comm_seconds(self) -> float:
        """Total scatter + gather network seconds."""
        total = 0.0
        for o in self.outcomes:
            total += o.scatter_seconds + o.gather_seconds
        return total

    @property
    def qps(self) -> float:
        """Answered queries per simulated second of makespan."""
        if self.makespan_seconds <= 0:
            return float("inf") if self.answered_queries else 0.0
        return self.answered_queries / self.makespan_seconds

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def summary(self) -> str:
        """Multi-line human-readable summary (what ``cluster-sim`` prints)."""
        shard_p99s = self.shard_p99s()
        finite = [p for p in shard_p99s if not np.isnan(p)]
        lines = [
            f"ClusterReport: {self.n_shards} shards x "
            f"{self.n_replicas} replicas, {self.n_requests} requests "
            f"({self.answered_queries} queries answered) over "
            f"{self.makespan_seconds * 1e3:.1f} ms simulated",
            f"  shards        sizes {list(self.shard_sizes)}",
            f"  throughput    {self.qps:,.0f} queries/s",
            f"  latency       p50 {self.p50_latency * 1e3:.3f} ms   "
            f"p95 {self.p95_latency * 1e3:.3f} ms   "
            f"p99 {self.p99_latency * 1e3:.3f} ms",
            f"  shard p99     min {min(finite) * 1e3:.3f} ms   "
            f"max {max(finite) * 1e3:.3f} ms (shard "
            f"{self.slowest_shard})" if finite else
            "  shard p99     (no shard answered)",
            f"  tail amp      {self.tail_amplification:.3f}x vs "
            f"slowest shard",
            f"  merge         {self.merge_overhead_cycles:,.0f} cycles, "
            f"{self.merge_overhead_seconds * 1e3:.3f} ms; comm "
            f"{self.comm_seconds * 1e3:.3f} ms",
            f"  outcomes      {self.n_served} complete, "
            f"{self.n_partial} partial (flagged), "
            f"{self.n_failed} failed",
            f"  failover      {self.n_failovers} failovers, "
            f"{self.n_shard_misses} shard misses, "
            f"{self.n_replica_deaths} replica deaths scheduled",
        ]
        if self.n_deadline_failfast:
            lines.append(
                f"  deadlines     {self.n_deadline_failfast} requests "
                f"failed fast before fan-out")
        if self.heal_enabled:
            lines.append(
                f"  healing       {self.n_repairs_healed}/"
                f"{self.n_repairs} repairs admitted, "
                f"{self.n_quarantines} quarantined rebuilds, max MTTR "
                f"{self.max_mttr_seconds * 1e3:.3f} ms (bound "
                f"{self.mttr_bound_seconds * 1e3:.1f} ms)")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Registry view
    # ------------------------------------------------------------------

    def verify_against_metrics(self) -> None:
        """Assert this report is an exact view over its registry.

        Mirrors :meth:`repro.serve.report.ServeReport
        .verify_against_metrics`: every derived quantity must equal the
        counter/gauge the engine published during the replay — the two
        accounting paths get zero drift.  Float totals are re-summed in
        publication order so the comparison is exact, not approximate.
        Raises :class:`repro.errors.ObservabilityError` on the first
        mismatch; no-op without a registry.
        """
        registry = self.metrics
        if registry is None:
            return
        merge_seconds = 0.0
        merge_cycles = 0.0
        gather_seconds = 0.0
        scatter_seconds = 0.0
        for o in self.outcomes:
            merge_seconds += o.merge_seconds
            merge_cycles += o.merge_cycles
            gather_seconds += o.gather_seconds
            scatter_seconds += o.scatter_seconds
        expectations = {
            "cluster.requests": self.n_requests,
            "cluster.outcomes.served": self.n_served,
            "cluster.outcomes.partial": self.n_partial,
            "cluster.outcomes.failed": self.n_failed,
            "cluster.outcomes.deadline": self.n_deadline_failfast,
            "cluster.deadline_failfast": self.n_deadline_failfast,
            "cluster.queries_answered": self.answered_queries,
            # Deadline-rejected requests never fan out: no shard sees
            # them, so they contribute no shard-queries.
            "cluster.shard_queries":
                (self.n_requests - self.n_deadline_failfast)
                * self.n_shards,
            "cluster.shards_answered":
                sum(o.n_shards_answered for o in self.outcomes),
            "cluster.failovers": self.n_failovers,
            "cluster.shard_misses": self.n_shard_misses,
            "cluster.replica_deaths": self.n_replica_deaths,
            "cluster.merge_seconds": merge_seconds,
            "cluster.merge_cycles": merge_cycles,
            "cluster.gather_seconds": gather_seconds,
            "cluster.scatter_seconds": scatter_seconds,
            "cluster.makespan_seconds": self.makespan_seconds,
        }
        if self.heal_enabled:
            # Re-sum float totals in publication (death) order so the
            # comparison is exact.
            transfer = catchup = verify = deserialize = 0.0
            attempts = quarantines = bytes_moved = wal_replayed = 0
            for r in self.repairs:
                transfer += r.transfer_seconds
                catchup += r.catchup_seconds
                verify += r.verify_seconds
                deserialize += sum(a.deserialize_seconds
                                   for a in r.attempts)
                attempts += r.n_attempts
                quarantines += r.n_quarantined
                bytes_moved += r.bytes_transferred
                wal_replayed += r.wal_records_replayed
            expectations.update({
                "heal.deaths_detected": self.n_repairs,
                "heal.repairs_completed": self.n_repairs_healed,
                "heal.repairs_abandoned": self.n_repairs_abandoned,
                "heal.rebuild_attempts": attempts,
                "heal.quarantines": quarantines,
                "heal.bytes_transferred": bytes_moved,
                "heal.wal_records_replayed": wal_replayed,
                "heal.transfer_seconds": transfer,
                "heal.catchup_seconds": catchup,
                "heal.verify_seconds": verify,
                "heal.deserialize_seconds": deserialize,
                "heal.unhealed_replicas": self.n_repairs_abandoned,
            })
        for name, expected in expectations.items():
            actual = registry.value(name, default=0.0)
            if actual != expected:
                raise ObservabilityError(
                    f"report/registry drift on {name!r}: report says "
                    f"{expected}, registry says {actual}"
                )
        hist = (registry.snapshot().get("cluster.latency_seconds")
                if "cluster.latency_seconds" in registry else None)
        if hist is not None and hist["count"] != self.n_answered:
            raise ObservabilityError(
                f"report/registry drift on latency histogram count: "
                f"{self.n_answered} answered, {hist['count']} observed"
            )
        if self.heal_enabled:
            mttr = (registry.snapshot().get("heal.mttr_seconds")
                    if "heal.mttr_seconds" in registry else None)
            observed = 0 if mttr is None else mttr["count"]
            if observed != self.n_repairs_healed:
                raise ObservabilityError(
                    f"report/registry drift on MTTR histogram count: "
                    f"{self.n_repairs_healed} healed, {observed} "
                    f"observed"
                )

    # ------------------------------------------------------------------
    # Canonical form
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Canonical byte encoding of every result-bearing field.

        Two replays of the same trace under the same fault plan and
        topology must produce equal encodings — the cluster determinism
        suite and the smoke script compare these bytes directly.  The
        volatile host wall-clock is excluded.
        """
        chunks: List[bytes] = []
        for o in self.outcomes:
            head = (f"{o.request_id} {o.status.value} "
                    f"{o.n_shards_answered} "
                    f"{list(o.missing_shards)} {o.n_failovers} "
                    f"{o.degraded_tier} {o.arrival_seconds!r} "
                    f"{o.completion_seconds!r} {o.scatter_seconds!r} "
                    f"{o.gather_seconds!r} {o.merge_seconds!r} "
                    f"{o.merge_cycles!r} {o.detail}\n")
            chunks.append(head.encode("utf-8"))
            for arr in (o.ids, o.dists):
                chunks.append(b"-" if arr is None
                              else np.ascontiguousarray(arr).tobytes())
        for latencies in self.shard_latencies:
            chunks.append(
                np.ascontiguousarray(latencies).tobytes())
        tail = (f"\ntopology={self.n_shards}x{self.n_replicas}"
                f"\nsizes={list(self.shard_sizes)}"
                f"\nmakespan={self.makespan_seconds!r}"
                f"\ndeaths={self.n_replica_deaths}")
        chunks.append(tail.encode("utf-8"))
        if self.heal_enabled:
            heal_lines = [f"\nheal repairs={self.n_repairs} "
                          f"healed={self.n_repairs_healed} "
                          f"quarantines={self.n_quarantines} "
                          f"bound={self.mttr_bound_seconds!r}"]
            for r in self.repairs:
                heal_lines.append("\n" + r.to_line())
            chunks.append("".join(heal_lines).encode("utf-8"))
        return b"".join(chunks)

    def digest(self) -> str:
        """SHA-256 hex digest of :meth:`to_bytes`."""
        return hashlib.sha256(self.to_bytes()).hexdigest()
