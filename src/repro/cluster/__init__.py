"""Sharded multi-replica serving cluster with scatter-gather top-k.

The package promotes the construction-time sharding helpers of
:mod:`repro.extensions.distributed` into a real serving topology:
consistent-hash placement (:mod:`repro.cluster.placement`), a
health-masking round-robin replica router
(:mod:`repro.cluster.router`), an exact cost-charged top-k merge
(:mod:`repro.cluster.merge`), the scatter-gather
:class:`~repro.cluster.engine.ClusterEngine` itself, and the
deterministic :class:`~repro.cluster.report.ClusterReport` it emits.
"""

from repro.cluster.engine import ClusterEngine
from repro.cluster.merge import (
    merge_cycles_per_query,
    merge_launch,
    merge_topk,
)
from repro.cluster.placement import ConsistentHashRing, ShardMap, hash64
from repro.cluster.report import (
    ClusterOutcome,
    ClusterReport,
    ClusterStatus,
)
from repro.cluster.router import (
    ReplicaRouter,
    RouteDecision,
    RouterPolicy,
)

__all__ = [
    "ClusterEngine",
    "ClusterOutcome",
    "ClusterReport",
    "ClusterStatus",
    "ConsistentHashRing",
    "ReplicaRouter",
    "RouteDecision",
    "RouterPolicy",
    "ShardMap",
    "hash64",
    "merge_cycles_per_query",
    "merge_launch",
    "merge_topk",
]
