"""Scatter-gather top-k merge of per-shard results, with cost model.

Each shard answers a query with its local top-k; the coordinator must
reduce ``n_shards`` sorted runs to the global top-k.  Correctness is
defined against brute force: the merged list must equal the top-k of
the *union* of all shard candidates under ``(distance, id)`` order —
the property test drives this with duplicate distances, ``k`` larger
than any single shard's candidate list, and empty shards.

Semantics:

- Candidates are ``(distance, id)`` pairs; ties on distance break by
  ascending id, matching :func:`repro.gpusim.sorting.merge_sorted_topm`.
- An id ``< 0`` is *padding* (a shard holding fewer than ``k`` points
  pads its answer); padding never beats a real candidate and re-pads
  the tail of the merged list when the union holds fewer than ``k``
  real candidates.
- Duplicate ids across shards are impossible by construction (shards
  are disjoint), so the merge is a pure multiset reduction and does not
  deduplicate.

The cost side charges the reduction to the simulated device exactly
like the kernel's own phase (6): a serial fold of pairwise bitonic
merges, each :meth:`repro.gpusim.costs.CostTable.ganns_merge_cycles`
over two ``k``-length runs, one thread block per query
(:func:`merge_launch`).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ClusterError
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.device import DeviceSpec, QUADRO_P5000
from repro.gpusim.kernel import KernelLaunch

#: Sort key given to padding entries so they lose every comparison
#: against real candidates (distance +inf, then largest id).
_PAD_ID_SENTINEL = np.iinfo(np.int64).max


def merge_topk(k: int, shard_ids: Sequence[np.ndarray],
               shard_dists: Sequence[np.ndarray],
               n_queries: Optional[int] = None
               ) -> Tuple[np.ndarray, np.ndarray]:
    """Exact top-k over the union of per-shard top-k runs.

    Args:
        k: Result size; the output always has ``k`` columns.
        shard_ids: Per shard, an ``(m, k_s)`` int id matrix (``k_s`` may
            differ per shard and may exceed or undershoot ``k``);
            entries ``< 0`` are padding.
        shard_dists: Matching ``(m, k_s)`` distance matrices.
        n_queries: Row count ``m``, required only when no shards are
            given (the all-shards-dead degenerate case).

    Returns:
        ``(ids, dists)`` of shape ``(m, k)`` — int64 / float64, sorted
        by ``(distance, id)`` per row, padded with ``-1`` / ``inf``.
    """
    if k <= 0:
        raise ClusterError(f"k must be positive, got {k}")
    if len(shard_ids) != len(shard_dists):
        raise ClusterError(
            f"got {len(shard_ids)} id matrices but {len(shard_dists)} "
            f"distance matrices"
        )
    if not shard_ids:
        if n_queries is None:
            raise ClusterError(
                "merging zero shards requires n_queries for the output "
                "shape"
            )
        return (np.full((n_queries, k), -1, dtype=np.int64),
                np.full((n_queries, k), np.inf, dtype=np.float64))
    id_blocks = []
    dist_blocks = []
    m = None
    for index, (ids, dists) in enumerate(zip(shard_ids, shard_dists)):
        ids = np.atleast_2d(np.asarray(ids, dtype=np.int64))
        dists = np.atleast_2d(np.asarray(dists, dtype=np.float64))
        if ids.shape != dists.shape:
            raise ClusterError(
                f"shard {index}: ids shape {ids.shape} != dists shape "
                f"{dists.shape}"
            )
        if m is None:
            m = ids.shape[0]
        elif ids.shape[0] != m:
            raise ClusterError(
                f"shard {index}: {ids.shape[0]} rows, expected {m}"
            )
        id_blocks.append(ids)
        dist_blocks.append(dists)
    if n_queries is not None and n_queries != m:
        raise ClusterError(
            f"n_queries={n_queries} disagrees with shard rows {m}"
        )
    all_ids = np.concatenate(id_blocks, axis=1)
    all_dists = np.concatenate(dist_blocks, axis=1)
    if all_ids.shape[1] < k:
        pad = k - all_ids.shape[1]
        all_ids = np.pad(all_ids, ((0, 0), (0, pad)),
                         constant_values=-1)
        all_dists = np.pad(all_dists, ((0, 0), (0, pad)),
                           constant_values=np.inf)
    padding = all_ids < 0
    sort_dists = np.where(padding, np.inf, all_dists)
    sort_ids = np.where(padding, _PAD_ID_SENTINEL, all_ids)
    # lexsort: last key is primary — distance first, then id.
    order = np.lexsort((sort_ids, sort_dists), axis=1)[:, :k]
    merged_ids = np.take_along_axis(sort_ids, order, axis=1)
    merged_dists = np.take_along_axis(sort_dists, order, axis=1)
    pad_out = merged_ids == _PAD_ID_SENTINEL
    merged_ids[pad_out] = -1
    merged_dists[pad_out] = np.inf
    return merged_ids, merged_dists


def merge_cycles_per_query(n_runs: int, k: int, n_threads: int = 32,
                           costs: CostTable = DEFAULT_COSTS) -> float:
    """Cycle cost of reducing ``n_runs`` sorted ``k``-runs to one.

    A serial fold of ``n_runs - 1`` pairwise bitonic merges, each
    keeping the best ``k`` of ``k + k`` — the same
    ``ganns_merge_cycles`` formula the search kernel's phase (6)
    charges, so cluster merge overhead and kernel merge cost stay in
    one currency.
    """
    if n_runs <= 0 or k <= 0:
        raise ClusterError(
            f"n_runs and k must be positive, got {n_runs}, {k}"
        )
    if n_runs == 1:
        return 0.0
    per_pair = costs.ganns_merge_cycles(k, k, n_threads)
    return float(n_runs - 1) * per_pair


def merge_launch(n_queries: int, n_runs: int, k: int,
                 n_threads: int = 32,
                 device: DeviceSpec = QUADRO_P5000,
                 costs: CostTable = DEFAULT_COSTS
                 ) -> Tuple[float, float]:
    """Charge one merge launch: one thread block per query row.

    Returns:
        ``(total_cycles, seconds)`` — the per-block cycles summed over
        the grid, and the simulated elapsed time of the launch.
    """
    if n_queries <= 0:
        return 0.0, 0.0
    per_block = merge_cycles_per_query(n_runs, k, n_threads, costs)
    if per_block == 0.0:
        return 0.0, 0.0
    launch = KernelLaunch(device=device, n_threads=n_threads,
                          costs=costs)
    result = launch.run(per_block, n_blocks=n_queries)
    return per_block * n_queries, float(result.seconds)
