"""Dataset substrate: synthetic stand-ins for the paper's ten benchmarks.

The paper evaluates on SIFT1M, GIST, NYTimes, GloVe200, UQ_V, MSong, Notre,
UKBench, DEEP and SIFT10M (Table I).  Those corpora are not redistributable
here, so :mod:`repro.datasets.catalog` builds synthetic stand-ins that match
each dataset's dimensionality, metric and *statistical character* — clustered
image-descriptor-like Gaussians, and heavily skewed (Zipf cluster mass) text
embeddings for the two datasets the paper calls "hard" — at a configurable
scale that runs on a laptop.
"""

from repro.datasets.synthetic import (
    gaussian_mixture,
    zipf_clustered,
    uniform_hypercube,
    hypersphere_shell,
)
from repro.datasets.catalog import (
    Dataset,
    DatasetSpec,
    DATASET_SPECS,
    load_dataset,
    dataset_names,
)
from repro.datasets.ground_truth import exact_knn
from repro.datasets.io import save_dataset, load_dataset_file

__all__ = [
    "gaussian_mixture",
    "zipf_clustered",
    "uniform_hypercube",
    "hypersphere_shell",
    "Dataset",
    "DatasetSpec",
    "DATASET_SPECS",
    "load_dataset",
    "dataset_names",
    "exact_knn",
    "save_dataset",
    "load_dataset_file",
]
