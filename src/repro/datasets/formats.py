"""Readers and writers for the TEXMEX vector file formats.

The paper's datasets ship as ``.fvecs`` / ``.bvecs`` / ``.ivecs`` files
(http://corpus-texmex.irisa.fr/): each vector is stored as a little-endian
``int32`` dimension count followed by that many components (``float32``,
``uint8`` or ``int32`` respectively).  With these loaders, anyone holding
the real SIFT1M/GIST corpora can run this library on them directly:

    points = read_fvecs("sift_base.fvecs")
    queries = read_fvecs("sift_query.fvecs")
    truth = read_ivecs("sift_groundtruth.ivecs")

All readers validate the framing (every record must declare the same
dimension and the file size must divide evenly) and support reading a
bounded prefix, which is how the paper subsamples SIFT1B into SIFT10M.
"""

from __future__ import annotations

import os
from typing import Optional, Union

import numpy as np

from repro.errors import DatasetError

PathLike = Union[str, os.PathLike]


def _read_vecs(path: PathLike, component_dtype: np.dtype,
               max_vectors: Optional[int]) -> np.ndarray:
    component_dtype = np.dtype(component_dtype)
    try:
        raw = np.fromfile(path, dtype=np.uint8)
    except OSError as exc:
        raise DatasetError(f"cannot read vector file {path!r}: {exc}") \
            from exc
    if raw.size == 0:
        raise DatasetError(f"vector file {path!r} is empty")
    if raw.size < 4:
        raise DatasetError(f"vector file {path!r} is truncated")
    n_dims = int(np.frombuffer(raw[:4].tobytes(), dtype="<i4")[0])
    if n_dims <= 0 or n_dims > 1_000_000:
        raise DatasetError(
            f"vector file {path!r} declares implausible dimension {n_dims}"
        )
    record_bytes = 4 + n_dims * component_dtype.itemsize
    if raw.size % record_bytes:
        raise DatasetError(
            f"vector file {path!r} has {raw.size} bytes, not a multiple "
            f"of the {record_bytes}-byte record size for {n_dims} dims"
        )
    n_vectors = raw.size // record_bytes
    if max_vectors is not None:
        if max_vectors <= 0:
            raise DatasetError(
                f"max_vectors must be positive, got {max_vectors}"
            )
        n_vectors = min(n_vectors, max_vectors)
    records = raw[:n_vectors * record_bytes].reshape(n_vectors,
                                                     record_bytes)
    headers = records[:, :4].copy().view("<i4").ravel()
    if not (headers == n_dims).all():
        bad = int(np.flatnonzero(headers != n_dims)[0])
        raise DatasetError(
            f"vector file {path!r}: record {bad} declares dimension "
            f"{int(headers[bad])}, expected {n_dims}"
        )
    body = records[:, 4:].copy().view(component_dtype.newbyteorder("<"))
    return np.ascontiguousarray(body.reshape(n_vectors, n_dims))


def read_fvecs(path: PathLike,
               max_vectors: Optional[int] = None) -> np.ndarray:
    """Read an ``.fvecs`` file into a float32 ``(n, d)`` matrix."""
    return _read_vecs(path, np.float32, max_vectors).astype(np.float32,
                                                            copy=False)


def read_bvecs(path: PathLike,
               max_vectors: Optional[int] = None) -> np.ndarray:
    """Read a ``.bvecs`` file into a uint8 ``(n, d)`` matrix."""
    return _read_vecs(path, np.uint8, max_vectors)


def read_ivecs(path: PathLike,
               max_vectors: Optional[int] = None) -> np.ndarray:
    """Read an ``.ivecs`` file (e.g. ground truth ids) as int32."""
    return _read_vecs(path, np.int32, max_vectors)


def _write_vecs(path: PathLike, matrix: np.ndarray,
                component_dtype: np.dtype) -> None:
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[1] == 0:
        raise DatasetError(
            f"vector writer expects a non-empty 2-D matrix, got shape "
            f"{matrix.shape}"
        )
    n, d = matrix.shape
    headers = np.full((n, 1), d, dtype="<i4")
    body = np.ascontiguousarray(matrix,
                                dtype=np.dtype(component_dtype)
                                .newbyteorder("<"))
    with open(path, "wb") as handle:
        interleaved = np.concatenate(
            [headers.view(np.uint8),
             body.view(np.uint8).reshape(n, -1)], axis=1)
        interleaved.tofile(handle)


def write_fvecs(path: PathLike, matrix: np.ndarray) -> None:
    """Write a float matrix as ``.fvecs``."""
    _write_vecs(path, matrix, np.float32)


def write_bvecs(path: PathLike, matrix: np.ndarray) -> None:
    """Write a uint8 matrix as ``.bvecs``."""
    _write_vecs(path, matrix, np.uint8)


def write_ivecs(path: PathLike, matrix: np.ndarray) -> None:
    """Write an int matrix as ``.ivecs``."""
    _write_vecs(path, matrix, np.int32)
