"""Exact k-nearest-neighbor ground truth via brute force.

Recall needs the true neighbor sets.  Brute force over a chunked distance
matrix is exact, deterministic (distance ties broken by vertex id, matching
the tie rule used throughout the library) and fast enough at the scales the
stand-in datasets use.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.errors import DatasetError
from repro.metrics.distance import Metric, get_metric


def exact_knn(points: np.ndarray, queries: np.ndarray, k: int,
              metric: Union[str, Metric] = "euclidean",
              chunk_size: int = 256,
              return_distances: bool = False
              ) -> Union[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
    """Exact k nearest neighbors of each query by brute force.

    Args:
        points: ``(n, d)`` float data matrix.
        queries: ``(m, d)`` float query matrix.
        k: Neighbors per query; must satisfy ``1 <= k <= n``.
        metric: Metric name or instance.
        chunk_size: Queries processed per distance-matrix chunk, bounding
            peak memory at ``chunk_size * n`` floats.
        return_distances: Also return the ``(m, k)`` distance matrix.

    Returns:
        ``(m, k)`` int64 ids ordered by increasing distance (ties by id),
        optionally with the matching distances.
    """
    points = np.asarray(points)
    queries = np.asarray(queries)
    if points.ndim != 2 or queries.ndim != 2:
        raise DatasetError(
            f"points and queries must be 2-D, got shapes {points.shape} "
            f"and {queries.shape}"
        )
    if points.shape[1] != queries.shape[1]:
        raise DatasetError(
            f"dimensionality mismatch: points are {points.shape[1]}-d, "
            f"queries are {queries.shape[1]}-d"
        )
    n = len(points)
    if not 1 <= k <= n:
        raise DatasetError(f"k must lie in [1, {n}], got {k}")
    if chunk_size <= 0:
        raise DatasetError(f"chunk_size must be positive, got {chunk_size}")
    if isinstance(metric, str):
        metric = get_metric(metric)

    m = len(queries)
    ids = np.empty((m, k), dtype=np.int64)
    dists = np.empty((m, k), dtype=np.float64)
    for start in range(0, m, chunk_size):
        stop = min(start + chunk_size, m)
        block = metric.pairwise(queries[start:stop], points)
        if k < n:
            part = np.argpartition(block, k - 1, axis=1)[:, :k]
        else:
            part = np.broadcast_to(np.arange(n), (stop - start, n)).copy()
        part_dists = np.take_along_axis(block, part, axis=1)
        # Order each row by (distance, id) for a deterministic ranking.
        order = np.lexsort((part, part_dists), axis=1)
        ids[start:stop] = np.take_along_axis(part, order, axis=1)
        dists[start:stop] = np.take_along_axis(part_dists, order, axis=1)
    if return_distances:
        return ids, dists
    return ids
