"""Synthetic point-cloud generators.

Each generator returns a float32 ``(n, d)`` matrix.  The generators span the
statistical regimes the paper's datasets cover:

- :func:`gaussian_mixture` — balanced clusters, the shape of SIFT/GIST-like
  image descriptors;
- :func:`zipf_clustered` — Zipf-skewed cluster masses with anisotropic
  spreads, modelling the "heavily skewed" NYTimes/GloVe200 text embeddings
  the paper singles out as hard;
- :func:`uniform_hypercube` — the structure-free worst case;
- :func:`hypersphere_shell` — unit-norm points for cosine-metric workloads.

Real descriptor datasets have *low intrinsic dimensionality*: SIFT vectors
occupy 128 ambient dimensions but concentrate near a manifold of roughly a
dozen effective dimensions, and that is what makes proximity-graph search
work as well as the paper reports.  The clustered generators therefore
sample each cluster in a low-dimensional latent subspace (``intrinsic_dim``)
and embed it into the ambient space through a random linear map, plus a
small ambient noise floor.  Raising ``intrinsic_dim`` makes a dataset
genuinely harder — which is how the GIST/NYTimes/GloVe200 stand-ins earn
their "hard" label.

All generators take an explicit seed; the same call always yields the same
points, which is what makes the benchmark suite reproducible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DatasetError


def _validate(n_points: int, n_dims: int) -> None:
    if n_points <= 0:
        raise DatasetError(f"n_points must be positive, got {n_points}")
    if n_dims <= 0:
        raise DatasetError(f"n_dims must be positive, got {n_dims}")


def _embedding(rng: np.random.Generator, intrinsic_dim: int,
               n_dims: int) -> np.ndarray:
    """Random latent-to-ambient linear map with roughly unit gain."""
    basis = rng.normal(size=(intrinsic_dim, n_dims))
    return basis / np.sqrt(intrinsic_dim)


def _resolve_intrinsic(intrinsic_dim: Optional[int], n_dims: int) -> int:
    if intrinsic_dim is None:
        intrinsic_dim = min(16, n_dims)
    if not 1 <= intrinsic_dim <= n_dims:
        raise DatasetError(
            f"intrinsic_dim must lie in [1, {n_dims}], got {intrinsic_dim}"
        )
    return intrinsic_dim


def gaussian_mixture(n_points: int, n_dims: int, n_clusters: int = 32,
                     cluster_std: float = 0.15, spread: float = 1.0,
                     intrinsic_dim: Optional[int] = None,
                     ambient_noise: float = 0.01,
                     seed: int = 0) -> np.ndarray:
    """Balanced Gaussian-mixture cloud on a low-dimensional manifold.

    Cluster centers are drawn uniformly in the latent cube
    ``[-spread, spread]^q`` (``q = intrinsic_dim``); each point is its
    center plus isotropic latent noise of scale ``cluster_std * spread``,
    embedded into ``n_dims`` ambient dimensions by a shared random linear
    map, plus a small ambient noise floor.

    Args:
        n_points: Number of points to generate.
        n_dims: Ambient dimensionality.
        n_clusters: Number of mixture components; points are distributed
            round-robin so cluster sizes differ by at most one.
        cluster_std: Within-cluster latent standard deviation relative to
            spread.
        spread: Half-width of the latent center distribution.
        intrinsic_dim: Latent dimensionality; defaults to
            ``min(16, n_dims)``.  Larger values give a harder dataset.
        ambient_noise: Standard deviation of full-rank ambient noise,
            relative to spread.
        seed: RNG seed.
    """
    _validate(n_points, n_dims)
    if n_clusters <= 0:
        raise DatasetError(f"n_clusters must be positive, got {n_clusters}")
    intrinsic_dim = _resolve_intrinsic(intrinsic_dim, n_dims)
    rng = np.random.default_rng(seed)
    embedding = _embedding(rng, intrinsic_dim, n_dims)
    centers = rng.uniform(-spread, spread, size=(n_clusters, intrinsic_dim))
    assignment = np.arange(n_points) % n_clusters
    rng.shuffle(assignment)
    latent = centers[assignment] + rng.normal(
        0.0, cluster_std * spread, size=(n_points, intrinsic_dim))
    points = latent @ embedding
    points += rng.normal(0.0, ambient_noise * spread,
                         size=(n_points, n_dims))
    return points.astype(np.float32)


def zipf_clustered(n_points: int, n_dims: int, n_clusters: int = 64,
                   zipf_exponent: float = 1.2, cluster_std: float = 0.12,
                   anisotropy: float = 4.0, spread: float = 1.0,
                   intrinsic_dim: Optional[int] = None,
                   ambient_noise: float = 0.01,
                   seed: int = 0) -> np.ndarray:
    """Heavily skewed clustered cloud (the NYTimes/GloVe200 regime).

    Cluster masses follow a Zipf law (``mass_i ∝ (i + 1)^-s``), so a few
    dense clusters hold most points — the local-density skew that makes
    graph search on text embeddings hard.  Each cluster has anisotropic
    latent covariance: per-dimension scales drawn log-uniformly over
    ``[1/anisotropy, 1]``.

    Args:
        n_points: Number of points.
        n_dims: Ambient dimensionality.
        n_clusters: Number of clusters before mass skew.
        zipf_exponent: Zipf exponent ``s``; larger = more skew.
        cluster_std: Base within-cluster latent scale relative to spread.
        anisotropy: Ratio between the widest and narrowest latent
            dimension.
        spread: Half-width of the latent center distribution.
        intrinsic_dim: Latent dimensionality; defaults to
            ``min(16, n_dims)``; the hard text stand-ins raise it.
        ambient_noise: Full-rank noise floor relative to spread.
        seed: RNG seed.
    """
    _validate(n_points, n_dims)
    if n_clusters <= 0:
        raise DatasetError(f"n_clusters must be positive, got {n_clusters}")
    if zipf_exponent <= 0:
        raise DatasetError(
            f"zipf_exponent must be positive, got {zipf_exponent}")
    if anisotropy < 1.0:
        raise DatasetError(f"anisotropy must be >= 1, got {anisotropy}")
    intrinsic_dim = _resolve_intrinsic(intrinsic_dim, n_dims)
    rng = np.random.default_rng(seed)
    embedding = _embedding(rng, intrinsic_dim, n_dims)
    masses = (np.arange(1, n_clusters + 1, dtype=np.float64)
              ** (-zipf_exponent))
    masses /= masses.sum()
    counts = rng.multinomial(n_points, masses)
    centers = rng.uniform(-spread, spread, size=(n_clusters, intrinsic_dim))
    log_lo, log_hi = np.log(1.0 / anisotropy), 0.0
    latent = np.empty((n_points, intrinsic_dim))
    cursor = 0
    for cluster, count in enumerate(counts):
        if count == 0:
            continue
        scales = np.exp(rng.uniform(log_lo, log_hi, size=intrinsic_dim))
        noise = rng.normal(0.0, cluster_std * spread,
                           size=(count, intrinsic_dim))
        latent[cursor:cursor + count] = centers[cluster] + noise * scales
        cursor += count
    rng.shuffle(latent)
    points = latent @ embedding
    points += rng.normal(0.0, ambient_noise * spread,
                         size=(n_points, n_dims))
    return points.astype(np.float32)


def uniform_hypercube(n_points: int, n_dims: int, spread: float = 1.0,
                      seed: int = 0) -> np.ndarray:
    """Uniform points in ``[-spread, spread]^d`` — no cluster structure.

    Full intrinsic dimensionality by design: the worst case for proximity
    graphs, useful for stress tests.
    """
    _validate(n_points, n_dims)
    rng = np.random.default_rng(seed)
    return rng.uniform(-spread, spread,
                       size=(n_points, n_dims)).astype(np.float32)


def hypersphere_shell(n_points: int, n_dims: int, n_clusters: int = 32,
                      concentration: float = 12.0,
                      intrinsic_dim: Optional[int] = None,
                      seed: int = 0) -> np.ndarray:
    """Unit-norm clustered points, for cosine-metric workloads.

    Cluster directions are drawn in a latent subspace and embedded; points
    are directionally perturbed around their cluster direction with a
    Gaussian kick whose tightness grows with ``concentration``, then
    renormalised onto the unit sphere.
    """
    _validate(n_points, n_dims)
    if n_clusters <= 0:
        raise DatasetError(f"n_clusters must be positive, got {n_clusters}")
    if concentration <= 0:
        raise DatasetError(
            f"concentration must be positive, got {concentration}")
    intrinsic_dim = _resolve_intrinsic(intrinsic_dim, n_dims)
    rng = np.random.default_rng(seed)
    embedding = _embedding(rng, intrinsic_dim, n_dims)
    directions = rng.normal(size=(n_clusters, intrinsic_dim))
    assignment = np.arange(n_points) % n_clusters
    rng.shuffle(assignment)
    kick = rng.normal(0.0, 1.0 / np.sqrt(concentration),
                      size=(n_points, intrinsic_dim))
    latent = directions[assignment] + kick
    points = latent @ embedding
    points /= np.linalg.norm(points, axis=1, keepdims=True)
    return points.astype(np.float32)
