"""Dataset persistence as ``.npz`` archives.

Generating a stand-in takes seconds, but ground truth is quadratic; saving
a materialised dataset (with any cached ground truth) lets benchmark runs
share the expensive parts.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.datasets.catalog import Dataset
from repro.errors import DatasetError

_FORMAT_VERSION = 1


def save_dataset(dataset: Dataset, path: Union[str, os.PathLike]) -> None:
    """Write a dataset (and its cached ground truth) to ``path``.

    The archive is a plain ``.npz``: portable, versioned, no pickling.
    """
    arrays = {
        "format_version": np.array(_FORMAT_VERSION),
        "name": np.array(dataset.name),
        "metric_name": np.array(dataset.metric_name),
        "points": dataset.points,
        "queries": dataset.queries,
    }
    for k, ids in dataset._ground_truth_cache.items():
        arrays[f"ground_truth_{k}"] = ids
    np.savez_compressed(path, **arrays)


def load_dataset_file(path: Union[str, os.PathLike]) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`.

    Raises:
        DatasetError: If the file is missing required arrays or was written
            by an incompatible format version.
    """
    try:
        archive = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise DatasetError(f"cannot read dataset file {path!r}: {exc}") from exc
    with archive:
        required = {"format_version", "name", "metric_name", "points",
                    "queries"}
        missing = required - set(archive.files)
        if missing:
            raise DatasetError(
                f"dataset file {path!r} is missing arrays: {sorted(missing)}"
            )
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise DatasetError(
                f"dataset file {path!r} has format version {version}, "
                f"expected {_FORMAT_VERSION}"
            )
        dataset = Dataset(
            name=str(archive["name"]),
            points=archive["points"],
            queries=archive["queries"],
            metric_name=str(archive["metric_name"]),
        )
        prefix = "ground_truth_"
        for array_name in archive.files:
            if array_name.startswith(prefix):
                k = int(array_name[len(prefix):])
                dataset._ground_truth_cache[k] = archive[array_name]
    return dataset
