"""Stand-ins for the paper's ten evaluation datasets (Table I).

Each :class:`DatasetSpec` mirrors one row of Table I — same dimensionality,
same metric, same qualitative character — with the point count scaled down
by a user-controlled factor so everything runs on a laptop.  Relative sizes
between datasets are preserved (the DEEP and SIFT10M stand-ins stay the
largest), which keeps the cross-dataset comparisons in Figures 6/11 and
Tables II/III meaningful.

The "hard" datasets NYTimes and GloVe200 are generated with Zipf-skewed
anisotropic clusters; GIST keeps its extreme 960 dimensions.  That is what
reproduces the paper's observations that skew lowers the recall ceiling and
that high dimensionality shrinks GANNS's advantage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.datasets import synthetic
from repro.datasets.ground_truth import exact_knn
from repro.errors import DatasetError
from repro.metrics.distance import Metric, get_metric

#: Default stand-in size for a 1M-point paper dataset.
DEFAULT_BASE_POINTS = 20_000

#: Default number of test queries (the paper uses 2000 per test set).
DEFAULT_QUERIES = 500


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one Table I stand-in.

    Attributes:
        name: Table I dataset name (lower-cased registry key).
        kind: Content type from Table I (image/text/video/audio).
        n_dims: Dimensionality from Table I.
        paper_points: Point count of the real dataset (used to scale).
        metric: ``"euclidean"`` or ``"cosine"``.
        generator: Name of the :mod:`repro.datasets.synthetic` generator.
        generator_kwargs: Extra keyword arguments for the generator.
        hard: Whether the paper classifies the dataset as hard (skewed or
            very high-dimensional).
    """

    name: str
    kind: str
    n_dims: int
    paper_points: int
    metric: str
    generator: str
    generator_kwargs: Dict[str, object] = field(default_factory=dict)
    hard: bool = False

    def scaled_points(self, base_points: int = DEFAULT_BASE_POINTS) -> int:
        """Stand-in size: ``base_points`` scaled by the paper's relative size."""
        scale = self.paper_points / 1_000_000
        return max(int(round(base_points * scale)), 1_000)


@dataclass
class Dataset:
    """A materialised dataset: points, queries, metric, lazy ground truth."""

    name: str
    points: np.ndarray
    queries: np.ndarray
    metric_name: str
    spec: Optional[DatasetSpec] = None
    _ground_truth_cache: Dict[int, np.ndarray] = field(
        default_factory=dict, repr=False)

    @property
    def n_points(self) -> int:
        """Number of base points."""
        return len(self.points)

    @property
    def n_dims(self) -> int:
        """Dimensionality."""
        return self.points.shape[1]

    @property
    def n_queries(self) -> int:
        """Number of test queries."""
        return len(self.queries)

    @property
    def metric(self) -> Metric:
        """The metric instance for this dataset."""
        return get_metric(self.metric_name)

    def ground_truth(self, k: int) -> np.ndarray:
        """Exact ``(n_queries, k)`` neighbor ids, computed once per ``k``."""
        cached = self._ground_truth_cache.get(k)
        if cached is None:
            cached = exact_knn(self.points, self.queries, k, self.metric)
            self._ground_truth_cache[k] = cached
        return cached

    def truncate_dims(self, n_dims: int) -> "Dataset":
        """A view of this dataset keeping only the first ``n_dims`` dims.

        This is how the paper runs the Figure 9 dimensionality sweep — "we
        vary n_d from 960 to 60 on dataset GIST" — and how SIFT10M keeps
        only the first 32 dimensions of SIFT1B vectors.
        """
        if not 1 <= n_dims <= self.n_dims:
            raise DatasetError(
                f"n_dims must lie in [1, {self.n_dims}], got {n_dims}"
            )
        return Dataset(
            name=f"{self.name}-d{n_dims}",
            points=np.ascontiguousarray(self.points[:, :n_dims]),
            queries=np.ascontiguousarray(self.queries[:, :n_dims]),
            metric_name=self.metric_name,
            spec=self.spec,
        )

    def subsample(self, n_points: int, seed: int = 0) -> "Dataset":
        """A dataset over a random subset of the points (scalability sweeps)."""
        if not 1 <= n_points <= self.n_points:
            raise DatasetError(
                f"n_points must lie in [1, {self.n_points}], got {n_points}"
            )
        rng = np.random.default_rng(seed)
        chosen = rng.choice(self.n_points, size=n_points, replace=False)
        chosen.sort()
        return Dataset(
            name=f"{self.name}-n{n_points}",
            points=self.points[chosen],
            queries=self.queries,
            metric_name=self.metric_name,
            spec=self.spec,
        )


def _image_like(n_clusters: int = 48, cluster_std: float = 0.18,
                intrinsic_dim: int = 12) -> Dict[str, object]:
    return {"n_clusters": n_clusters, "cluster_std": cluster_std,
            "intrinsic_dim": intrinsic_dim}


DATASET_SPECS: Dict[str, DatasetSpec] = {
    spec.name: spec for spec in (
        DatasetSpec("sift1m", "image", 128, 1_000_000, "euclidean",
                    "gaussian_mixture", _image_like()),
        # GIST is "hard" through its extreme dimensionality and a higher
        # intrinsic dimension than descriptor datasets.
        DatasetSpec("gist", "image", 960, 1_000_000, "euclidean",
                    "gaussian_mixture",
                    _image_like(cluster_std=0.25, intrinsic_dim=20),
                    hard=True),
        # The text datasets are "heavily skewed": Zipf cluster masses,
        # anisotropic spreads and a high intrinsic dimension.
        DatasetSpec("nytimes", "text", 256, 290_000, "cosine",
                    "zipf_clustered",
                    {"n_clusters": 64, "zipf_exponent": 1.3,
                     "anisotropy": 6.0, "cluster_std": 0.2,
                     "intrinsic_dim": 24},
                    hard=True),
        DatasetSpec("glove200", "text", 200, 1_180_000, "cosine",
                    "zipf_clustered",
                    {"n_clusters": 96, "zipf_exponent": 1.25,
                     "anisotropy": 6.0, "cluster_std": 0.22,
                     "intrinsic_dim": 24},
                    hard=True),
        DatasetSpec("uq_v", "video", 256, 3_030_000, "euclidean",
                    "gaussian_mixture", _image_like(n_clusters=64)),
        DatasetSpec("msong", "audio", 420, 990_000, "euclidean",
                    "gaussian_mixture",
                    _image_like(cluster_std=0.2, intrinsic_dim=14)),
        DatasetSpec("notre", "image", 128, 330_000, "euclidean",
                    "gaussian_mixture", _image_like()),
        DatasetSpec("ukbench", "image", 128, 1_100_000, "euclidean",
                    "gaussian_mixture", _image_like(cluster_std=0.12)),
        DatasetSpec("deep", "image", 96, 8_000_000, "euclidean",
                    "gaussian_mixture", _image_like(n_clusters=96)),
        DatasetSpec("sift10m", "image", 32, 10_000_000, "euclidean",
                    "gaussian_mixture",
                    _image_like(n_clusters=96, intrinsic_dim=10)),
    )
}
"""Registry of Table I stand-ins keyed by lower-cased dataset name."""


def dataset_names() -> Tuple[str, ...]:
    """All registry names, in Table I order."""
    return tuple(DATASET_SPECS)


def load_dataset(name: str, n_points: Optional[int] = None,
                 n_queries: int = DEFAULT_QUERIES,
                 base_points: int = DEFAULT_BASE_POINTS,
                 seed: int = 7) -> Dataset:
    """Materialise one Table I stand-in.

    Args:
        name: Registry name (case-insensitive), e.g. ``"sift1m"``.
        n_points: Exact point count; defaults to the spec's scaled size.
        n_queries: Held-out query count (drawn from the same distribution).
        base_points: Stand-in size of a 1M-point dataset when ``n_points``
            is not given.
        seed: RNG seed; queries use ``seed + 1`` so they are disjoint draws.

    Returns:
        A :class:`Dataset` with float32 points and queries.
    """
    key = name.lower()
    spec = DATASET_SPECS.get(key)
    if spec is None:
        valid = ", ".join(dataset_names())
        raise DatasetError(f"unknown dataset {name!r}; valid names: {valid}")
    if n_points is None:
        n_points = spec.scaled_points(base_points)
    if n_points <= 0:
        raise DatasetError(f"n_points must be positive, got {n_points}")
    if n_queries <= 0:
        raise DatasetError(f"n_queries must be positive, got {n_queries}")

    generator: Callable[..., np.ndarray] = getattr(synthetic, spec.generator)
    points = generator(n_points, spec.n_dims, seed=seed,
                       **spec.generator_kwargs)
    queries = generator(n_queries, spec.n_dims, seed=seed + 1,
                        **spec.generator_kwargs)
    return Dataset(name=key, points=points, queries=queries,
                   metric_name=spec.metric, spec=spec)
