"""Parameter auto-tuning: hit a recall target at maximum throughput.

The paper exposes two accuracy knobs (``l_n`` and ``e`` for GANNS, the
queue bound for SONG) and its evaluation hand-picks operating points.  A
deployed service instead states an SLO — "recall at least 0.9" — and
wants the fastest configuration that clears it.  :func:`tune_search`
automates that: it evaluates candidate settings on a validation query
set (ground truth computed by brute force once) and returns the
highest-throughput setting meeting the target, using the monotone
recall-vs-budget structure to prune.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.song import SongParams, song_search
from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.datasets.ground_truth import exact_knn
from repro.errors import ConfigurationError, SearchError
from repro.graphs.adjacency import ProximityGraph
from repro.metrics.recall import recall_at_k

#: Default GANNS (l_n, e) grid, ordered by increasing budget.
DEFAULT_GANNS_GRID: Tuple[Tuple[int, int], ...] = (
    (32, 8), (32, 16), (32, 32), (64, 32), (64, 48), (64, 64),
    (128, 80), (128, 96), (128, 128), (256, 160), (256, 192), (256, 256),
    (512, 384), (512, 512),
)

#: Default SONG queue-bound grid.
DEFAULT_SONG_GRID: Tuple[int, ...] = (16, 24, 32, 48, 64, 96, 128, 192,
                                      256, 384, 512)


@dataclass(frozen=True)
class TuningResult:
    """Outcome of one tuning run.

    Attributes:
        algorithm: ``"ganns"`` or ``"song"``.
        setting: The chosen knob values (``(l_n, e)`` or ``(pq_bound,)``).
        recall: Validation recall of the chosen setting.
        qps: Simulated throughput of the chosen setting.
        evaluations: Settings actually evaluated (with their recalls), in
            evaluation order — the tuner's audit trail.
        target_met: Whether any setting reached the target.
    """

    algorithm: str
    setting: Tuple[int, ...]
    recall: float
    qps: float
    evaluations: List[Tuple[Tuple[int, ...], float, float]]
    target_met: bool


def _evaluate(algorithm: str, graph: ProximityGraph, points: np.ndarray,
              queries: np.ndarray, ground_truth: np.ndarray, k: int,
              setting: Tuple[int, ...], n_threads: int
              ) -> Tuple[float, float]:
    if algorithm == "ganns":
        l_n, e = setting
        report = ganns_search(graph, points, queries,
                              SearchParams(k=k, l_n=l_n, e=min(e, l_n),
                                           n_threads=n_threads))
    else:
        (pq_bound,) = setting
        report = song_search(graph, points, queries,
                             SongParams(k=k, pq_bound=max(pq_bound, k),
                                        n_threads=n_threads))
    return (recall_at_k(report.ids, ground_truth),
            report.queries_per_second())


def tune_search(graph: ProximityGraph, points: np.ndarray,
                validation_queries: np.ndarray, target_recall: float,
                k: int = 10, algorithm: str = "ganns",
                grid: Optional[Sequence[Tuple[int, ...]]] = None,
                n_threads: int = 32,
                ground_truth: Optional[np.ndarray] = None) -> TuningResult:
    """Find the fastest setting meeting a recall target.

    Uses binary search over the budget-ordered grid: recall is (weakly)
    monotone in the search budget, so the cheapest qualifying setting is
    located with ``O(log |grid|)`` evaluations instead of a full sweep.

    Args:
        graph: Proximity graph over ``points``.
        points: ``(n, d)`` data matrix.
        validation_queries: ``(m, d)`` held-out queries (a few hundred
            suffice).
        target_recall: The SLO in ``[0, 1]``.
        k: Neighbors per query.
        algorithm: ``"ganns"`` or ``"song"``.
        grid: Candidate settings ordered by increasing budget; defaults
            to :data:`DEFAULT_GANNS_GRID` / :data:`DEFAULT_SONG_GRID`.
        n_threads: Threads per block.
        ground_truth: Pre-computed exact ids, if the caller has them.

    Returns:
        A :class:`TuningResult`; if no setting reaches the target, the
        highest-recall setting is returned with ``target_met=False``.
    """
    if not 0.0 < target_recall <= 1.0:
        raise ConfigurationError(
            f"target_recall must lie in (0, 1], got {target_recall}"
        )
    if algorithm not in ("ganns", "song"):
        raise SearchError(
            f"unknown algorithm {algorithm!r}; valid: ganns, song"
        )
    if grid is None:
        grid = (DEFAULT_GANNS_GRID if algorithm == "ganns"
                else tuple((pq,) for pq in DEFAULT_SONG_GRID))
    grid = [tuple(setting) for setting in grid]
    if not grid:
        raise ConfigurationError("the tuning grid must not be empty")
    if ground_truth is None:
        ground_truth = exact_knn(points, validation_queries, k,
                                 graph.metric)

    evaluations: List[Tuple[Tuple[int, ...], float, float]] = []

    def measure(index: int) -> Tuple[float, float]:
        recall, qps = _evaluate(algorithm, graph, points,
                                validation_queries, ground_truth, k,
                                grid[index], n_threads)
        evaluations.append((grid[index], recall, qps))
        return recall, qps

    # Binary search for the first qualifying index.
    lo, hi = 0, len(grid) - 1
    best: Optional[Tuple[int, float, float]] = None
    while lo <= hi:
        mid = (lo + hi) // 2
        recall, qps = measure(mid)
        if recall >= target_recall:
            best = (mid, recall, qps)
            hi = mid - 1
        else:
            lo = mid + 1

    if best is not None:
        _, recall, qps = best
        return TuningResult(algorithm=algorithm, setting=grid[best[0]],
                            recall=recall, qps=qps,
                            evaluations=evaluations, target_met=True)

    # Nothing qualified: report the best achievable point (the largest
    # budget, which the binary search has already evaluated).
    top_eval = max(evaluations, key=lambda item: item[1])
    return TuningResult(algorithm=algorithm, setting=top_eval[0],
                        recall=top_eval[1], qps=top_eval[2],
                        evaluations=evaluations, target_met=False)
