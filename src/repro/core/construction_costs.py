"""Cycle pricing of construction-time searches.

GGraphCon runs one nearest-neighbor search per inserted point, with either
GANNS or SONG as the search kernel (the GGraphCon_GANNS / GGraphCon_SONG
variants of Section V-B).  The two kernels traverse the graph the same way
— the paper shows GANNS follows the same search path — so the construction
code performs each traversal once (via the counted CPU beam search, which
is exact about iterations, neighbor scans and fresh-candidate counts) and
prices it under the chosen kernel's cost model:

- GANNS computes a distance for *every* scanned neighbor (lazy check) but
  runs all structure phases in parallel;
- SONG computes distances only for *unvisited* neighbors (hash check) but
  serialises stages 1 and 3 on the host thread.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.beam import BeamSearchResult
from repro.errors import ConfigurationError
from repro.gpusim.costs import CostTable


VALID_KERNELS = ("ganns", "song")


@dataclass(frozen=True)
class SearchCycleCharge:
    """Cycles of one construction-time search, split by category."""

    distance_cycles: float
    structure_cycles: float

    @property
    def total(self) -> float:
        """Distance + structure cycles."""
        return self.distance_cycles + self.structure_cycles


def price_search(kernel: str, result: BeamSearchResult, l_n: int, l_t: int,
                 n_dims: int, n_threads: int, pq_bound: int,
                 costs: CostTable) -> SearchCycleCharge:
    """Price one traversal under a search kernel's cost model.

    Args:
        kernel: ``"ganns"`` or ``"song"``.
        result: Counted traversal (iterations, scans, fresh candidates).
        l_n: GANNS pool length used during construction searches.
        l_t: Neighbor-buffer length (the graph's ``d_max``).
        n_dims: Point dimensionality.
        n_threads: Threads per block.
        pq_bound: SONG's queue bound (the construction ``ef``).
        costs: Cycle cost table.

    Returns:
        A :class:`SearchCycleCharge`.
    """
    if kernel not in VALID_KERNELS:
        raise ConfigurationError(
            f"unknown search kernel {kernel!r}; valid kernels: "
            f"{', '.join(VALID_KERNELS)}"
        )
    per_vector = costs.single_distance_cycles(n_dims, n_threads)
    n_scanned = result.n_hash_probes
    n_fresh = result.n_distance_computations
    n_iter = max(result.n_iterations, 1)

    if kernel == "ganns":
        structure = n_iter * costs.ganns_structure_cycles(l_n, l_t,
                                                          n_threads)
        distance = n_scanned * per_vector + per_vector  # + entry vertex
        return SearchCycleCharge(distance_cycles=distance,
                                 structure_cycles=structure)

    # SONG: host-thread serialized locate + update, hash-filtered distance.
    log_bound = math.ceil(math.log2(max(pq_bound, 2)))
    locate = (n_iter * costs.heap_op_cycles * log_bound
              + n_scanned * (costs.hash_probe_cycles + costs.alu_cycles))
    update = n_fresh * (costs.host_insert_cycles * log_bound
                        + costs.hash_probe_cycles)
    distance = n_fresh * per_vector + per_vector
    return SearchCycleCharge(distance_cycles=distance,
                             structure_cycles=locate + update)
