"""GANNS: the GPU-friendly proximity-graph search (Section III-B).

The search replaces Algorithm 1's dynamically-maintained priority queues
and visited hash table with two fixed-length arrays and two lazy
strategies:

- *lazy update*: the pool ``N`` (length ``l_n``) holds the top results and
  the potential exploring vertices at once, kept sorted; the neighbor
  buffer ``T`` (length ``l_t = d_max``) is bitonic-sorted and bitonic-merged
  into ``N`` wholesale instead of element-by-element queue updates.
- *lazy check*: no visited hash — a neighbor's distance may be recomputed
  redundantly, but before merging, ``T`` is checked against ``N`` by
  parallel binary search so redundant *exploration* cannot propagate.

Each iteration runs the six phases of Figure 3: (1) candidate locating via
ballot/ffs, (2) neighborhood exploration, (3) bulk distance computation,
(4) lazy check, (5) bitonic sort of ``T``, (6) bitonic merge into ``N``.

This module is the *batched* implementation: all queries advance in
lock-step (exactly how a grid of thread blocks executes), every phase is a
vectorised NumPy operation over the active queries, and each query's lane
in the cycle tracker is charged with the paper's per-phase cost formulas.
The faithful single-query kernel assembled from warp primitives lives in
:mod:`repro.core.ganns_kernel`; the test suite proves the two agree.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.core.params import SearchParams
from repro.core.results import SearchReport, make_search_tracker
from repro.errors import SearchError
from repro.graphs.adjacency import ProximityGraph
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.memory import SharedMemoryBudget
from repro.perf.backend import FAST, resolve_backend
from repro.perf.distance import resolve_compute_dtype
from repro.perf.quant import resolve_quant

#: Safety cap on iterations, as a multiple of the explore budget; the
#: search provably terminates long before this — hitting the cap means a
#: broken graph (e.g. corrupted adjacency) and raises.
_MAX_ITERATION_FACTOR = 64


def _group_distance_fn(metric_name: str, points: np.ndarray,
                       queries: np.ndarray,
                       dtype: np.dtype = np.float64
                       ) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Vectorised (active-queries x candidates) distance evaluator.

    Returns a function mapping (query row indices ``(m,)``, candidate ids
    ``(m, w)``) to distances ``(m, w)``.  Cosine pre-normalises once so the
    per-iteration work is a single einsum, mirroring how a kernel would
    keep normalised vectors in global memory.  All arithmetic runs in
    ``dtype`` (float64 by default — the historical behaviour).
    """
    if metric_name == "euclidean":
        pts = np.asarray(points, dtype=dtype)
        qs = np.asarray(queries, dtype=dtype)

        def euclidean(query_rows: np.ndarray, cand_ids: np.ndarray
                      ) -> np.ndarray:
            gathered = pts[cand_ids]
            diff = gathered - qs[query_rows][:, None, :]
            return np.einsum("mtd,mtd->mt", diff, diff)

        return euclidean

    if metric_name == "cosine":
        def _unit(matrix: np.ndarray) -> np.ndarray:
            matrix = np.asarray(matrix, dtype=dtype)
            norms = np.linalg.norm(matrix, axis=-1, keepdims=True)
            return matrix / np.where(norms > 0.0, norms, 1.0)

        unit_points = _unit(points)
        unit_queries = _unit(queries)
        one = np.dtype(dtype).type(1.0)

        def cosine(query_rows: np.ndarray, cand_ids: np.ndarray
                   ) -> np.ndarray:
            gathered = unit_points[cand_ids]
            sims = np.einsum("mtd,md->mt", gathered,
                             unit_queries[query_rows])
            return one - sims

        return cosine

    if metric_name == "ip":
        pts_ip = np.asarray(points, dtype=dtype)
        qs_ip = np.asarray(queries, dtype=dtype)

        def inner_product(query_rows: np.ndarray, cand_ids: np.ndarray
                          ) -> np.ndarray:
            gathered = pts_ip[cand_ids]
            return -np.einsum("mtd,md->mt", gathered, qs_ip[query_rows])

        return inner_product

    raise SearchError(f"unsupported metric for GANNS search: {metric_name!r}")


def ganns_search(graph: ProximityGraph, points: np.ndarray,
                 queries: np.ndarray, params: SearchParams,
                 entry: Union[int, np.ndarray] = 0,
                 costs: CostTable = DEFAULT_COSTS,
                 lazy_check: bool = True,
                 dtype: Optional[object] = None) -> SearchReport:
    """Batched GANNS search: one simulated thread block per query.

    Args:
        graph: Proximity graph over ``points`` (``l_t`` is its ``d_max``).
        points: ``(n, d)`` data matrix.
        queries: ``(m, d)`` query matrix.
        params: Search parameters (``k``, ``l_n``, ``e``, ``n_threads``);
            ``params.backend`` (or the ``REPRO_BACKEND`` environment
            variable) selects the execution backend — results and cycle
            charges are backend-independent.  ``params.quant`` (or the
            ``REPRO_QUANT`` environment variable) instead switches to
            the lossy two-stage quantized pipeline: compressed
            traversal over ``rerank_factor * l_n`` candidates, exact
            rerank before top-k (see :mod:`repro.perf.quant`).
        entry: Start vertex, or a per-query ``(m,)`` id array (as produced
            by an HNSW top-down descent).
        costs: Cycle cost table.
        lazy_check: Disable to run the ablation *without* phase (4): the
            duplicate-exploration guard is skipped and redundant work
            propagates (exploration of a vertex still happens at most once
            per pool residency, but re-discovered vertices re-enter ``N``).
        dtype: Distance compute dtype (``np.float32``/``np.float64``);
            ``None`` keeps the pinned default (float64).  Mixed-dtype
            points/queries raise :class:`repro.errors.SearchError`.

    Returns:
        A :class:`repro.core.results.SearchReport`.
    """
    points = np.asarray(points)
    queries = np.asarray(queries)
    if queries.ndim != 2:
        raise SearchError(
            f"queries must be 2-D (n_queries, d), got shape {queries.shape}"
        )
    if points.ndim != 2 or points.shape[1] != queries.shape[1]:
        raise SearchError(
            f"points {points.shape} and queries {queries.shape} disagree "
            f"on dimensionality"
        )
    n_queries = len(queries)
    if n_queries == 0:
        raise SearchError("queries must not be empty")
    n_dims = points.shape[1]
    l_n = params.l_n
    l_t = graph.d_max
    e_budget = min(params.explore_budget, l_n)
    n_t = params.n_threads
    compute_dtype = resolve_compute_dtype(points, queries, dtype)

    # Entries are never mutated by either backend, so the read-only
    # broadcast view is enough.
    entries = np.broadcast_to(np.asarray(entry, dtype=np.int64),
                              (n_queries,))
    if entries.min() < 0 or entries.max() >= graph.n_vertices:
        raise SearchError(
            f"entry vertices must lie in [0, {graph.n_vertices})"
        )

    quant_mode = resolve_quant(params.quant)
    if quant_mode is not None:
        # The staged pipeline is built from the fast backend's machinery
        # (arena + GEMM engines) regardless of params.backend — a
        # "reference quantized" path would be a third implementation
        # with nothing to be a reference *for*: the staged search is
        # lossy by design and reported as such.
        from repro.perf.engine import ganns_search_staged
        return ganns_search_staged(graph, points, queries, params,
                                   entries, costs, lazy_check,
                                   compute_dtype, quant_mode)

    if resolve_backend(params.backend) == FAST:
        from repro.perf.engine import ganns_search_fast
        return ganns_search_fast(graph, points, queries, params, entries,
                                 costs, lazy_check, compute_dtype)

    tracker = make_search_tracker(n_queries, "ganns")
    distance_fn = _group_distance_fn(graph.metric_name, points, queries,
                                     compute_dtype)

    # Pool N: (dist, id, explored), sorted ascending by (dist, id); padding
    # is (+inf, -1, explored=True) so it is never selected for exploration.
    pool_dists = np.full((n_queries, l_n), np.inf, dtype=compute_dtype)
    pool_ids = np.full((n_queries, l_n), -1, dtype=np.int64)
    pool_explored = np.ones((n_queries, l_n), dtype=bool)

    # Initialisation: load the entry vertex into N.
    entry_dists = distance_fn(np.arange(n_queries), entries[:, None])[:, 0]
    pool_dists[:, 0] = entry_dists
    pool_ids[:, 0] = entries
    pool_explored[:, 0] = False
    tracker.charge("bulk_distance",
                   costs.single_distance_cycles(n_dims, n_t))
    n_distance_computations = n_queries

    # Per-iteration phase costs are constant in (l_n, l_t, n_t); hoist them.
    locate_cost = costs.ganns_candidate_locate_cycles(l_n, n_t)
    explore_cost = costs.ganns_explore_cycles(l_t, n_t)
    check_cost = costs.ganns_lazy_check_cycles(l_n, l_t, n_t)
    sort_cost = costs.ganns_sort_cycles(l_t, n_t)
    merge_cost = costs.ganns_merge_cycles(l_n, l_t, n_t)
    per_vector_cost = costs.single_distance_cycles(n_dims, n_t)

    active = np.ones(n_queries, dtype=bool)
    iterations = np.zeros(n_queries, dtype=np.int64)
    max_iterations = _MAX_ITERATION_FACTOR * e_budget + 256

    while True:
        act = np.flatnonzero(active)
        if len(act) == 0:
            break

        # Phase 1 — candidate locating: first unexplored entry among the
        # first e pool slots (ballot + ffs over the explored flags).
        tracker.charge("candidate_locating", locate_cost, act)
        window = ~pool_explored[act, :e_budget]
        has_work = window.any(axis=1)
        finished = act[~has_work]
        active[finished] = False
        act = act[has_work]
        if len(act) == 0:
            continue
        slot = np.argmax(window[has_work], axis=1)
        iterations[act] += 1
        if iterations.max() > max_iterations:
            raise SearchError(
                f"search exceeded {max_iterations} iterations; the graph "
                f"is likely structurally corrupt"
            )
        exploring = pool_ids[act, slot]
        pool_explored[act, slot] = True

        # Phase 2 — neighborhood exploration: stream adjacency rows into T
        # (the fancy gather already yields a fresh, writable array).
        tracker.charge("neighborhood_exploration", explore_cost, act)
        t_ids = graph.neighbor_ids[exploring]
        valid = t_ids >= 0
        degrees = graph.degrees[exploring]

        # Phase 3 — bulk distance computation (lazy check means every
        # loaded neighbor is computed, visited or not).
        t_dists = distance_fn(act, np.where(valid, t_ids, 0))
        t_dists[~valid] = np.inf
        tracker.charge("bulk_distance", degrees * per_vector_cost, act)
        n_distance_computations += int(degrees.sum())

        # Phase 4 — lazy check: parallel binary search of T against N;
        # anything already resident in the pool is invalidated so redundant
        # exploration cannot propagate.
        if lazy_check:
            tracker.charge("lazy_check", check_cost, act)
            duplicate = (t_ids[:, :, None] == pool_ids[act][:, None, :]
                         ).any(axis=2)
            dead = duplicate | ~valid
        else:
            dead = ~valid
        t_dists[dead] = np.inf
        t_ids = np.where(dead, -1, t_ids)

        # Phase 5 — bitonic sort of T by (distance, id); invalidated
        # entries carry +inf and sink to the tail.
        tracker.charge("sorting", sort_cost, act)
        order = np.lexsort((t_ids, t_dists), axis=1)
        t_dists = np.take_along_axis(t_dists, order, axis=1)
        t_ids = np.take_along_axis(t_ids, order, axis=1)

        # Phase 6 — candidate update: bitonic merge of the two sorted runs,
        # keeping the l_n best records in N.
        tracker.charge("candidate_update", merge_cost, act)
        all_dists = np.concatenate([pool_dists[act], t_dists], axis=1)
        all_ids = np.concatenate([pool_ids[act], t_ids], axis=1)
        all_explored = np.concatenate(
            [pool_explored[act], np.ones_like(t_ids, dtype=bool)], axis=1)
        all_explored[:, l_n:] = False
        all_explored[:, l_n:][t_ids < 0] = True
        merge_order = np.lexsort((all_ids, all_dists), axis=1)[:, :l_n]
        pool_dists[act] = np.take_along_axis(all_dists, merge_order, axis=1)
        pool_ids[act] = np.take_along_axis(all_ids, merge_order, axis=1)
        pool_explored[act] = np.take_along_axis(all_explored, merge_order,
                                                axis=1)

    shared_mem = SharedMemoryBudget(l_n=l_n, l_t=l_t).total_bytes()
    # These .copy()s are load-bearing: without them the report's (m, k)
    # views would pin the full (m, l_n) pools in memory.
    return SearchReport(
        algorithm="ganns",
        ids=pool_ids[:, :params.k].copy(),
        dists=pool_dists[:, :params.k].copy(),
        tracker=tracker,
        n_threads=n_t,
        shared_mem_bytes=shared_mem,
        iterations=iterations,
        n_distance_computations=n_distance_computations,
    )
