"""Faithful single-query GANNS kernel, assembled from warp primitives.

Where :mod:`repro.core.ganns` executes all queries in vectorised lock-step,
this module walks *one* query through the six phases exactly the way the
CUDA kernel does: candidate locating with ``__ballot_sync``/``__ffs`` over
warp-sized chunks of the explored flags, per-dimension partial sums reduced
with ``__shfl_down_sync``, a real bitonic sorting network over ``T`` and a
real bitonic merging network over ``N ∪ T``.

It exists for two reasons: it documents the kernel-level algorithm
precisely, and it pins the batched implementation — the test suite asserts
both paths return identical neighbor ids and identical per-phase cycle
charges on the same inputs.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.core.params import SearchParams
from repro.core.results import SearchReport, make_search_tracker
from repro.errors import SearchError
from repro.graphs.adjacency import ProximityGraph
from repro.gpusim import warp
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.memory import SharedMemoryBudget
from repro.gpusim.sorting import (
    bitonic_merge_network,
    bitonic_sort_network,
    is_pow2,
    next_pow2,
)


def _distance_via_warp(query: np.ndarray, point: np.ndarray,
                       n_threads: int, metric_name: str) -> float:
    """One distance, computed as the kernel does.

    Each of the ``n_threads`` lanes accumulates its strided share of the
    per-dimension terms; the partial sums are then reduced with
    ``log2(n_threads)`` ``shfl_down`` steps.
    """
    n_dims = len(query)
    partial = np.zeros(n_threads, dtype=np.float64)
    if metric_name == "euclidean":
        terms = (query - point) ** 2
    elif metric_name in ("cosine", "ip"):
        terms = query * point
    else:
        raise SearchError(f"unsupported metric: {metric_name!r}")
    for lane in range(n_threads):
        partial[lane] = terms[lane:n_dims:n_threads].sum()
    total = warp.warp_reduce_sum(partial, warp_size=n_threads)
    if metric_name == "cosine":
        return 1.0 - total
    if metric_name == "ip":
        return -total
    return total


def _locate_first_unexplored(explored: np.ndarray, e_budget: int,
                             n_threads: int) -> int:
    """Phase (1): ballot + ffs over warp-sized windows of the flags.

    Returns the index of the first unexplored slot within the budget, or
    ``-1`` when every considered slot is explored (termination).
    """
    for base in range(0, e_budget, n_threads):
        lanes = np.zeros(n_threads, dtype=bool)
        width = min(n_threads, e_budget - base)
        lanes[:width] = ~explored[base:base + width]
        found = warp.first_set_lane(lanes, warp_size=n_threads)
        if found >= 0:
            return base + found
    return -1


def ganns_search_kernel(graph: ProximityGraph, points: np.ndarray,
                        query: np.ndarray, params: SearchParams,
                        entry: int = 0,
                        costs: CostTable = DEFAULT_COSTS) -> SearchReport:
    """Run the faithful GANNS kernel for a single query.

    Args:
        graph: Proximity graph over ``points``.
        points: ``(n, d)`` data matrix.
        query: ``(d,)`` query vector.
        params: Search parameters; ``n_threads`` must be a power of two so
            the warp reductions are well-formed.
        entry: Start vertex.
        costs: Cycle cost table.

    Returns:
        A single-query :class:`repro.core.results.SearchReport`.
    """
    query = np.asarray(query, dtype=np.float64)
    points = np.asarray(points, dtype=np.float64)
    if query.ndim != 1 or points.ndim != 2 or len(query) != points.shape[1]:
        raise SearchError(
            f"query {query.shape} and points {points.shape} disagree on "
            f"dimensionality"
        )
    if not is_pow2(params.n_threads):
        raise SearchError(
            f"the kernel path requires a power-of-two n_threads, got "
            f"{params.n_threads}"
        )
    if not 0 <= entry < graph.n_vertices:
        raise SearchError(
            f"entry vertex {entry} out of range [0, {graph.n_vertices})"
        )
    metric_name = graph.metric_name
    if metric_name == "cosine":
        # The kernel operates on pre-normalised vectors in global memory.
        def unit(m):
            norms = np.linalg.norm(m, axis=-1, keepdims=True)
            return m / np.where(norms > 0.0, norms, 1.0)
        points = unit(points)
        query = unit(query[None, :])[0]

    l_n = params.l_n
    l_t = graph.d_max
    l_t_padded = next_pow2(l_t)
    e_budget = min(params.explore_budget, l_n)
    n_t = params.n_threads
    n_dims = points.shape[1]
    tracker = make_search_tracker(1, "ganns")

    pool_dists = np.full(l_n, np.inf)
    pool_ids = np.full(l_n, -1, dtype=np.int64)
    pool_explored = np.ones(l_n, dtype=bool)

    pool_dists[0] = _distance_via_warp(query, points[entry], n_t, metric_name)
    pool_ids[0] = entry
    pool_explored[0] = False
    tracker.charge("bulk_distance", costs.single_distance_cycles(n_dims, n_t))
    n_distance_computations = 1
    n_iterations = 0

    while True:
        # Phase 1 — candidate locating.
        tracker.charge("candidate_locating",
                       costs.ganns_candidate_locate_cycles(l_n, n_t))
        slot = _locate_first_unexplored(pool_explored, e_budget, n_t)
        if slot < 0:
            break
        n_iterations += 1
        exploring = int(pool_ids[slot])
        pool_explored[slot] = True

        # Phase 2 — neighborhood exploration: T <- adjacency row.
        tracker.charge("neighborhood_exploration",
                       costs.ganns_explore_cycles(l_t, n_t))
        degree = int(graph.degrees[exploring])
        t_ids = np.full(l_t_padded, -1, dtype=np.int64)
        t_ids[:degree] = graph.neighbor_ids[exploring, :degree]
        t_dists = np.full(l_t_padded, np.inf)

        # Phase 3 — bulk distance computation, one T entry at a time.
        for idx in range(degree):
            t_dists[idx] = _distance_via_warp(
                query, points[t_ids[idx]], n_t, metric_name)
        tracker.charge("bulk_distance",
                       degree * costs.single_distance_cycles(n_dims, n_t))
        n_distance_computations += degree

        # Phase 4 — lazy check.  On the GPU this is a parallel binary
        # search of the distance-sorted pool; the predicate it implements
        # is simply "is this vertex already resident in N", which is what
        # we evaluate here (and charge at the binary-search price).
        tracker.charge("lazy_check",
                       costs.ganns_lazy_check_cycles(l_n, l_t, n_t))
        for idx in range(degree):
            if t_ids[idx] in pool_ids:
                t_ids[idx] = -1
                t_dists[idx] = np.inf

        # Phase 5 — bitonic sort of T by (distance, id).
        tracker.charge("sorting", costs.ganns_sort_cycles(l_t, n_t))
        t_dists, t_ids_f = bitonic_sort_network(t_dists,
                                                t_ids.astype(np.float64))
        t_ids = t_ids_f.astype(np.int64)

        # Phase 6 — bitonic merge of N and T, keeping the best l_n.
        tracker.charge("candidate_update",
                       costs.ganns_merge_cycles(l_n, l_t, n_t))
        pad = l_n - l_t_padded
        if pad < 0:
            raise SearchError(
                f"l_n ({l_n}) must be >= the padded l_t ({l_t_padded}) for "
                f"the merge network"
            )
        merged_dists = np.concatenate([
            pool_dists, t_dists, np.full(pad, np.inf)])
        merged_ids = np.concatenate([
            pool_ids, t_ids, np.full(pad, -1, dtype=np.int64)])
        merged_explored = np.concatenate([
            pool_explored, t_ids < 0, np.ones(pad, dtype=bool)])
        out_d, out_i, out_e = bitonic_merge_network(
            merged_dists, merged_ids.astype(np.float64),
            merged_explored.astype(np.float64))
        pool_dists = out_d[:l_n]
        pool_ids = out_i[:l_n].astype(np.int64)
        pool_explored = out_e[:l_n].astype(bool)

    shared_mem = SharedMemoryBudget(l_n=l_n, l_t=l_t).total_bytes()
    return SearchReport(
        algorithm="ganns",
        ids=pool_ids[None, :params.k].copy(),
        dists=pool_dists[None, :params.k].copy(),
        tracker=tracker,
        n_threads=n_t,
        shared_mem_bytes=shared_mem,
        iterations=np.asarray([n_iterations], dtype=np.int64),
        n_distance_computations=n_distance_computations,
    )
