"""Search and construction reports: results plus simulated timing.

A :class:`SearchReport` bundles the neighbor ids/distances (real
computation) with a :class:`repro.gpusim.tracker.CycleTracker` whose lanes
are queries (simulated clock).  Converting to throughput or to a Figure 7
style breakdown is a method call, so benchmark code never re-derives
timing rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.device import DeviceSpec, QUADRO_P5000
from repro.gpusim.kernel import KernelLaunch, LaunchResult
from repro.gpusim.tracker import CycleTracker, PhaseCategory


@dataclass
class SearchReport:
    """Outcome of one batched search invocation.

    Attributes:
        algorithm: ``"ganns"`` or ``"song"``.
        ids: ``(n_queries, k)`` neighbor ids, closest first; ``-1`` pads.
        dists: Matching distances (``inf`` on padding).
        tracker: Per-query, per-phase cycle accounting.
        n_threads: Threads per block used (and charged).
        shared_mem_bytes: Shared memory per block, for occupancy.
        iterations: ``(n_queries,)`` search iterations per query.
        n_distance_computations: Total point distances evaluated — the
            quantity lazy check trades for structure-op savings.
    """

    algorithm: str
    ids: np.ndarray
    dists: np.ndarray
    tracker: CycleTracker
    n_threads: int
    shared_mem_bytes: int
    iterations: np.ndarray
    n_distance_computations: int

    @property
    def n_queries(self) -> int:
        """Queries answered by this report."""
        return len(self.ids)

    def launch(self, device: DeviceSpec = QUADRO_P5000,
               costs: CostTable = DEFAULT_COSTS) -> LaunchResult:
        """Schedule the one-block-per-query grid on ``device``."""
        kernel = KernelLaunch(device, self.n_threads,
                              self.shared_mem_bytes, costs)
        return kernel.run(self.tracker.lane_cycles())

    def queries_per_second(self, device: DeviceSpec = QUADRO_P5000,
                           costs: CostTable = DEFAULT_COSTS) -> float:
        """Simulated throughput — the y-axis of Figures 6/8/9."""
        result = self.launch(device, costs)
        if result.seconds <= 0:
            return float("inf")
        return self.n_queries / result.seconds

    def category_seconds(self, device: DeviceSpec = QUADRO_P5000,
                         costs: CostTable = DEFAULT_COSTS
                         ) -> Dict[PhaseCategory, float]:
        """Elapsed seconds attributed to each phase category.

        Total launch time is split in proportion to the categories' cycle
        shares — the Figure 7 breakdown and the Figure 10 per-stage times.
        """
        result = self.launch(device, costs)
        totals = self.tracker.category_totals()
        grand = sum(totals.values())
        if grand <= 0:
            return {category: 0.0 for category in totals}
        return {category: result.seconds * share / grand
                for category, share in totals.items()}

    def breakdown(self) -> Dict[str, float]:
        """Fractional cycle share per phase name."""
        return self.tracker.breakdown()

    def structure_fraction(self) -> float:
        """Share of cycles spent on data-structure operations."""
        totals = self.tracker.category_totals()
        grand = sum(totals.values())
        if grand <= 0:
            return 0.0
        return totals.get(PhaseCategory.STRUCTURE, 0.0) / grand


@dataclass
class ConstructionReport:
    """Outcome of one (simulated-GPU) graph construction.

    Attributes:
        algorithm: Construction scheme name, e.g. ``"ggraphcon-ganns"``.
        graph: The built graph (a :class:`ProximityGraph`, or a
            :class:`HierarchicalGraph` for HNSW).
        seconds: Simulated elapsed construction time.
        phase_seconds: Elapsed time per construction phase.
        category_seconds: Elapsed time per phase category (distance vs
            structure — Figure 14's two series).
        n_points: Points inserted.
        details: Free-form extras (group count, merge iterations, ...).
    """

    algorithm: str
    graph: object
    seconds: float
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    category_seconds: Dict[PhaseCategory, float] = field(default_factory=dict)
    n_points: int = 0
    details: Dict[str, float] = field(default_factory=dict)

    def speedup_over(self, baseline_seconds: float) -> float:
        """Speedup factor of this construction over a baseline time."""
        if self.seconds <= 0:
            return float("inf")
        return baseline_seconds / self.seconds


def make_search_tracker(n_queries: int, algorithm: str) -> CycleTracker:
    """Tracker pre-registered with the algorithm's phase categories."""
    if algorithm == "ganns":
        categories = {
            "candidate_locating": PhaseCategory.STRUCTURE,
            "neighborhood_exploration": PhaseCategory.STRUCTURE,
            "bulk_distance": PhaseCategory.DISTANCE,
            "lazy_check": PhaseCategory.STRUCTURE,
            "sorting": PhaseCategory.STRUCTURE,
            "candidate_update": PhaseCategory.STRUCTURE,
        }
    elif algorithm == "song":
        categories = {
            "candidates_locating": PhaseCategory.STRUCTURE,
            "bulk_distance": PhaseCategory.DISTANCE,
            "structures_updating": PhaseCategory.STRUCTURE,
        }
    else:
        categories = {}
    return CycleTracker(n_queries, categories)
