"""GGraphCon extension: HNSW construction on the simulated GPU.

Section IV-D builds HNSW level-by-level so every layer's searches can use
the structure already built, and solves the layer-addressing problem with
the ID shuffle: order vertices by descending level (random within a
level), and layer ``i`` is exactly the id prefix ``0 .. size_i - 1`` — no
per-layer index needed; the original ids are recovered from the recorded
mapping afterwards.

Each layer is an NSW graph built with :func:`repro.core.construction.
build_nsw_gpu`; the layers' simulated times sum into the Table III figure.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.baselines.hnsw_cpu import (
    draw_levels,
    layer_sizes_from_levels,
    shuffled_order_from_levels,
)
from repro.core.construction import build_nsw_gpu
from repro.core.params import BuildParams
from repro.core.results import ConstructionReport
from repro.errors import ConstructionError
from repro.graphs.adjacency import HierarchicalGraph, ProximityGraph
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.device import DeviceSpec, QUADRO_P5000
from repro.gpusim.tracker import PhaseCategory


def build_hnsw_gpu(points: np.ndarray, params: BuildParams,
                   search_kernel: str = "ganns",
                   metric: str = "euclidean",
                   device: DeviceSpec = QUADRO_P5000,
                   costs: CostTable = DEFAULT_COSTS,
                   backend: Optional[str] = None) -> ConstructionReport:
    """Build an HNSW graph level-by-level with GGraphCon per layer.

    Args:
        points: ``(n, d)`` float matrix (original ids).
        params: Build parameters; ``params.seed`` drives the level draw
            and the ID shuffle.
        search_kernel: ``"ganns"`` or ``"song"``.
        metric: Metric name.
        device: Simulated device.
        costs: Cycle cost table.
        backend: Execution backend forwarded to every layer's
            :func:`repro.core.construction.build_nsw_gpu`.

    Returns:
        A :class:`ConstructionReport` whose ``graph`` is a
        :class:`repro.graphs.adjacency.HierarchicalGraph` over *shuffled*
        ids; ``details["order"]`` is stored on the report as the
        ``order`` attribute mapping ``shuffled id -> original id``
        (``report.details`` keeps scalar metadata only).
    """
    points = np.asarray(points)
    if points.ndim != 2 or len(points) == 0:
        raise ConstructionError(
            f"points must be a non-empty 2-D matrix, got shape {points.shape}"
        )
    n = len(points)

    levels = draw_levels(n, params.d_min, seed=params.seed)
    order = shuffled_order_from_levels(levels, seed=params.seed)
    shuffled_points = points[order]
    sizes = layer_sizes_from_levels(levels)

    total_seconds = 0.0
    phase_seconds: Dict[str, float] = {}
    category_seconds: Dict[PhaseCategory, float] = {
        PhaseCategory.DISTANCE: 0.0,
        PhaseCategory.STRUCTURE: 0.0,
    }
    layers: List[ProximityGraph] = []
    for layer, size in enumerate(sizes):
        # Keep the local-graph group size constant across layers: a layer
        # holding a fraction of the points gets the same fraction of the
        # blocks, so merge launches stay as wide as the bottom layer's.
        layer_blocks = max((size * params.n_blocks) // n, 1)
        layer_params = params.with_overrides(
            n_blocks=min(layer_blocks, size))
        report = build_nsw_gpu(shuffled_points[:size], layer_params,
                               search_kernel=search_kernel, metric=metric,
                               device=device, costs=costs, backend=backend)
        total_seconds += report.seconds
        for phase, value in report.phase_seconds.items():
            key = f"layer{layer}:{phase}"
            phase_seconds[key] = value
        for category, value in report.category_seconds.items():
            category_seconds[category] = (
                category_seconds.get(category, 0.0) + value)

        layer_graph: ProximityGraph = report.graph
        if size < n:
            widened = ProximityGraph(n, params.d_max, metric)
            widened.neighbor_ids[:size] = layer_graph.neighbor_ids
            widened.neighbor_dists[:size] = layer_graph.neighbor_dists
            widened.degrees[:size] = layer_graph.degrees
            layers.append(widened)
        else:
            layers.append(layer_graph)

    hierarchical = HierarchicalGraph(layers, sizes)
    result = ConstructionReport(
        algorithm=f"ggraphcon-hnsw-{search_kernel}",
        graph=hierarchical,
        seconds=total_seconds,
        phase_seconds=phase_seconds,
        category_seconds=category_seconds,
        n_points=n,
        details={
            "n_layers": float(len(sizes)),
            "top_layer_size": float(sizes[-1]),
            "d_min": float(params.d_min),
            "d_max": float(params.d_max),
        },
    )
    # The shuffled-id mapping rides along for callers that need to recover
    # original ids ("vertex IDs are recovered based on the stored mapping
    # after construction").
    result.order = order
    return result


def recover_original_ids(ids: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Map shuffled-id search results back to original ids.

    Args:
        ids: Any-shape int array of shuffled ids (``-1`` padding allowed).
        order: The ``order`` mapping from :func:`build_hnsw_gpu`
            (``order[shuffled_id] = original_id``).

    Returns:
        Array of the same shape with original ids (padding preserved).
    """
    ids = np.asarray(ids)
    out = np.where(ids >= 0, order[np.clip(ids, 0, None)], -1)
    return out.astype(np.int64)
