"""GGraphCon extension: KNN-graph construction (batched NN-Descent).

Section IV-D observes that the straightforward GGraphCon adaptation for
KNN graphs needs multiple searches per point, and adopts NN-Descent [9]
instead: "the key to this framework is distance computation between each
pair of neighbors of each vertex and the update of adjacency lists", both
of which map onto the kernels already built — bulk distance computation
(Figure 3) and the adjacency merge of Algorithm 2's Step 3.

This implementation runs the refinement fully batched: one iteration
evaluates every neighbor-of-neighbor candidate of every vertex in a single
vectorised pass (one block per vertex on the simulated device) and merges
candidates into the rows with the bounded bitonic merge.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.params import BuildParams
from repro.core.results import ConstructionReport
from repro.errors import ConstructionError
from repro.graphs.adjacency import ProximityGraph
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.device import DeviceSpec, QUADRO_P5000
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.tracker import PhaseCategory
from repro.metrics.distance import get_metric


def build_knn_graph_gpu(points: np.ndarray, k: int,
                        params: BuildParams = BuildParams(),
                        metric: str = "euclidean",
                        max_iterations: int = 12,
                        min_update_fraction: float = 0.001,
                        device: DeviceSpec = QUADRO_P5000,
                        costs: CostTable = DEFAULT_COSTS
                        ) -> ConstructionReport:
    """Build a KNN graph with batched NN-Descent on the simulated GPU.

    Args:
        points: ``(n, d)`` float matrix.
        k: Neighbors per vertex (``d_min == d_max == k``).
        params: Supplies ``n_threads``, ``n_blocks`` and ``seed``.
        metric: Metric name.
        max_iterations: Hard refinement cap.
        min_update_fraction: Stop when an iteration updates fewer than
            this fraction of all ``n * k`` slots.
        device: Simulated device.
        costs: Cycle cost table.

    Returns:
        A :class:`ConstructionReport`; ``details["n_iterations"]`` records
        convergence.
    """
    points = np.asarray(points)
    if points.ndim != 2 or len(points) == 0:
        raise ConstructionError(
            f"points must be a non-empty 2-D matrix, got shape {points.shape}"
        )
    n = len(points)
    if not 1 <= k < n:
        raise ConstructionError(f"k must lie in [1, {n - 1}], got {k}")
    metric_obj = get_metric(metric)
    rng = np.random.default_rng(params.seed)
    n_t = params.n_threads
    n_dims = points.shape[1]
    kernel = KernelLaunch(device, n_t, costs=costs)

    # Random initialisation (one block per vertex).
    graph = ProximityGraph(n, k, metric)
    init_choices = np.empty((n, k), dtype=np.int64)
    for v in range(n):
        choices = rng.choice(n - 1, size=k, replace=False)
        choices[choices >= v] += 1
        init_choices[v] = choices
    init_dists = np.empty((n, k))
    for v in range(n):
        init_dists[v] = metric_obj.one_to_many(points[v],
                                               points[init_choices[v]])
        order = np.lexsort((init_choices[v], init_dists[v]))
        graph.set_row(v, init_choices[v][order], init_dists[v][order])

    per_vector = costs.single_distance_cycles(n_dims, n_t)
    init_cycles = k * per_vector + costs.bitonic_sort_cycles(k, n_t)
    launch = kernel.run(init_cycles, n_blocks=n)
    total_seconds = launch.seconds
    phase_seconds: Dict[str, float] = {"initialization": launch.seconds}
    category = {
        PhaseCategory.DISTANCE: launch.seconds * (k * per_vector)
        / init_cycles,
        PhaseCategory.STRUCTURE: launch.seconds
        * costs.bitonic_sort_cycles(k, n_t) / init_cycles,
    }

    threshold = max(1, int(min_update_fraction * n * k))
    updates_history: List[int] = []
    for _ in range(max_iterations):
        rows = graph.neighbor_ids[:, :k]
        # General neighborhoods B[v] = forward ∪ reverse neighbors (Dong
        # et al.); the reverse table is built with a bounded scatter, the
        # GPU-friendly fixed-width equivalent of reverse adjacency.
        rev = np.full((n, k), -1, dtype=np.int64)
        rev_counts = np.zeros(n, dtype=np.int64)
        for v in range(n):
            for u in rows[v]:
                u = int(u)
                if u >= 0 and rev_counts[u] < k:
                    rev[u, rev_counts[u]] = v
                    rev_counts[u] += 1
        both = np.concatenate([rows, rev], axis=1)  # (n, 2k)
        # Candidate generation: neighbors-of-neighbors over B.  Batched
        # form of "each pair of neighbors of each vertex proposes edges".
        safe = np.where(both < 0, 0, both)
        cand = both[safe.reshape(-1)].reshape(n, 4 * k * k)
        cand[np.repeat(both < 0, 2 * k, axis=1)] = -1
        own = np.arange(n)[:, None]
        invalid = (cand == own) | (cand < 0)

        # Bulk distance computation, one block per vertex, chunked over
        # vertices to bound the gathered-tensor footprint.
        width = cand.shape[1]
        dists = np.empty((n, width))
        chunk = max(1, (1 << 24) // max(width * n_dims, 1))
        if metric == "cosine":
            def unit(m):
                norms = np.linalg.norm(m, axis=-1, keepdims=True)
                return m / np.where(norms > 0.0, norms, 1.0)
            unit_points = unit(points.astype(np.float64))
        for lo in range(0, n, chunk):
            hi = min(lo + chunk, n)
            block = np.where(invalid[lo:hi], 0, cand[lo:hi])
            if metric == "euclidean":
                gathered = points[block].astype(np.float64)
                diff = gathered - points[lo:hi, None, :]
                dists[lo:hi] = np.einsum("nkd,nkd->nk", diff, diff)
            else:
                dists[lo:hi] = 1.0 - np.einsum(
                    "nkd,nd->nk", unit_points[block], unit_points[lo:hi])
        dists[invalid] = np.inf

        distance_cycles = cand.shape[1] * per_vector
        merge_cycles = costs.adjacency_merge_cycles(k, cand.shape[1], n_t)
        launch = kernel.run(distance_cycles + merge_cycles, n_blocks=n)
        total_seconds += launch.seconds
        phase_seconds["refinement"] = (
            phase_seconds.get("refinement", 0.0) + launch.seconds)
        mix = distance_cycles + merge_cycles
        category[PhaseCategory.DISTANCE] += launch.seconds * (
            distance_cycles / mix)
        category[PhaseCategory.STRUCTURE] += launch.seconds * (
            merge_cycles / mix)

        # Adjacency update (Step 3 style bounded merge per vertex).
        updates = 0
        for v in range(n):
            live = ~invalid[v]
            if not live.any():
                continue
            before = graph.neighbor_ids[v, :k].copy()
            graph.merge_row(v, cand[v][live], dists[v][live])
            updates += int((graph.neighbor_ids[v, :k] != before).sum())
        updates_history.append(updates)
        if updates < threshold:
            break

    return ConstructionReport(
        algorithm="ggraphcon-knng",
        graph=graph,
        seconds=total_seconds,
        phase_seconds=phase_seconds,
        category_seconds=category,
        n_points=n,
        details={
            "k": float(k),
            "n_iterations": float(len(updates_history)),
            "final_updates": float(updates_history[-1]
                                   if updates_history else 0),
        },
    )
