"""Validated parameter bundles for search and construction.

Centralising validation here means every algorithm entry point fails fast
with one clear message instead of deep inside a kernel loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.gpusim.sorting import is_pow2, next_pow2


@dataclass(frozen=True)
class SearchParams:
    """Parameters of one GANNS (or SONG) search invocation.

    Attributes:
        k: Neighbors returned per query.
        l_n: Length of the result/candidate pool ``N``.  The paper sets
            ``l_n`` to a power of two "for ease of GPU memory management";
            values of 32, 64 or 128 are typical.
        e: Explored-vertex budget — "we only consider the first e vertices
            in N for exploration", the fine-grained efficiency/accuracy
            knob of Section V.  Defaults to ``l_n``.
        n_threads: Threads per block (``n_t``); Figure 10 sweeps 4..32.
        backend: Execution backend — ``"reference"`` or ``"fast"``; or
            ``None`` to defer to the ``REPRO_BACKEND`` environment
            variable (reference when unset).  Backends trade wall-clock
            only: results and cycle charges are identical.
        quant: Quantized staged search — ``"fp16"``, ``"int8"`` or
            ``"pca"`` to traverse on that compressed representation and
            rerank the candidate pool with exact distances; ``"off"``
            to force the exact path; ``None`` to defer to the
            ``REPRO_QUANT`` environment variable (exact when unset).
            **Lossy**, unlike ``backend``: recall may differ from the
            exact search (reported distances stay exact — the rerank
            recomputes them at full precision).
        rerank_factor: Candidate over-fetch of the staged search: the
            compressed traversal retains ``rerank_factor * l_n``
            candidates for the exact rerank.  Power of two (the pool
            stays bitonic-friendly); ignored when quantization is off.
    """

    k: int = 10
    l_n: int = 64
    e: Optional[int] = None
    n_threads: int = 32
    backend: Optional[str] = None
    quant: Optional[str] = None
    rerank_factor: int = 2

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ConfigurationError(f"k must be positive, got {self.k}")
        if self.l_n <= 0:
            raise ConfigurationError(f"l_n must be positive, got {self.l_n}")
        if not is_pow2(self.l_n):
            raise ConfigurationError(
                f"l_n must be a power of two (the paper's GPU memory "
                f"layout), got {self.l_n}; nearest valid value is "
                f"{next_pow2(self.l_n)}"
            )
        if self.k > self.l_n:
            raise ConfigurationError(
                f"k ({self.k}) cannot exceed l_n ({self.l_n})"
            )
        if self.e is not None:
            if not 1 <= self.e <= self.l_n:
                raise ConfigurationError(
                    f"e must lie in [1, l_n={self.l_n}], got {self.e}"
                )
        if self.n_threads <= 0:
            raise ConfigurationError(
                f"n_threads must be positive, got {self.n_threads}"
            )
        if self.backend is not None:
            # Import here: repro.perf.backend is dependency-free, but
            # params is imported by nearly everything.
            from repro.perf.backend import VALID_BACKENDS
            if self.backend not in VALID_BACKENDS:
                raise ConfigurationError(
                    f"unknown execution backend {self.backend!r}; valid: "
                    f"{VALID_BACKENDS}"
                )
        if self.quant is not None:
            from repro.perf.quant import VALID_QUANTS
            if self.quant not in VALID_QUANTS:
                raise ConfigurationError(
                    f"unknown quantization mode {self.quant!r}; valid: "
                    f"{VALID_QUANTS}"
                )
        if self.rerank_factor < 1 or not is_pow2(self.rerank_factor):
            raise ConfigurationError(
                f"rerank_factor must be a positive power of two (the "
                f"staged pool stays bitonic-friendly), got "
                f"{self.rerank_factor}"
            )

    @property
    def explore_budget(self) -> int:
        """The effective ``e``: explicit value or the full pool."""
        return self.e if self.e is not None else self.l_n

    def with_overrides(self, **kwargs) -> "SearchParams":
        """Copy with some fields replaced (re-validated)."""
        return replace(self, **kwargs)

    def signature(self) -> tuple:
        """Hashable identity of every result-affecting field.

        Two invocations with equal signatures (on the same index) return
        identical results, so the serving layer can key its result cache
        on ``(quantized query, signature)``.  ``n_threads`` only shapes
        the simulated clock, never the answer, and is excluded — as is
        ``backend``, which changes wall-clock but never results.

        ``quant``/``rerank_factor`` are *also* excluded, but for the
        opposite reason: they are execution-mode knobs like ``backend``
        yet **lossy**, so equal signatures only promise identical
        results within one resolved quantization mode.  Serving layers
        therefore namespace their cache keys by the resolved mode (see
        ``ServeEngine.replay``) — a quantized hit must never answer an
        exact request.
        """
        return ("ganns", self.k, self.l_n, self.explore_budget)


@dataclass(frozen=True)
class BuildParams:
    """Parameters of one proximity-graph construction.

    Attributes:
        d_min: Nearest neighbors linked per inserted point (and the number
            of neighbors searched during construction).
        d_max: Adjacency-row capacity.  The evaluation default is
            ``d_max=32, d_min=16``.
        n_blocks: Thread blocks used by construction kernels (``n_b``);
            Figure 14 sweeps 50..800.  Also the number of local-graph
            groups GGraphCon partitions the points into.
        n_threads: Threads per block inside construction kernels.
        ef_construction: Beam/pool width of insertion-time searches;
            defaults to ``2 * d_min``.
        search_l_n: Pool length for GANNS-kernel construction searches;
            defaults to the smallest power of two >= ef_construction.
        seed: Seed for randomised pieces (HNSW levels, KNN init).
    """

    d_min: int = 16
    d_max: int = 32
    n_blocks: int = 800
    n_threads: int = 32
    ef_construction: Optional[int] = None
    search_l_n: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.d_min <= 0 or self.d_max <= 0:
            raise ConfigurationError(
                f"d_min and d_max must be positive, got {self.d_min}, "
                f"{self.d_max}"
            )
        if self.d_min > self.d_max:
            raise ConfigurationError(
                f"d_min ({self.d_min}) cannot exceed d_max ({self.d_max})"
            )
        if self.n_blocks <= 0:
            raise ConfigurationError(
                f"n_blocks must be positive, got {self.n_blocks}"
            )
        if self.n_threads <= 0:
            raise ConfigurationError(
                f"n_threads must be positive, got {self.n_threads}"
            )
        if self.ef_construction is not None and self.ef_construction < self.d_min:
            raise ConfigurationError(
                f"ef_construction ({self.ef_construction}) must be >= "
                f"d_min ({self.d_min})"
            )
        if self.search_l_n is not None and not is_pow2(self.search_l_n):
            raise ConfigurationError(
                f"search_l_n must be a power of two, got {self.search_l_n}"
            )

    @property
    def effective_ef(self) -> int:
        """Insertion-search beam width: explicit or ``2 * d_min``."""
        return (self.ef_construction if self.ef_construction is not None
                else 2 * self.d_min)

    @property
    def effective_search_l_n(self) -> int:
        """Pool length for construction-time GANNS searches."""
        if self.search_l_n is not None:
            return self.search_l_n
        return max(next_pow2(self.effective_ef), next_pow2(self.d_min))

    def with_overrides(self, **kwargs) -> "BuildParams":
        """Copy with some fields replaced (re-validated)."""
        return replace(self, **kwargs)
