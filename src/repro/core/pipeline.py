"""Streaming query pipeline: overlapping transfer with computation.

Section III-B's remark: "CUDA provides a stream mechanism that supports
asynchronous processing of kernel computation and data transfer. That is
to say, data transfer can be overlapped with querying on the GPU even
when several batches of points need to be processed."

:func:`stream_batches` simulates exactly that double-buffered pipeline:
batch ``i+1`` uploads while batch ``i`` computes, and batch ``i-1``'s
results download concurrently.  The elapsed time of the whole stream is
therefore ``upload(first) + sum(max(compute_i, transfers overlapping
it)) + download(last)`` — which collapses to compute-bound for every
realistic ANN workload, the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Union

import numpy as np

from repro.core.ganns import ganns_search
from repro.core.params import SearchParams
from repro.core.results import SearchReport
from repro.errors import SearchError
from repro.graphs.adjacency import ProximityGraph
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.device import DeviceSpec, QUADRO_P5000
from repro.gpusim.memory import TransferModel


@dataclass(frozen=True)
class BatchTiming:
    """Per-batch timing of the streamed execution."""

    n_queries: int
    upload_seconds: float
    compute_seconds: float
    download_seconds: float


@dataclass(frozen=True)
class StreamResult:
    """Outcome of one streamed multi-batch search.

    Attributes:
        ids: ``(total_queries, k)`` neighbor ids across all batches.
        dists: Matching distances.
        batches: Per-batch timings.
        serial_seconds: Elapsed time *without* stream overlap (upload,
            compute, download strictly in sequence per batch).
        overlapped_seconds: Elapsed time with double buffering.
        reports: The per-batch :class:`SearchReport` objects.
    """

    ids: np.ndarray
    dists: np.ndarray
    batches: List[BatchTiming]
    serial_seconds: float
    overlapped_seconds: float
    reports: List[SearchReport]

    @property
    def overlap_saving(self) -> float:
        """Fraction of serial time removed by stream overlap."""
        if self.serial_seconds <= 0:
            return 0.0
        return 1.0 - self.overlapped_seconds / self.serial_seconds


def stream_batches(graph: ProximityGraph, points: np.ndarray,
                   queries: np.ndarray, params: SearchParams,
                   batch_size: int = 2000,
                   device: DeviceSpec = QUADRO_P5000,
                   costs: CostTable = DEFAULT_COSTS,
                   entry: Union[int, np.ndarray] = 0,
                   fault_hook: Optional[
                       Callable[[int, BatchTiming], BatchTiming]
                   ] = None) -> StreamResult:
    """Search a query stream in batches with simulated stream overlap.

    Args:
        graph: Proximity graph over ``points``.
        points: ``(n, d)`` data matrix.
        queries: ``(m, d)`` query stream.
        params: GANNS search parameters.
        batch_size: Queries per batch (the paper's example uses 2000).
        device: Simulated device (provides PCIe figures).
        costs: Cycle cost table.
        entry: Start vertex, or a per-query ``(m,)`` id array; sliced
            along with the queries when per-query entries are given.
        fault_hook: Fault-injection point (:mod:`repro.faults`): called
            per batch with ``(batch_index, timing)`` once the batch's
            fault-free timing is known; may return an adjusted timing
            (e.g. a stalled kernel) or raise a
            :class:`repro.errors.FaultError` to kill the whole stream
            dispatch, discarding its results.

    Returns:
        A :class:`StreamResult` with both serial and overlapped timings.
    """
    queries = np.asarray(queries)
    if queries.ndim != 2 or len(queries) == 0:
        raise SearchError(
            f"queries must be a non-empty 2-D matrix, got shape "
            f"{queries.shape}"
        )
    if batch_size <= 0:
        raise SearchError(f"batch_size must be positive, got {batch_size}")
    entries = np.asarray(entry, dtype=np.int64)
    if entries.ndim not in (0, 1):
        raise SearchError(
            f"entry must be a scalar or a (n_queries,) array, got shape "
            f"{entries.shape}"
        )
    if entries.ndim == 1 and len(entries) != len(queries):
        raise SearchError(
            f"per-query entry array has {len(entries)} entries for "
            f"{len(queries)} queries"
        )
    transfer = TransferModel(device)

    reports: List[SearchReport] = []
    timings: List[BatchTiming] = []
    ids_parts = []
    dists_parts = []
    for start in range(0, len(queries), batch_size):
        batch = queries[start:start + batch_size]
        batch_entry = (entries if entries.ndim == 0
                       else entries[start:start + batch_size])
        report = ganns_search(graph, points, batch, params,
                              entry=batch_entry, costs=costs)
        launch = report.launch(device, costs)
        upload = transfer.transfer_seconds(
            transfer.query_upload_bytes(len(batch), queries.shape[1]))
        download = transfer.transfer_seconds(
            transfer.result_download_bytes(len(batch), params.k))
        reports.append(report)
        timing = BatchTiming(n_queries=len(batch),
                             upload_seconds=upload,
                             compute_seconds=launch.seconds,
                             download_seconds=download)
        if fault_hook is not None:
            timing = fault_hook(len(timings), timing)
        timings.append(timing)
        ids_parts.append(report.ids)
        dists_parts.append(report.dists)

    serial = sum(t.upload_seconds + t.compute_seconds + t.download_seconds
                 for t in timings)

    # Double-buffered schedule: three engines (upload, compute, download)
    # each process batches in order; engine stage i of batch b starts
    # when both the engine is free and stage i-1 of batch b finished.
    upload_free = compute_free = download_free = 0.0
    for t in timings:
        upload_done = upload_free + t.upload_seconds
        upload_free = upload_done
        compute_done = max(compute_free, upload_done) + t.compute_seconds
        compute_free = compute_done
        download_done = max(download_free, compute_done) \
            + t.download_seconds
        download_free = download_done
    overlapped = download_free

    return StreamResult(
        ids=np.concatenate(ids_parts, axis=0),
        dists=np.concatenate(dists_parts, axis=0),
        batches=timings,
        serial_seconds=serial,
        overlapped_seconds=overlapped,
        reports=reports,
    )
