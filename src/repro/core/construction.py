"""GGraphCon: divide-and-conquer GPU NSW construction (Algorithm 2).

The two straightforward schemes both fail (Section IV-A): sequential
insertion wastes all inter-block parallelism, and naive batch-parallel
insertion ignores links between points of the same batch and ruins graph
quality.  GGraphCon gets both properties at once:

- **Phase 1 — local graph construction.**  The points are partitioned into
  ``t + 1`` equal groups; each group builds its own small NSW graph inside
  one thread block (sequential within the block, all blocks in parallel).
  Each point's search results are recorded twice: in the graph ``G`` and in
  ``G'`` (``v.N'``), the *forward* neighbors among earlier points of the
  same group.

- **Phase 2 — local graph merge.**  The remaining ``t`` local graphs merge
  into ``G_0`` one after another.  For group ``P_i``: (step 1) every vertex
  searches ``d_min`` neighbors against the current ``G_0`` — one block per
  vertex, all in parallel — and merges them with its saved ``v.N'`` to form
  its final forward edges; the implied backward edges go into an edge list
  ``E``.  (Step 2) ``E`` is bitonic-sorted by starting vertex and turned
  into CSR segments with a flag + prefix-sum pass.  (Step 3) each starting
  vertex's segment is bitonic-merged into its adjacency row, best ``d_max``
  kept.

With exact neighbor search the result provably equals the sequentially
inserted NSW graph (Section IV-C); the test suite verifies that theorem,
and Figure 12's benchmark shows the approximate-search quality match.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.beam import BeamSearchResult, beam_search
from repro.baselines.nsw_cpu import exact_prefix_knn
from repro.core.construction_costs import price_search
from repro.core.params import BuildParams
from repro.core.results import ConstructionReport
from repro.errors import ConstructionError
from repro.graphs.adjacency import ProximityGraph
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.device import DeviceSpec, QUADRO_P5000
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.scan import csr_offsets_from_sorted_ids
from repro.gpusim.tracker import PhaseCategory
from repro.metrics.distance import get_metric
from repro.perf.backend import FAST, resolve_backend
from repro.perf.construction import (
    insert_bidirectional_batch,
    merge_forward_batch,
    merge_segments_batch,
)


def _exact_beam_stub(n_candidates: int) -> BeamSearchResult:
    """Counter stub for exact-mode searches (used by the theorem tests)."""
    return BeamSearchResult(
        ids=np.empty(0, dtype=np.int64), dists=np.empty(0),
        n_iterations=max(n_candidates, 1),
        n_distance_computations=n_candidates,
        n_heap_ops=0, n_hash_probes=n_candidates)


class _TimeAccumulator:
    """Collects per-phase seconds and the distance/structure split."""

    def __init__(self) -> None:
        self.phase_seconds: Dict[str, float] = {}
        self.category_seconds: Dict[PhaseCategory, float] = {
            PhaseCategory.DISTANCE: 0.0,
            PhaseCategory.STRUCTURE: 0.0,
        }
        self.total_seconds = 0.0

    def add(self, phase: str, seconds: float, distance_cycles: float,
            structure_cycles: float) -> None:
        """Record a launch, splitting its time by the cycle mix."""
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds
        self.total_seconds += seconds
        mix = distance_cycles + structure_cycles
        if mix > 0:
            self.category_seconds[PhaseCategory.DISTANCE] += (
                seconds * distance_cycles / mix)
            self.category_seconds[PhaseCategory.STRUCTURE] += (
                seconds * structure_cycles / mix)
        else:
            self.category_seconds[PhaseCategory.STRUCTURE] += seconds


def _insert_into_local_graph(local_graph: ProximityGraph,
                             local_points: np.ndarray, local_vertex: int,
                             d_min: int, ef: int, metric, exact: bool
                             ) -> Tuple[np.ndarray, np.ndarray,
                                        BeamSearchResult]:
    """One sequential NSW insertion into a group's local graph.

    Returns the chosen neighbor ids (local), their distances, and the
    counted traversal for pricing.
    """
    if exact:
        neighbor_ids = exact_prefix_knn(local_points, local_vertex, d_min,
                                        metric)
        traversal = _exact_beam_stub(local_vertex)
    elif local_vertex <= d_min:
        neighbor_ids = np.arange(local_vertex, dtype=np.int64)
        traversal = _exact_beam_stub(local_vertex)
    else:
        result = beam_search(local_graph, local_points,
                             local_points[local_vertex], k=d_min, ef=ef,
                             entry=0, metric=metric)
        neighbor_ids = result.ids
        traversal = result
    if len(neighbor_ids):
        dists = metric.one_to_many(local_points[local_vertex],
                                   local_points[neighbor_ids])
    else:
        dists = np.empty(0)
    return neighbor_ids, dists, traversal


def build_nsw_gpu(points: np.ndarray, params: BuildParams,
                  search_kernel: str = "ganns", metric: str = "euclidean",
                  exact: bool = False,
                  device: DeviceSpec = QUADRO_P5000,
                  costs: CostTable = DEFAULT_COSTS,
                  backend: Optional[str] = None) -> ConstructionReport:
    """Build an NSW graph with GGraphCon on the simulated GPU.

    Args:
        points: ``(n, d)`` float matrix; row order is insertion order.
        params: Build parameters; ``params.n_blocks`` is both the group
            count ``t + 1`` and the grid width of the merge launches.
        search_kernel: ``"ganns"`` or ``"song"`` — which search kernel the
            construction uses (GGraphCon_GANNS vs GGraphCon_SONG).
        metric: Metric name.
        exact: Use exact nearest-neighbor search everywhere.  This is the
            hypothesis of the Section IV-C equivalence theorem; slower, and
            meant for tests and small inputs.
        device: Simulated device.
        costs: Cycle cost table.
        backend: Execution backend (``"reference"``/``"fast"``); ``None``
            defers to the ``REPRO_BACKEND`` environment variable.  The
            fast backend batches the per-vertex insert/merge loops and
            produces the identical graph and cycle accounting.

    Returns:
        A :class:`repro.core.results.ConstructionReport` whose ``graph``
        is the merged ``G_0``.
    """
    use_fast = resolve_backend(backend) == FAST
    points = np.asarray(points)
    if points.ndim != 2 or len(points) == 0:
        raise ConstructionError(
            f"points must be a non-empty 2-D matrix, got shape {points.shape}"
        )
    n = len(points)
    n_dims = points.shape[1]
    metric_obj = get_metric(metric)
    d_min, d_max = params.d_min, params.d_max
    ef = params.effective_ef
    l_n = params.effective_search_l_n
    n_t = params.n_threads
    n_groups = min(params.n_blocks, n)

    kernel = KernelLaunch(device, n_t, costs=costs)
    times = _TimeAccumulator()

    # Partition into contiguous groups (insertion ids are preserved, which
    # is what the Section IV-C proof needs).
    boundaries = np.linspace(0, n, n_groups + 1).astype(np.int64)
    groups: List[np.ndarray] = [
        np.arange(boundaries[i], boundaries[i + 1])
        for i in range(n_groups) if boundaries[i] < boundaries[i + 1]
    ]
    n_groups = len(groups)

    graph = ProximityGraph(n, d_max, metric)
    # G': forward neighbors of each vertex within its own group.
    forward_ids = np.full((n, d_min), -1, dtype=np.int64)
    forward_dists = np.full((n, d_min), np.inf, dtype=np.float64)

    # ------------------------------------------------------------------
    # Phase 1 — local graph construction (one block per group).
    # ------------------------------------------------------------------
    local_graphs: List[ProximityGraph] = []
    block_cycles = np.zeros(n_groups)
    block_distance = np.zeros(n_groups)
    block_structure = np.zeros(n_groups)
    for g, group in enumerate(groups):
        local_points = points[group]
        local_graph = ProximityGraph(len(group), d_max, metric)
        for local_vertex in range(1, len(group)):
            neighbor_ids, dists, traversal = _insert_into_local_graph(
                local_graph, local_points, local_vertex, d_min, ef,
                metric_obj, exact)
            charge = price_search(search_kernel, traversal, l_n, d_max,
                                  n_dims, n_t, ef, costs)
            block_distance[g] += charge.distance_cycles
            block_structure[g] += charge.structure_cycles
            insert_cost = costs.backward_insert_cycles(d_max, n_t)
            if use_fast and len(neighbor_ids):
                insert_bidirectional_batch(local_graph, local_vertex,
                                           np.asarray(neighbor_ids),
                                           np.asarray(dists,
                                                      dtype=np.float64))
                # insert_cost is integral, so the product equals the
                # reference's repeated addition bit-for-bit.
                block_structure[g] += len(neighbor_ids) * 2 * insert_cost
            else:
                for u, dist in zip(neighbor_ids, dists):
                    local_graph.insert_edge(local_vertex, int(u), float(dist))
                    local_graph.insert_edge(int(u), local_vertex, float(dist))
                    block_structure[g] += 2 * insert_cost
            count = len(neighbor_ids)
            forward_ids[group[local_vertex], :count] = group[neighbor_ids]
            forward_dists[group[local_vertex], :count] = dists
        local_graphs.append(local_graph)
        block_cycles[g] = block_distance[g] + block_structure[g]

    launch = kernel.run(block_cycles)
    times.add("local_construction", launch.seconds,
              float(block_distance.sum()), float(block_structure.sum()))

    # Seed G_0 with group 0's local graph.
    group0 = groups[0]
    for local_vertex, global_vertex in enumerate(group0):
        degree = local_graphs[0].degrees[local_vertex]
        local_row = local_graphs[0].neighbor_ids[local_vertex, :degree]
        graph.set_row(global_vertex, group0[local_row],
                      local_graphs[0].neighbor_dists[local_vertex, :degree])

    # ------------------------------------------------------------------
    # Phase 2 — iteratively merge local graphs into G_0.
    # ------------------------------------------------------------------
    merge_iterations = 0
    grid_threads = max(n_groups * n_t, n_t)
    for i in range(1, n_groups):
        merge_iterations += 1
        merge_group_into_graph(
            graph, points, groups[i], forward_ids, forward_dists,
            params=params, search_kernel=search_kernel,
            metric_obj=metric_obj, exact=exact, kernel=kernel,
            times=times, costs=costs, use_fast=use_fast,
            grid_threads=grid_threads)

    return ConstructionReport(
        algorithm=f"ggraphcon-{search_kernel}",
        graph=graph,
        seconds=times.total_seconds,
        phase_seconds=times.phase_seconds,
        category_seconds=times.category_seconds,
        n_points=n,
        details={
            "n_groups": float(n_groups),
            "merge_iterations": float(merge_iterations),
            "d_min": float(d_min),
            "d_max": float(d_max),
        },
    )


def merge_group_into_graph(graph: ProximityGraph, points: np.ndarray,
                           group: np.ndarray, forward_ids: np.ndarray,
                           forward_dists: np.ndarray, *,
                           params: BuildParams, search_kernel: str,
                           metric_obj, exact: bool, kernel: KernelLaunch,
                           times: _TimeAccumulator, costs: CostTable,
                           use_fast: bool, grid_threads: int,
                           entry: int = 0,
                           exclude_mask: Optional[np.ndarray] = None
                           ) -> None:
    """Merge one local group into ``G_0`` (Algorithm 2's Phase-2 body).

    This is the three-step merge iteration shared by
    :func:`build_nsw_gpu` (which calls it once per local graph) and
    :func:`insert_batch_nsw` (which calls it once per streaming batch):
    (step 1) every group vertex searches ``d_min`` neighbors against the
    current ``G_0`` and unions them with its saved forward set ``v.N'``,
    emitting the implied backward edges into ``E``; (step 2) ``E`` is
    bitonic-sorted and prefix-summed into CSR segments; (step 3) each
    segment bitonic-merges into its vertex's adjacency row.

    Args:
        graph: The accumulated ``G_0``; mutated in place.  Rows for
            ``group``'s vertices must already be allocated.
        points: Full ``(n, d)`` point matrix (old and group points).
        group: Global vertex ids of the group being merged, ascending.
        forward_ids: ``(n, d_min)`` forward-neighbor ids (``v.N'``),
            ``-1``-padded; only ``group``'s rows are read.
        forward_dists: Matching distances, ``inf``-padded.
        params: Build parameters (degree bounds, beam widths, threads).
        search_kernel: ``"ganns"`` or ``"song"`` for pricing.
        metric_obj: Resolved metric object.
        exact: Exact-search mode (the Section IV-C theorem hypothesis).
        kernel: Launch context charging the shared accumulator.
        times: Accumulator collecting per-phase seconds.
        costs: Cycle cost table.
        use_fast: Fast-backend toggle (already resolved by the caller).
        grid_threads: Grid width of the gather-scatter launches.
        entry: Start vertex for the step-1 searches (``0`` during a
            build; the current live entry for streaming inserts).
        exclude_mask: Optional ``(n,)`` boolean mask of vertices that
            must never be chosen as neighbors (tombstones).  Excluded
            vertices may still route the search; they are filtered from
            its results.
    """
    d_min, d_max = params.d_min, params.d_max
    ef = params.effective_ef
    l_n = params.effective_search_l_n
    n_t = params.n_threads
    n_dims = points.shape[1]
    prefix_end = int(group[0])  # G_0 currently holds points[:prefix_end]

    # Step 1 — per-vertex forward-edge search against G_0 (one block
    # per vertex) and backward-edge emission into E.
    vertex_cycles = np.zeros(len(group))
    step_distance = 0.0
    step_structure = 0.0
    edge_src: List[int] = []
    edge_dst: List[int] = []
    edge_dist: List[float] = []
    search_ids: List[np.ndarray] = []
    search_dists: List[np.ndarray] = []
    merge_forward_cost = costs.ganns_merge_cycles(d_min, d_min, n_t)
    for j, v in enumerate(group):
        if exact:
            # Exact d_min neighbors among G_0's points only; the
            # within-group part comes from v.N', exercising the
            # N ∪ N' merge the Section IV-C proof relies on.
            all_prefix = metric_obj.one_to_many(points[v],
                                                points[:prefix_end])
            take = min(d_min, prefix_end)
            part = np.argpartition(all_prefix, take - 1)[:take] \
                if take < prefix_end else np.arange(prefix_end)
            sub_order = np.lexsort((part, all_prefix[part]))
            ids = part[sub_order][:take].astype(np.int64)
            dists = all_prefix[ids]
            traversal = _exact_beam_stub(prefix_end)
        else:
            result = beam_search(graph, points, points[v], k=d_min,
                                 ef=ef, entry=entry, metric=metric_obj)
            ids, dists = result.ids, result.dists
            traversal = result
        if exclude_mask is not None and len(ids):
            keep = ~exclude_mask[ids]
            ids, dists = ids[keep], dists[keep]
        charge = price_search(search_kernel, traversal, l_n, d_max,
                              n_dims, n_t, ef, costs)
        vertex_cycles[j] = charge.total + merge_forward_cost
        step_distance += charge.distance_cycles
        step_structure += charge.structure_cycles + merge_forward_cost

        if use_fast:
            # Searches only reach G_0's prefix (nothing links to
            # this group's vertices until Step 3 applies the
            # backward edges), so row writes batch safely after
            # the search loop.
            search_ids.append(np.asarray(ids, dtype=np.int64))
            search_dists.append(np.asarray(dists, dtype=np.float64))
            continue

        # v.N := top d_min of (search results ∪ v.N').
        mask = forward_ids[v] >= 0
        all_ids = np.concatenate([ids, forward_ids[v][mask]])
        all_dists = np.concatenate([dists, forward_dists[v][mask]])
        order = np.lexsort((all_ids, all_dists))
        all_ids, all_dists = all_ids[order], all_dists[order]
        _, unique_idx = np.unique(all_ids, return_index=True)
        unique_idx.sort()
        all_ids = all_ids[unique_idx][:d_min]
        all_dists = all_dists[unique_idx][:d_min]
        order = np.lexsort((all_ids, all_dists))
        graph.set_row(int(v), all_ids[order], all_dists[order])

        for u, dist in zip(all_ids, all_dists):
            edge_src.append(int(u))
            edge_dst.append(int(v))
            edge_dist.append(float(dist))

    launch = kernel.run(vertex_cycles)
    times.add("merge_search", launch.seconds, step_distance,
              step_structure)

    if use_fast:
        src, dst, dist = merge_forward_batch(
            graph, group, search_ids, search_dists, forward_ids,
            forward_dists, d_min)
        if len(src) == 0:
            return
    else:
        if not edge_src:
            return
        # Step 2 — GatherScatter: bitonic sort E by (starting vertex,
        # distance, ending vertex), then flags + prefix sum give CSR
        # segment offsets.
        src = np.asarray(edge_src, dtype=np.int64)
        dst = np.asarray(edge_dst, dtype=np.int64)
        dist = np.asarray(edge_dist, dtype=np.float64)
    order = np.lexsort((dst, dist, src))
    src, dst, dist = src[order], dst[order], dist[order]
    offsets = csr_offsets_from_sorted_ids(src)

    sort_cycles = costs.bitonic_sort_cycles(len(src), grid_threads)
    scan_cycles = costs.prefix_sum_cycles(len(src), grid_threads)
    seconds = kernel.cycles_to_seconds(sort_cycles + scan_cycles)
    times.add("merge_gather_scatter", seconds, 0.0,
              sort_cycles + scan_cycles)

    # Step 3 — one block per starting vertex merges its backward-edge
    # segment into the adjacency row (best d_max survive).
    n_segments = len(offsets) - 1
    if use_fast:
        merge_segments_batch(graph, src, dst, dist, offsets)
        segment_cycles = np.array([
            costs.adjacency_merge_cycles(
                d_max, int(offsets[s + 1] - offsets[s]), n_t)
            for s in range(n_segments)
        ])
    else:
        segment_cycles = np.zeros(n_segments)
        for s in range(n_segments):
            lo, hi = offsets[s], offsets[s + 1]
            u = int(src[lo])
            graph.merge_row(u, dst[lo:hi], dist[lo:hi])
            segment_cycles[s] = costs.adjacency_merge_cycles(
                d_max, int(hi - lo), n_t)
    launch = kernel.run(segment_cycles)
    times.add("merge_update", launch.seconds, 0.0,
              float(segment_cycles.sum()))


def insert_batch_nsw(graph: ProximityGraph, points: np.ndarray,
                     new_ids: np.ndarray, params: BuildParams,
                     search_kernel: str = "ganns",
                     metric: str = "euclidean",
                     device: DeviceSpec = QUADRO_P5000,
                     costs: CostTable = DEFAULT_COSTS,
                     entry: int = 0,
                     exclude_mask: Optional[np.ndarray] = None,
                     backend: Optional[str] = None) -> ConstructionReport:
    """Stream one batch of new points into an existing NSW graph.

    The batch is treated exactly like one GGraphCon local group: Phase 1
    builds a local NSW graph among the batch points (one simulated
    block, recording each point's forward set ``v.N'``) and Phase 2
    merges the group into the live graph with the same three-step merge
    :func:`build_nsw_gpu` uses — so streaming inserts ride the same
    kernels and the same cycle cost model as the offline build.

    Args:
        graph: The live graph, already *grown*: rows for ``new_ids``
            exist with degree ``0``.  Mutated in place.
        points: ``(graph.n_vertices, d)`` matrix including the new
            points' vectors at their rows.
        new_ids: Ascending, contiguous global ids of the new batch
            (appended at the tail of the id space).
        params: Build parameters (same knobs as the offline build).
        search_kernel: ``"ganns"`` or ``"song"`` for pricing.
        metric: Metric name (must match the graph's).
        device: Simulated device.
        costs: Cycle cost table.
        entry: Entry vertex for the merge searches (a live vertex).
        exclude_mask: Optional ``(n,)`` tombstone mask; tombstoned
            vertices are never chosen as neighbors of the batch.
        backend: Execution backend override (``None`` defers to
            ``REPRO_BACKEND``).

    Returns:
        A :class:`repro.core.results.ConstructionReport` whose ``graph``
        is the mutated live graph and whose timings cover this batch
        only.
    """
    use_fast = resolve_backend(backend) == FAST
    points = np.asarray(points)
    group = np.asarray(new_ids, dtype=np.int64)
    if len(group) == 0:
        raise ConstructionError("insert batch must be non-empty")
    if points.ndim != 2 or len(points) != graph.n_vertices:
        raise ConstructionError(
            f"points must be ({graph.n_vertices}, d) to match the grown "
            f"graph, got shape {points.shape}"
        )
    if int(group[-1]) != graph.n_vertices - 1 \
            or not np.array_equal(group,
                                  np.arange(group[0], group[-1] + 1)):
        raise ConstructionError(
            "new_ids must be the contiguous tail of the id space "
            f"(got {group[0]}..{group[-1]} of {graph.n_vertices})"
        )
    if np.any(graph.degrees[group] != 0):
        raise ConstructionError(
            "rows for new_ids must be empty before the insert")

    metric_obj = get_metric(metric)
    d_min, d_max = params.d_min, params.d_max
    ef = params.effective_ef
    n_t = params.n_threads
    l_n = params.effective_search_l_n

    kernel = KernelLaunch(device, n_t, costs=costs)
    times = _TimeAccumulator()

    # Phase 1 — local graph over the batch (one block), recording N'.
    local_points = points[group]
    local_graph = ProximityGraph(len(group), d_max, metric)
    forward_ids = np.full((graph.n_vertices, d_min), -1, dtype=np.int64)
    forward_dists = np.full((graph.n_vertices, d_min), np.inf,
                            dtype=np.float64)
    block_distance = 0.0
    block_structure = 0.0
    insert_cost = costs.backward_insert_cycles(d_max, n_t)
    for local_vertex in range(1, len(group)):
        neighbor_ids, dists, traversal = _insert_into_local_graph(
            local_graph, local_points, local_vertex, d_min, ef,
            metric_obj, exact=False)
        charge = price_search(search_kernel, traversal, l_n, d_max,
                              points.shape[1], n_t, ef, costs)
        block_distance += charge.distance_cycles
        block_structure += charge.structure_cycles
        if use_fast and len(neighbor_ids):
            insert_bidirectional_batch(local_graph, local_vertex,
                                       np.asarray(neighbor_ids),
                                       np.asarray(dists,
                                                  dtype=np.float64))
            block_structure += len(neighbor_ids) * 2 * insert_cost
        else:
            for u, dist in zip(neighbor_ids, dists):
                local_graph.insert_edge(local_vertex, int(u), float(dist))
                local_graph.insert_edge(int(u), local_vertex, float(dist))
                block_structure += 2 * insert_cost
        count = len(neighbor_ids)
        forward_ids[group[local_vertex], :count] = group[neighbor_ids]
        forward_dists[group[local_vertex], :count] = dists
    launch = kernel.run(np.array([block_distance + block_structure]))
    times.add("local_construction", launch.seconds, block_distance,
              block_structure)

    # Phase 2 — merge the batch into the live graph.
    grid_threads = max(params.n_blocks * n_t, n_t)
    merge_group_into_graph(
        graph, points, group, forward_ids, forward_dists,
        params=params, search_kernel=search_kernel,
        metric_obj=metric_obj, exact=False, kernel=kernel, times=times,
        costs=costs, use_fast=use_fast, grid_threads=grid_threads,
        entry=entry, exclude_mask=exclude_mask)

    return ConstructionReport(
        algorithm=f"streaming-insert-{search_kernel}",
        graph=graph,
        seconds=times.total_seconds,
        phase_seconds=times.phase_seconds,
        category_seconds=times.category_seconds,
        n_points=len(group),
        details={
            "batch_size": float(len(group)),
            "d_min": float(d_min),
            "d_max": float(d_max),
            "entry": float(entry),
        },
    )
