"""High-level user API: :class:`GannsIndex`.

Everything the library offers behind one object: build a proximity graph
of any registered family (NSW / HNSW / KNN / CAGRA — see
:mod:`repro.core.backend`), search it (GANNS, SONG or the CPU beam
baseline), evaluate recall, and persist to disk.

Example:
    >>> from repro import GannsIndex
    >>> index = GannsIndex.build(points, graph_type="nsw")
    >>> ids, dists = index.search(queries, k=10)
"""

from __future__ import annotations

import os
from typing import Optional, Tuple, Union

import numpy as np

from repro.baselines.beam import beam_search_batch
from repro.baselines.hnsw_cpu import hnsw_entry_descent
from repro.baselines.song import SongParams, song_search
from repro.core.backend import STRATEGIES, get_backend  # noqa: F401 - STRATEGIES re-exported
from repro.core.hnsw import recover_original_ids
from repro.core.params import BuildParams, SearchParams
from repro.core.results import ConstructionReport, SearchReport
from repro.errors import ConfigurationError, SearchError
from repro.graphs.adjacency import HierarchicalGraph, ProximityGraph
from repro.graphs.validation import validate_graph
from repro.gpusim.sorting import next_pow2
from repro.metrics.recall import recall_at_k

SEARCH_ALGORITHMS = ("ganns", "song", "beam")

_INDEX_FORMAT_VERSION = 1


class GannsIndex:
    """A built proximity-graph index over a fixed point set.

    Build with :meth:`build` (or :meth:`from_graph` for a pre-built graph);
    query with :meth:`search`.  For HNSW indices, ids returned by search
    are automatically mapped back to the caller's original point ids.
    """

    def __init__(self, points: np.ndarray,
                 graph: Union[ProximityGraph, HierarchicalGraph],
                 graph_type: str, metric: str,
                 order: Optional[np.ndarray] = None,
                 build_report: Optional[ConstructionReport] = None):
        #: The family's registered backend (raises
        #: :class:`~repro.errors.UnknownFamilyError` on unknown names).
        self.backend = get_backend(graph_type)
        self.points = np.asarray(points)
        self.graph = graph
        self.graph_type = graph_type
        self.metric = metric
        #: HNSW only: ``order[shuffled_id] = original_id``.
        self.order = order
        self.build_report = build_report

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, points: np.ndarray, graph_type: str = "nsw",
              strategy: str = "ggraphcon", metric: str = "euclidean",
              params: Optional[BuildParams] = None,
              search_kernel: str = "ganns", knn_k: int = 16,
              validate: bool = True, **kwargs) -> "GannsIndex":
        """Build an index.

        Args:
            points: ``(n, d)`` float matrix.
            graph_type: A registered index family —
                :func:`repro.core.backend.backend_families` lists them
                (``"nsw"``, ``"hnsw"``, ``"knn"``, ``"cagra"``, ...).
            strategy: ``"ggraphcon"`` (the paper's scheme),
                ``"naive-parallel"`` or ``"serial"`` (NSW only).
            metric: ``"euclidean"`` or ``"cosine"``.
            params: Build parameters (defaults to the evaluation defaults,
                d_max=32 / d_min=16).
            search_kernel: ``"ganns"`` or ``"song"`` construction searches.
            knn_k: Row width for ``graph_type="knn"``.
            validate: Run structural validation on the result.
            **kwargs: Forwarded to the family's construction function.

        Returns:
            A ready-to-search :class:`GannsIndex`.

        Raises:
            UnknownFamilyError: When ``graph_type`` is not registered.
        """
        if params is None:
            params = BuildParams()
        points = np.asarray(points)
        backend = get_backend(graph_type)
        report = backend.build(points, params, metric=metric,
                               strategy=strategy,
                               search_kernel=search_kernel, knn_k=knn_k,
                               **kwargs)
        graph = report.graph
        order = backend.order_of(report)
        index_points = backend.index_points(points, report)

        if validate:
            flat = graph.bottom if isinstance(graph, HierarchicalGraph) \
                else graph
            validate_graph(flat)
        return cls(index_points, graph, graph_type, metric, order=order,
                   build_report=report)

    @classmethod
    def from_graph(cls, points: np.ndarray, graph: ProximityGraph,
                   metric: Optional[str] = None,
                   graph_type: str = "nsw") -> "GannsIndex":
        """Wrap an externally built flat graph into an index.

        Args:
            points: The point matrix the graph was built over.
            graph: A flat :class:`ProximityGraph`.
            metric: Metric name; defaults to the graph's.
            graph_type: The registered family the graph belongs to
                (resolved through the backend registry, so unknown names
                raise :class:`~repro.errors.UnknownFamilyError`).
        """
        return cls(points, graph, graph_type,
                   metric or graph.metric_name)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _flat_graph(self) -> ProximityGraph:
        if isinstance(self.graph, HierarchicalGraph):
            return self.graph.bottom
        return self.graph

    def _entries(self, queries: np.ndarray,
                 backend: Optional[str] = None) -> Union[int, np.ndarray]:
        """Per-query entry vertices (HNSW descends; flat graphs use 0)."""
        if not isinstance(self.graph, HierarchicalGraph):
            return 0
        from repro.perf.backend import FAST, resolve_backend
        if resolve_backend(backend) == FAST:
            from repro.perf.descent import hnsw_entry_descent_batch
            entries, _ = hnsw_entry_descent_batch(self.graph, self.points,
                                                  queries, self.metric)
            return entries
        entries = np.empty(len(queries), dtype=np.int64)
        for row, query in enumerate(queries):
            entries[row], _ = hnsw_entry_descent(self.graph, self.points,
                                                 query, self.metric)
        return entries

    def search_report(self, queries: np.ndarray, k: int = 10,
                      algorithm: str = "ganns",
                      l_n: Optional[int] = None, e: Optional[int] = None,
                      n_threads: int = 32,
                      backend: Optional[str] = None,
                      quant: Optional[str] = None,
                      rerank_factor: int = 2) -> SearchReport:
        """Search and return the full :class:`SearchReport`.

        Args:
            queries: ``(m, d)`` query matrix.
            k: Neighbors per query.
            algorithm: ``"ganns"``, ``"song"`` or ``"beam"``.
            l_n: GANNS pool length / SONG queue bound; defaults to the
                smallest power of two >= ``4 * k`` (and >= 32).
            e: GANNS explored-vertex budget.
            n_threads: Threads per simulated block.
            backend: Execution backend (``"reference"``/``"fast"``) for
                GANNS search and HNSW descent; ``None`` defers to the
                ``REPRO_BACKEND`` environment variable.
            quant: Quantized staged GANNS search (``"fp16"``/``"int8"``/
                ``"pca"``; **lossy** — see ``docs/quantization.md``);
                ``"off"`` forces exact, ``None`` defers to the
                ``REPRO_QUANT`` environment variable.
            rerank_factor: Candidate over-fetch of the staged search
                (pool of ``rerank_factor * l_n`` reranked exactly).
        """
        queries = np.asarray(queries)
        if l_n is None:
            l_n = max(32, next_pow2(4 * k))
        flat = self._flat_graph()
        entries = self._entries(queries, backend=backend)

        if algorithm == "ganns":
            params = SearchParams(k=k, l_n=l_n, e=e, n_threads=n_threads,
                                  backend=backend, quant=quant,
                                  rerank_factor=rerank_factor)
            report = self.backend.search(flat, self.points, queries,
                                         params, entry=entries)
        elif algorithm == "song":
            params = SongParams(k=k, pq_bound=e or l_n, n_threads=n_threads)
            report = song_search(flat, self.points, queries, params,
                                 entry=entries)
        elif algorithm == "beam":
            entry0 = int(entries[0]) if isinstance(entries, np.ndarray) else 0
            ids = beam_search_batch(flat, self.points, queries, k,
                                    ef=e or l_n, entry=entry0)
            from repro.core.results import make_search_tracker
            report = SearchReport(
                algorithm="beam", ids=ids,
                dists=np.full(ids.shape, np.nan),
                tracker=make_search_tracker(len(queries), "beam"),
                n_threads=1, shared_mem_bytes=0,
                iterations=np.zeros(len(queries), dtype=np.int64),
                n_distance_computations=0)
        else:
            raise SearchError(
                f"unknown algorithm {algorithm!r}; valid: "
                f"{SEARCH_ALGORITHMS}"
            )

        if self.order is not None:
            report.ids = recover_original_ids(report.ids, self.order)
        return report

    def search(self, queries: np.ndarray, k: int = 10,
               algorithm: str = "ganns", **kwargs
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Search; returns ``(ids, dists)`` arrays of shape ``(m, k)``."""
        report = self.search_report(queries, k, algorithm, **kwargs)
        return report.ids, report.dists

    def evaluate_recall(self, queries: np.ndarray,
                        ground_truth: np.ndarray, k: int = 10,
                        **kwargs) -> float:
        """Recall of this index on a query set with known ground truth."""
        ids, _ = self.search(queries, k, **kwargs)
        return recall_at_k(ids, ground_truth[:, :k])

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: Union[str, os.PathLike]) -> None:
        """Write the index to a ``.npz`` archive.

        The family's backend contributes the graph arrays
        (:meth:`~repro.core.backend.IndexBackend.serialize_graph`), so
        the format follows the family: flat layouts for NSW/KNN/CAGRA,
        the layered layout for HNSW.
        """
        arrays = dict(self.backend.serialize_graph(self.graph))
        if isinstance(self.graph, HierarchicalGraph):
            d_max = self.graph.bottom.d_max
        else:
            d_max = self.graph.d_max
        arrays.update({
            "format_version": np.array(_INDEX_FORMAT_VERSION),
            "points": self.points,
            "graph_type": np.array(self.graph_type),
            "metric": np.array(self.metric),
            "d_max": np.array(d_max),
        })
        if self.order is not None:
            arrays["order"] = self.order
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "GannsIndex":
        """Read an index written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as archive:
            version = int(archive["format_version"])
            if version != _INDEX_FORMAT_VERSION:
                raise ConfigurationError(
                    f"index file {path!r} has format version {version}, "
                    f"expected {_INDEX_FORMAT_VERSION}"
                )
            metric = str(archive["metric"])
            d_max = int(archive["d_max"])
            points = archive["points"]
            graph_type = str(archive["graph_type"])
            backend = get_backend(graph_type)
            kind = str(archive["kind"])
            expected = "hierarchical" if backend.hierarchical else "flat"
            if kind != expected:
                raise ConfigurationError(
                    f"index file {path!r} stores a {kind!r} graph but "
                    f"family {graph_type!r} expects {expected!r}"
                )
            graph = backend.deserialize_graph(archive, len(points),
                                              d_max, metric)
            order = archive["order"] if "order" in archive.files else None
            return cls(points, graph, graph_type, metric, order=order)
