"""The :class:`IndexBackend` protocol and the index-family registry.

Every graph family the library can build — NSW, HNSW, the plain KNN
graph and the CAGRA-style fixed-degree graph — registers one
:class:`IndexBackend` here.  The backend owns everything that is
family-specific:

- **build**: turning points into a :class:`ConstructionReport`;
- **search**: running the GANNS kernels over the (flat) graph;
- **serialize / deserialize**: the family's slice of the ``.npz``
  index format (flat vs hierarchical layouts);
- **cost-model hooks**: search cycles, construction cycles and memory
  bytes, so the bake-off harness compares families apples-to-apples;
- **serving_graph**: the flat graph the cluster layer shards over;
- **conformance_profile**: the thresholds the shared conformance suite
  (``tests/test_backend_conformance.py``) holds the family to.

Everything else — :class:`~repro.core.index.GannsIndex`, the CLI, the
serving and cluster engines — resolves families by name through
:func:`get_backend`, so adding a family is one subclass plus one
:func:`register_backend` call; the conformance suite picks it up by
registration.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.cagra import build_cagra_gpu
from repro.core.construction import build_nsw_gpu
from repro.core.ganns import ganns_search
from repro.core.hnsw import build_hnsw_gpu
from repro.core.knng import build_knn_graph_gpu
from repro.core.naive import build_nsw_naive_parallel, build_nsw_serial_gpu
from repro.core.params import BuildParams, SearchParams
from repro.core.results import ConstructionReport, SearchReport
from repro.errors import (
    ConfigurationError,
    GraphError,
    UnknownFamilyError,
    UnsupportedOperationError,
)
from repro.graphs.adjacency import HierarchicalGraph, ProximityGraph
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.device import DeviceSpec, QUADRO_P5000

STRATEGIES = ("ggraphcon", "naive-parallel", "serial")


@dataclass(frozen=True)
class ConformanceProfile:
    """Per-family thresholds for the shared backend conformance suite.

    Attributes:
        recall_floor: Minimum recall@10 on the suite's small synthetic
            dataset at the standard ``l_n``.
        reachable_floor: Minimum fraction of vertices reachable from the
            search entry (KNN graphs may legitimately be disconnected).
        exact_at_saturation: Whether search with ``l_n >= n`` must
            return exactly the brute-force answer whenever the graph is
            fully connected.
        build_kwargs: Extra keyword arguments the suite passes to
            :meth:`GannsIndex.build` for this family (e.g. ``knn_k``).
        quant_modes: Quantization modes the conformance suite runs this
            family's graphs under (every registered family is exercised
            quantized by default).
        quant_recall_delta: Maximum recall@10 the staged quantized
            search may lose versus the exact search on the suite's
            dataset, for each mode in ``quant_modes`` — the family's
            honest lossiness bound.
    """

    recall_floor: float = 0.9
    reachable_floor: float = 0.95
    exact_at_saturation: bool = True
    build_kwargs: Dict[str, object] = field(default_factory=dict)
    quant_modes: Tuple[str, ...] = ("fp16", "int8", "pca")
    quant_recall_delta: float = 0.05


class IndexBackend(abc.ABC):
    """One registered index family: build, search, persist, account.

    Subclasses set :attr:`family` (the registry key, also the value of
    ``GannsIndex.graph_type`` and the serving cache's family component)
    and implement :meth:`build`; everything else has a flat-graph
    default that hierarchical families override.
    """

    #: Registry key, e.g. ``"nsw"``.
    family: str = ""
    #: Whether :class:`~repro.mutable.index.MutableIndex` can stream
    #: inserts into graphs of this family.
    supports_mutation: bool = False
    #: Whether :meth:`build` produces a :class:`HierarchicalGraph`.
    hierarchical: bool = False

    # ------------------------------------------------------------------
    # Build / search
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def build(self, points: np.ndarray, params: BuildParams,
              metric: str = "euclidean", **kwargs) -> ConstructionReport:
        """Build this family's graph; returns a construction report."""

    def index_points(self, points: np.ndarray,
                     report: ConstructionReport) -> np.ndarray:
        """The point matrix the index should store (HNSW reorders)."""
        return points

    def order_of(self, report: ConstructionReport) -> Optional[np.ndarray]:
        """``order[shuffled_id] = original_id`` for reordering families."""
        return None

    def search(self, graph: ProximityGraph, points: np.ndarray,
               queries: np.ndarray, params: SearchParams,
               entry=0) -> SearchReport:
        """Run the GANNS kernels over this family's flat graph."""
        return ganns_search(graph, points, queries, params, entry=entry)

    def serving_graph(self, points: np.ndarray, d_min: int, d_max: int,
                      metric: str = "euclidean") -> ProximityGraph:
        """A flat graph for the cluster layer's per-shard serving path."""
        raise UnsupportedOperationError(
            f"index family {self.family!r} has no flat serving graph; "
            f"shard the cluster over a flat family instead"
        )

    # ------------------------------------------------------------------
    # Persistence (the family's slice of the .npz index format)
    # ------------------------------------------------------------------

    def serialize_graph(self, graph) -> Dict[str, np.ndarray]:
        """Arrays persisting ``graph`` (flat layout by default)."""
        if isinstance(graph, HierarchicalGraph):
            raise GraphError(
                f"family {self.family!r} serializes flat graphs, got a "
                f"hierarchical graph"
            )
        return {
            "kind": np.array("flat"),
            "graph_ids": graph.neighbor_ids,
            "graph_dists": graph.neighbor_dists,
            "graph_degrees": graph.degrees,
        }

    def deserialize_graph(self, archive, n_points: int, d_max: int,
                          metric: str):
        """Rebuild the graph from arrays written by :meth:`serialize_graph`."""
        graph = ProximityGraph(n_points, d_max, metric)
        graph.neighbor_ids = archive["graph_ids"]
        graph.neighbor_dists = archive["graph_dists"]
        graph.degrees = archive["graph_degrees"]
        return graph

    # ------------------------------------------------------------------
    # Cost-model hooks (the bake-off's common currency)
    # ------------------------------------------------------------------

    def search_cycles(self, report: SearchReport) -> float:
        """Total device cycles one search charged to its tracker."""
        return float(report.tracker.total_cycles())

    def construction_cycles(self, report: ConstructionReport,
                            device: DeviceSpec = QUADRO_P5000,
                            costs: CostTable = DEFAULT_COSTS) -> float:
        """Makespan cycles of the build, inverted from simulated seconds.

        Exact inverse of
        :meth:`repro.gpusim.kernel.KernelLaunch.cycles_to_seconds`, so
        ``cycles_to_seconds(construction_cycles(r)) == r.seconds`` up to
        float rounding — the reconciliation the conformance suite pins.
        """
        return float(report.seconds) * device.clock_hz / costs.time_scale

    def memory_bytes(self, graph) -> int:
        """Bytes of the graph's dense adjacency representation."""
        return int(graph.memory_bytes())

    def quantize(self, points: np.ndarray, mode: str,
                 metric: str = "euclidean"):
        """Compressed distance table for this family's staged search.

        The default delegates to :func:`repro.perf.quant.quantize_points`
        — every family traverses the same fp16/int8/PCA tables, since
        the staged pipeline runs over the family's graph through the
        unmodified GANNS kernels.  A family with its own storage layout
        (e.g. a future product-quantized one) overrides this; the
        bake-off's footprint columns and the conformance suite's
        quantized battery both go through this hook, so an override is
        automatically measured and tested.

        Returns:
            A :class:`repro.perf.quant.QuantizedTable` (or an object
            with its ``bytes_per_vector``/``memory_bytes``/
            ``dequantize`` surface).
        """
        from repro.perf.quant import quantize_points
        return quantize_points(points, mode, metric)

    def conformance_profile(self) -> ConformanceProfile:
        """Thresholds the shared conformance suite applies to this family."""
        return ConformanceProfile()


class NswBackend(IndexBackend):
    """The paper's NSW family (GGraphCon and the strawman strategies)."""

    family = "nsw"
    supports_mutation = True

    def build(self, points: np.ndarray, params: BuildParams,
              metric: str = "euclidean", strategy: str = "ggraphcon",
              search_kernel: str = "ganns", knn_k: int = 16,
              **kwargs) -> ConstructionReport:
        if strategy == "ggraphcon":
            return build_nsw_gpu(points, params,
                                 search_kernel=search_kernel,
                                 metric=metric, **kwargs)
        if strategy == "naive-parallel":
            return build_nsw_naive_parallel(
                points, params, search_kernel=search_kernel,
                metric=metric, **kwargs)
        if strategy == "serial":
            return build_nsw_serial_gpu(
                points, params, search_kernel=search_kernel,
                metric=metric, **kwargs)
        raise ConfigurationError(
            f"unknown strategy {strategy!r}; valid: {STRATEGIES}"
        )

    def serving_graph(self, points: np.ndarray, d_min: int, d_max: int,
                      metric: str = "euclidean") -> ProximityGraph:
        from repro.baselines.nsw_cpu import build_nsw_cpu
        return build_nsw_cpu(points, d_min=d_min, d_max=d_max,
                             metric=metric).graph

    def conformance_profile(self) -> ConformanceProfile:
        return ConformanceProfile(recall_floor=0.9, reachable_floor=0.98)


class HnswBackend(IndexBackend):
    """The HNSW extension (shuffled-ID hierarchical layers)."""

    family = "hnsw"
    hierarchical = True

    def build(self, points: np.ndarray, params: BuildParams,
              metric: str = "euclidean", strategy: str = "ggraphcon",
              search_kernel: str = "ganns", knn_k: int = 16,
              **kwargs) -> ConstructionReport:
        if strategy != "ggraphcon":
            raise ConfigurationError(
                "HNSW construction supports only the ggraphcon strategy"
            )
        return build_hnsw_gpu(points, params, search_kernel=search_kernel,
                              metric=metric, **kwargs)

    def index_points(self, points: np.ndarray,
                     report: ConstructionReport) -> np.ndarray:
        return points[report.order]

    def order_of(self, report: ConstructionReport) -> Optional[np.ndarray]:
        return report.order

    def serialize_graph(self, graph) -> Dict[str, np.ndarray]:
        if not isinstance(graph, HierarchicalGraph):
            raise GraphError(
                "family 'hnsw' serializes hierarchical graphs, got a "
                "flat graph"
            )
        arrays = {
            "kind": np.array("hierarchical"),
            "n_layers": np.array(graph.n_layers),
            "layer_sizes": np.asarray(graph.layer_sizes),
        }
        for i, layer in enumerate(graph.layers):
            arrays[f"layer{i}_ids"] = layer.neighbor_ids
            arrays[f"layer{i}_dists"] = layer.neighbor_dists
            arrays[f"layer{i}_degrees"] = layer.degrees
        return arrays

    def deserialize_graph(self, archive, n_points: int, d_max: int,
                          metric: str):
        sizes = archive["layer_sizes"].tolist()
        layers = []
        for i in range(int(archive["n_layers"])):
            layer = ProximityGraph(n_points, d_max, metric)
            layer.neighbor_ids = archive[f"layer{i}_ids"]
            layer.neighbor_dists = archive[f"layer{i}_dists"]
            layer.degrees = archive[f"layer{i}_degrees"]
            layers.append(layer)
        return HierarchicalGraph(layers, sizes)

    def conformance_profile(self) -> ConformanceProfile:
        return ConformanceProfile(recall_floor=0.9, reachable_floor=0.98)


class KnnBackend(IndexBackend):
    """The plain KNN-graph extension (batched NN-Descent)."""

    family = "knn"

    def build(self, points: np.ndarray, params: BuildParams,
              metric: str = "euclidean", knn_k: int = 16,
              strategy: str = "ggraphcon", search_kernel: str = "ganns",
              **kwargs) -> ConstructionReport:
        # strategy / search_kernel are accepted (the generic entry
        # points pass them) but NN-Descent has no use for either.
        return build_knn_graph_gpu(points, knn_k, params, metric=metric,
                                   **kwargs)

    def serving_graph(self, points: np.ndarray, d_min: int, d_max: int,
                      metric: str = "euclidean") -> ProximityGraph:
        return build_knn_graph_gpu(points, d_max, BuildParams(seed=0),
                                   metric=metric).graph

    def conformance_profile(self) -> ConformanceProfile:
        # A pure KNN digraph may be disconnected; hold it to honest but
        # lower floors and skip the exact-at-saturation contract.  Its
        # weaker structure also amplifies traversal perturbations, so
        # the quantized-recall bound is looser than the default.
        return ConformanceProfile(recall_floor=0.7, reachable_floor=0.6,
                                  exact_at_saturation=False,
                                  build_kwargs={"knn_k": 16},
                                  quant_recall_delta=0.1)


class CagraBackend(IndexBackend):
    """CAGRA-style fixed-degree family (KNN init + rank pruning)."""

    family = "cagra"

    def build(self, points: np.ndarray, params: BuildParams,
              metric: str = "euclidean", strategy: str = "ggraphcon",
              search_kernel: str = "ganns", knn_k: int = 16,
              **kwargs) -> ConstructionReport:
        # strategy / search_kernel do not apply: the graph is derived
        # from a KNN initialisation, never grown by insertion searches.
        return build_cagra_gpu(points, params, metric=metric, **kwargs)

    def serving_graph(self, points: np.ndarray, d_min: int, d_max: int,
                      metric: str = "euclidean") -> ProximityGraph:
        return build_cagra_gpu(
            points, BuildParams(d_min=min(d_min, d_max), d_max=d_max,
                                seed=0),
            metric=metric).graph

    def conformance_profile(self) -> ConformanceProfile:
        return ConformanceProfile(recall_floor=0.9, reachable_floor=0.98)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, IndexBackend] = {}


def register_backend(backend: IndexBackend) -> IndexBackend:
    """Register (or replace) one index family by its ``family`` name."""
    if not backend.family:
        raise ConfigurationError("an IndexBackend must name its family")
    _REGISTRY[backend.family] = backend
    return backend


def get_backend(family: str) -> IndexBackend:
    """Look up a family; unknown names raise a typed error.

    Raises:
        UnknownFamilyError: (a :class:`ConfigurationError`) naming the
            registered families — never a bare :class:`KeyError`.
    """
    backend = _REGISTRY.get(family)
    if backend is None:
        raise UnknownFamilyError(
            f"unknown graph_type {family!r}; registered families: "
            f"{backend_families()}"
        )
    return backend


def backend_families() -> Tuple[str, ...]:
    """Sorted names of every registered family."""
    return tuple(sorted(_REGISTRY))


register_backend(NswBackend())
register_backend(HnswBackend())
register_backend(KnnBackend())
register_backend(CagraBackend())
