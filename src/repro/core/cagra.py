"""CAGRA-style fixed-degree graph construction (reorder + rank pruning).

Ootomo et al. (CAGRA) observe that on GPUs a proximity graph is better
*derived* than *grown*: start from a k-NN graph (cheap and massively
parallel), reorder every adjacency row by distance rank, drop the edges
that are *detourable* — reachable through a closer neighbor in two hops —
and finally merge reverse edges back in so no vertex is starved of
incoming routes.  The result is a fixed out-degree graph that needs no
incremental insertion at all, which is why its construction parallelises
so much better than NSW's insert-one-point-at-a-time scheme.

The pipeline here mirrors that recipe on the simulated device:

1. **k-NN initialisation** — :func:`repro.core.knng.build_knn_graph_gpu`
   (batched NN-Descent) at an *intermediate* degree above the target.
2. **Rank-based pruning** (:func:`rank_prune`) — candidates are
   canonically ordered by ``(distance, id)`` (their *rank*); an edge to
   the rank-``j`` candidate is detourable when some closer candidate
   ``i < j`` satisfies ``d(c_i, c_j) < d(u, c_j)``.  The ``degree``
   edges with the fewest detours (ties to the lower rank) survive.
3. **Forward/reverse merge** (:func:`reverse_merge`) — the closest half
   of every pruned row is pinned (rank-0 can never be dropped), the
   remaining slots are filled with the closest reverse edges, and
   forward leftovers backfill vertices that attract few reverse edges.

Every stage is charged to the gpusim cost model (one block per vertex),
so the bake-off's construction-cycle comparison against GGraphCon is
apples-to-apples.  The output is an ordinary flat
:class:`~repro.graphs.adjacency.ProximityGraph`, searched by the
unmodified GANNS kernels.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.knng import build_knn_graph_gpu
from repro.core.params import BuildParams
from repro.core.results import ConstructionReport
from repro.errors import ConstructionError
from repro.graphs.adjacency import PAD_DIST, PAD_ID, ProximityGraph
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.device import DeviceSpec, QUADRO_P5000
from repro.gpusim.kernel import KernelLaunch
from repro.gpusim.tracker import PhaseCategory
from repro.metrics.distance import get_metric


def rank_prune(cand_ids: np.ndarray, cand_dists: np.ndarray,
               points: np.ndarray, degree: int,
               metric: str = "euclidean"
               ) -> Tuple[np.ndarray, np.ndarray]:
    """Prune one vertex's candidate list to ``degree`` rank-selected edges.

    The candidates are first put into canonical rank order — sorted by
    ``(distance, id)`` with padding (``-1`` ids) and duplicates removed —
    so the result is invariant under any permutation of the input (the
    property the hypothesis suite pins).  An edge to the rank-``j``
    candidate counts one *detour* for every better-ranked candidate
    ``i < j`` that lies strictly closer to ``c_j`` than the vertex
    itself does; the ``degree`` candidates with the fewest detours
    survive, ties broken by rank.

    Args:
        cand_ids: ``(m,)`` candidate vertex ids (``-1`` entries ignored).
        cand_dists: ``(m,)`` distances from the vertex to each candidate.
        points: ``(n, d)`` point matrix (used for candidate-candidate
            distances).
        degree: Target out-degree.
        metric: Metric name (must match ``cand_dists``).

    Returns:
        ``(kept_ids, kept_dists)`` sorted by ``(distance, id)``, at most
        ``degree`` entries.
    """
    cand_ids = np.asarray(cand_ids, dtype=np.int64)
    cand_dists = np.asarray(cand_dists, dtype=np.float64)
    valid = cand_ids >= 0
    cand_ids = cand_ids[valid]
    cand_dists = cand_dists[valid]
    if len(cand_ids) == 0:
        return cand_ids, cand_dists
    # Canonical rank order, duplicates collapsed to their first rank.
    order = np.lexsort((cand_ids, cand_dists))
    cand_ids = cand_ids[order]
    cand_dists = cand_dists[order]
    _, first = np.unique(cand_ids, return_index=True)
    keep = np.zeros(len(cand_ids), dtype=bool)
    keep[first] = True
    cand_ids = cand_ids[keep]
    cand_dists = cand_dists[keep]
    order = np.lexsort((cand_ids, cand_dists))
    cand_ids = cand_ids[order]
    cand_dists = cand_dists[order]
    m = len(cand_ids)
    if m <= degree:
        return cand_ids, cand_dists

    metric_obj = get_metric(metric)
    gathered = np.asarray(points, dtype=np.float64)[cand_ids]
    pair = metric_obj.pairwise(gathered, gathered)
    # detours[j] = |{ i < j : d(c_i, c_j) < d(u, c_j) }|
    upper = np.tril(np.ones((m, m), dtype=bool), k=-1).T  # i < j
    detourable = upper & (pair < cand_dists[None, :])
    detours = detourable.sum(axis=0)
    ranks = np.arange(m)
    selected = np.lexsort((ranks, detours))[:degree]
    selected.sort()  # back to rank order == (dist, id) order
    return cand_ids[selected], cand_dists[selected]


def reverse_merge(forward_ids: np.ndarray, forward_dists: np.ndarray,
                  degree: int) -> Tuple[np.ndarray, np.ndarray]:
    """Merge forward and reverse edges into the final fixed-degree rows.

    The closest ``ceil(degree / 2)`` forward edges of every vertex are
    pinned — in particular the rank-0 (closest) forward edge can never
    be dropped.  The remaining slots take the closest reverse edges
    (metrics are symmetric, so a reverse edge reuses the forward edge's
    distance); vertices that attract too few reverse edges backfill
    with their own remaining forward edges.

    Args:
        forward_ids: ``(n, w)`` pruned forward rows, sorted by
            ``(distance, id)`` with ``-1`` padding.
        forward_dists: Matching distances (``inf`` on padding).
        degree: Target out-degree of the merged rows.

    Returns:
        ``(ids, dists)`` dense ``(n, degree)`` arrays, rows sorted by
        ``(distance, id)``, padded with ``-1`` / ``inf``.
    """
    forward_ids = np.asarray(forward_ids, dtype=np.int64)
    forward_dists = np.asarray(forward_dists, dtype=np.float64)
    n, width = forward_ids.shape
    pinned = max(1, math.ceil(degree / 2))

    # Bounded reverse table: for every vertex, the closest `degree`
    # incoming edges, found by one global (dst, dist, src) sort.
    src = np.repeat(np.arange(n, dtype=np.int64), width)
    dst = forward_ids.ravel()
    dist = forward_dists.ravel()
    live = dst >= 0
    src, dst, dist = src[live], dst[live], dist[live]
    order = np.lexsort((src, dist, dst))
    src, dst, dist = src[order], dst[order], dist[order]
    starts = np.searchsorted(dst, np.arange(n), side="left")
    ends = np.searchsorted(dst, np.arange(n), side="right")

    out_ids = np.full((n, degree), PAD_ID, dtype=np.int64)
    out_dists = np.full((n, degree), PAD_DIST, dtype=np.float64)
    for v in range(n):
        f_deg = int((forward_ids[v] >= 0).sum())
        keep_ids = list(forward_ids[v, :min(pinned, f_deg)])
        keep_dists = list(forward_dists[v, :min(pinned, f_deg)])
        kept = set(keep_ids)
        # Candidate pool: reverse edges first, forward leftovers after,
        # all competing by (dist, id).
        pool_ids = np.concatenate([
            src[starts[v]:ends[v]],
            forward_ids[v, min(pinned, f_deg):f_deg],
        ])
        pool_dists = np.concatenate([
            dist[starts[v]:ends[v]],
            forward_dists[v, min(pinned, f_deg):f_deg],
        ])
        order_p = np.lexsort((pool_ids, pool_dists))
        for idx in order_p:
            if len(keep_ids) == degree:
                break
            u = int(pool_ids[idx])
            if u in kept or u == v:
                continue
            kept.add(u)
            keep_ids.append(u)
            keep_dists.append(float(pool_dists[idx]))
        row_order = np.lexsort((np.asarray(keep_ids, dtype=np.int64),
                                np.asarray(keep_dists)))
        out_ids[v, :len(keep_ids)] = np.asarray(keep_ids,
                                                dtype=np.int64)[row_order]
        out_dists[v, :len(keep_ids)] = np.asarray(
            keep_dists, dtype=np.float64)[row_order]
    return out_ids, out_dists


def build_cagra_gpu(points: np.ndarray,
                    params: BuildParams = BuildParams(),
                    metric: str = "euclidean",
                    graph_degree: Optional[int] = None,
                    intermediate_degree: Optional[int] = None,
                    knn_iterations: int = 8,
                    device: DeviceSpec = QUADRO_P5000,
                    costs: CostTable = DEFAULT_COSTS,
                    **_ignored) -> ConstructionReport:
    """Build a CAGRA-style fixed-degree graph on the simulated GPU.

    Args:
        points: ``(n, d)`` float matrix.
        params: Supplies ``d_max`` (the default target degree),
            ``n_threads`` and ``seed``.
        metric: ``"euclidean"`` or ``"cosine"``.
        graph_degree: Target out-degree of the final graph; defaults to
            ``params.d_max`` (capped at ``n - 1``).
        intermediate_degree: Width of the initial k-NN graph the pruning
            selects from; defaults to ~1.5x the target degree.
        knn_iterations: NN-Descent refinement cap for the initial graph.
        device: Simulated device.
        costs: Cycle cost table.

    Returns:
        A :class:`ConstructionReport` whose graph is a flat
        :class:`ProximityGraph` with exactly ``graph_degree`` edges per
        vertex (fewer only when ``n - 1 < graph_degree``).
    """
    points = np.asarray(points)
    if points.ndim != 2 or len(points) == 0:
        raise ConstructionError(
            f"points must be a non-empty 2-D matrix, got shape {points.shape}"
        )
    n = len(points)
    if n < 2:
        raise ConstructionError("CAGRA construction needs at least 2 points")
    degree = min(graph_degree if graph_degree is not None else params.d_max,
                 n - 1)
    if degree <= 0:
        raise ConstructionError(f"graph_degree must be positive, got {degree}")
    if intermediate_degree is None:
        intermediate_degree = max(degree + 4, (degree * 3) // 2)
    intermediate = min(int(intermediate_degree), n - 1)
    if intermediate < degree:
        raise ConstructionError(
            f"intermediate_degree ({intermediate}) must be >= graph_degree "
            f"({degree})"
        )
    n_t = params.n_threads
    n_dims = points.shape[1]
    kernel = KernelLaunch(device, n_t, costs=costs)

    # Stage 1: k-NN initialisation at the intermediate degree.
    knn_report = build_knn_graph_gpu(points, intermediate, params,
                                     metric=metric,
                                     max_iterations=knn_iterations,
                                     device=device, costs=costs)
    knn = knn_report.graph
    total_seconds = knn_report.seconds
    phase_seconds: Dict[str, float] = {"knn_init": knn_report.seconds}
    category = dict(knn_report.category_seconds)

    # Stage 2: rank-based reorder + detour pruning (one block per vertex:
    # load the candidate vectors, compute the candidate-candidate
    # distance triangle, sort by detour count).
    pruned_ids = np.full((n, degree), PAD_ID, dtype=np.int64)
    pruned_dists = np.full((n, degree), PAD_DIST, dtype=np.float64)
    for v in range(n):
        d_v = int(knn.degrees[v])
        kept_ids, kept_dists = rank_prune(
            knn.neighbor_ids[v, :d_v], knn.neighbor_dists[v, :d_v],
            points, degree, metric=metric)
        pruned_ids[v, :len(kept_ids)] = kept_ids
        pruned_dists[v, :len(kept_ids)] = kept_dists

    m = intermediate
    pair_computes = m * (m - 1) // 2
    prune_distance = (m * costs.vector_load_cycles(n_dims, n_t)
                      + pair_computes
                      * costs.distance_compute_cycles(n_dims, n_t))
    prune_structure = (costs.bitonic_sort_cycles(m, n_t)
                       + m * costs.alu_cycles)
    launch = kernel.run(prune_distance + prune_structure, n_blocks=n)
    total_seconds += launch.seconds
    phase_seconds["rank_prune"] = launch.seconds
    mix = prune_distance + prune_structure
    category[PhaseCategory.DISTANCE] = (
        category.get(PhaseCategory.DISTANCE, 0.0)
        + launch.seconds * prune_distance / mix)
    category[PhaseCategory.STRUCTURE] = (
        category.get(PhaseCategory.STRUCTURE, 0.0)
        + launch.seconds * prune_structure / mix)

    # Stage 3: forward/reverse merge (bounded reverse scatter + bitonic
    # merge per row; reverse edges reuse forward distances, so this
    # stage computes no distances at all).
    merged_ids, merged_dists = reverse_merge(pruned_ids, pruned_dists,
                                             degree)
    merge_cycles = (costs.prefix_sum_cycles(degree, n_t)
                    + costs.adjacency_merge_cycles(degree, degree, n_t))
    launch = kernel.run(merge_cycles, n_blocks=n)
    total_seconds += launch.seconds
    phase_seconds["reverse_merge"] = launch.seconds
    category[PhaseCategory.STRUCTURE] += launch.seconds

    graph = ProximityGraph.from_rows(merged_ids, merged_dists,
                                     d_max=degree, metric=metric)
    return ConstructionReport(
        algorithm="cagra",
        graph=graph,
        seconds=total_seconds,
        phase_seconds=phase_seconds,
        category_seconds=category,
        n_points=n,
        details={
            "graph_degree": float(degree),
            "intermediate_degree": float(intermediate),
            "knn_iterations": knn_report.details["n_iterations"],
        },
    )
