"""The paper's primary contribution: GANNS search and GGraphCon construction.

- :mod:`repro.core.params` — validated parameter bundles.
- :mod:`repro.core.results` — search reports with per-phase cycle
  accounting and throughput conversion.
- :mod:`repro.core.ganns` — the 6-phase GPU-friendly search (lazy update +
  lazy check), batched across queries in lock-step.
- :mod:`repro.core.ganns_kernel` — a faithful single-query kernel built
  from warp primitives and the bitonic networks; the reference the batched
  path is tested against.
- :mod:`repro.core.construction` — GGraphCon divide-and-conquer NSW
  construction (local graphs + CSR-organised merges).
- :mod:`repro.core.naive` — the GSerial and GNaiveParallel strawmen of
  Section IV-A.
- :mod:`repro.core.hnsw` — the HNSW extension (level-by-level with the ID
  shuffle).
- :mod:`repro.core.knng` — the KNN-graph extension (batched NN-Descent).
- :mod:`repro.core.cagra` — the CAGRA-style fixed-degree family
  (KNN init + rank-based pruning + reverse-edge merge).
- :mod:`repro.core.backend` — the :class:`IndexBackend` protocol and the
  index-family registry.
- :mod:`repro.core.index` — the user-facing :class:`GannsIndex`.
"""

from repro.core.params import SearchParams, BuildParams
from repro.core.results import SearchReport, ConstructionReport
from repro.core.ganns import ganns_search
from repro.core.construction import build_nsw_gpu
from repro.core.naive import build_nsw_serial_gpu, build_nsw_naive_parallel
from repro.core.hnsw import build_hnsw_gpu
from repro.core.knng import build_knn_graph_gpu
from repro.core.cagra import build_cagra_gpu
from repro.core.backend import (
    ConformanceProfile,
    IndexBackend,
    backend_families,
    get_backend,
    register_backend,
)
from repro.core.index import GannsIndex
from repro.core.tuner import TuningResult, tune_search
from repro.core.pipeline import StreamResult, stream_batches

__all__ = [
    "SearchParams",
    "BuildParams",
    "SearchReport",
    "ConstructionReport",
    "ganns_search",
    "build_nsw_gpu",
    "build_nsw_serial_gpu",
    "build_nsw_naive_parallel",
    "build_hnsw_gpu",
    "build_knn_graph_gpu",
    "build_cagra_gpu",
    "ConformanceProfile",
    "IndexBackend",
    "backend_families",
    "get_backend",
    "register_backend",
    "GannsIndex",
    "TuningResult",
    "tune_search",
    "StreamResult",
    "stream_batches",
]
