"""The straightforward GPU construction schemes of Section IV-A.

Both exist to be beaten:

- :func:`build_nsw_serial_gpu` (GSerial) — strictly sequential insertion
  with a GPU search kernel.  Only one block ever has work, so the device's
  inter-block parallelism is wasted; the paper reports 3810 s on SIFT1M
  against GGraphCon's 8.5 s.
- :func:`build_nsw_naive_parallel` (GNaiveParallel) — points are processed
  in batches; every point of a batch searches the *current* graph in
  parallel and the edges are applied together afterwards.  Fast (Figure 11
  shows it slightly ahead of GGraphCon_SONG) but the points of a batch
  ignore each other, so graph quality collapses (Figure 12).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.baselines.beam import beam_search
from repro.core.construction import _TimeAccumulator, _exact_beam_stub
from repro.core.construction_costs import price_search
from repro.core.params import BuildParams
from repro.core.results import ConstructionReport
from repro.errors import ConstructionError
from repro.graphs.adjacency import ProximityGraph
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.device import DeviceSpec, QUADRO_P5000
from repro.gpusim.kernel import KernelLaunch
from repro.metrics.distance import get_metric


def _validated_points(points: np.ndarray) -> np.ndarray:
    points = np.asarray(points)
    if points.ndim != 2 or len(points) == 0:
        raise ConstructionError(
            f"points must be a non-empty 2-D matrix, got shape {points.shape}"
        )
    return points


def build_nsw_serial_gpu(points: np.ndarray, params: BuildParams,
                         search_kernel: str = "song",
                         metric: str = "euclidean",
                         device: DeviceSpec = QUADRO_P5000,
                         costs: CostTable = DEFAULT_COSTS
                         ) -> ConstructionReport:
    """GSerial: sequential insertion, one active block at a time.

    Produces exactly the graph of the CPU sequential construction (same
    traversals), but the elapsed time is the *sum* of all insertion
    kernels — no inter-block overlap whatsoever.
    """
    points = _validated_points(points)
    n = len(points)
    n_dims = points.shape[1]
    metric_obj = get_metric(metric)
    d_min, d_max = params.d_min, params.d_max
    ef = params.effective_ef
    l_n = params.effective_search_l_n
    n_t = params.n_threads
    kernel = KernelLaunch(device, n_t, costs=costs)
    times = _TimeAccumulator()

    graph = ProximityGraph(n, d_max, metric)
    total_distance = 0.0
    total_structure = 0.0
    insert_cost = costs.backward_insert_cycles(d_max, n_t)
    for vertex in range(1, n):
        if vertex <= d_min:
            neighbor_ids = np.arange(vertex, dtype=np.int64)
            traversal = _exact_beam_stub(vertex)
        else:
            result = beam_search(graph, points, points[vertex], k=d_min,
                                 ef=ef, entry=0, metric=metric_obj)
            neighbor_ids = result.ids
            traversal = result
        charge = price_search(search_kernel, traversal, l_n, d_max, n_dims,
                              n_t, ef, costs)
        total_distance += charge.distance_cycles
        total_structure += charge.structure_cycles
        if len(neighbor_ids):
            dists = metric_obj.one_to_many(points[vertex],
                                           points[neighbor_ids])
            for u, dist in zip(neighbor_ids, dists):
                graph.insert_edge(vertex, int(u), float(dist))
                graph.insert_edge(int(u), vertex, float(dist))
                total_structure += 2 * insert_cost

    # Every insertion is its own single-block launch; nothing overlaps.
    seconds = kernel.cycles_to_seconds(total_distance + total_structure)
    times.add("serial_insertion", seconds, total_distance, total_structure)
    return ConstructionReport(
        algorithm=f"gserial-{search_kernel}",
        graph=graph,
        seconds=times.total_seconds,
        phase_seconds=times.phase_seconds,
        category_seconds=times.category_seconds,
        n_points=n,
        details={"d_min": float(d_min), "d_max": float(d_max)},
    )


def build_nsw_naive_parallel(points: np.ndarray, params: BuildParams,
                             search_kernel: str = "song",
                             metric: str = "euclidean",
                             batch_size: Optional[int] = None,
                             device: DeviceSpec = QUADRO_P5000,
                             costs: CostTable = DEFAULT_COSTS
                             ) -> ConstructionReport:
    """GNaiveParallel: batch-parallel insertion that ignores in-batch links.

    Args:
        points: ``(n, d)`` float matrix.
        params: Build parameters.
        search_kernel: ``"ganns"`` or ``"song"``.
        metric: Metric name.
        batch_size: Points per parallel batch; defaults to
            ``params.n_blocks`` (one block per point).
        device: Simulated device.
        costs: Cycle cost table.

    Returns:
        A :class:`ConstructionReport`; expect the graph's search quality to
        be visibly worse than GGraphCon's (that is the point).
    """
    points = _validated_points(points)
    n = len(points)
    n_dims = points.shape[1]
    metric_obj = get_metric(metric)
    d_min, d_max = params.d_min, params.d_max
    ef = params.effective_ef
    l_n = params.effective_search_l_n
    n_t = params.n_threads
    if batch_size is None:
        batch_size = params.n_blocks
    if batch_size <= 0:
        raise ConstructionError(
            f"batch_size must be positive, got {batch_size}"
        )
    kernel = KernelLaunch(device, n_t, costs=costs)
    times = _TimeAccumulator()

    graph = ProximityGraph(n, d_max, metric)
    insert_cost = costs.backward_insert_cycles(d_max, n_t)

    # Bootstrap: the first d_min + 1 points insert sequentially (a batch
    # against an empty graph has nothing to search).
    bootstrap = min(d_min + 1, n)
    boot_structure = 0.0
    boot_distance = 0.0
    for vertex in range(1, bootstrap):
        dists = metric_obj.one_to_many(points[vertex], points[:vertex])
        boot_distance += vertex * costs.single_distance_cycles(n_dims, n_t)
        for u in range(vertex):
            graph.insert_edge(vertex, u, float(dists[u]))
            graph.insert_edge(u, vertex, float(dists[u]))
            boot_structure += 2 * insert_cost
    seconds = kernel.cycles_to_seconds(boot_distance + boot_structure)
    times.add("bootstrap", seconds, boot_distance, boot_structure)

    start = bootstrap
    while start < n:
        stop = min(start + batch_size, n)
        batch = np.arange(start, stop)
        vertex_cycles = np.zeros(len(batch))
        step_distance = 0.0
        step_structure = 0.0
        batch_edges: List = []
        for j, v in enumerate(batch):
            result = beam_search(graph, points, points[v], k=d_min, ef=ef,
                                 entry=0, metric=metric_obj)
            charge = price_search(search_kernel, result, l_n, d_max,
                                  n_dims, n_t, ef, costs)
            vertex_cycles[j] = charge.total
            step_distance += charge.distance_cycles
            step_structure += charge.structure_cycles
            batch_edges.append((int(v), result.ids, result.dists))
        launch = kernel.run(vertex_cycles)
        times.add("batch_search", launch.seconds, step_distance,
                  step_structure)

        # Aggregate edge application after the batch completes.  Points
        # of the batch never link to each other, and — the scheme's
        # second flaw — the backward updates race: all blocks write the
        # target rows concurrently with no concurrency control ("it
        # might lead to inconsistent results", Section IV-B), so when
        # several blocks insert into the same row, only one write
        # survives (lost update; the survivor is arbitrary — we pick the
        # highest-id writer deterministically).
        update_cycles = 0.0
        backward: Dict[int, tuple] = {}
        for v, ids, dists in batch_edges:
            for u, dist in zip(ids, dists):
                graph.insert_edge(v, int(u), float(dist))
                update_cycles += insert_cost
                backward[int(u)] = (v, float(dist))
        for u, (v, dist) in backward.items():
            graph.insert_edge(u, v, dist)
            update_cycles += insert_cost
        n_update_blocks = max(len(batch_edges), 1)
        launch = kernel.run(update_cycles / n_update_blocks,
                            n_blocks=n_update_blocks)
        times.add("batch_update", launch.seconds, 0.0, update_cycles)
        start = stop

    return ConstructionReport(
        algorithm=f"gnaiveparallel-{search_kernel}",
        graph=graph,
        seconds=times.total_seconds,
        phase_seconds=times.phase_seconds,
        category_seconds=times.category_seconds,
        n_points=n,
        details={"batch_size": float(batch_size), "d_min": float(d_min),
                 "d_max": float(d_max)},
    )
