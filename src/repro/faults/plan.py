"""Seeded, serializable fault schedules on the simulated clock.

A :class:`FaultPlan` is the single source of chaos for a run: a sorted
list of :class:`FaultEvent` records (what goes wrong, and at which
simulated instant it arms) plus one RNG seed that drives every random
decision downstream — retry jitter, Poisson event generation, bit-flip
positions.  Because the plan is data (round-trippable through JSON) and
the clock is simulated, a chaos run is *replayable*: the same trace and
the same plan reproduce every fault, every retry, and every recovery
decision byte-for-byte.

Fault taxonomy (the ``FAULT_*`` constants):

- ``kernel_timeout`` — the driver watchdog kills a wedged kernel after
  ``magnitude`` simulated seconds; the attempt fails.
- ``kernel_stall``   — the kernel limps to completion ``magnitude``
  times slower than normal; results are correct, latency suffers.
- ``ecc_bitflip``    — an uncorrectable ECC error in a distance buffer
  is detected after the kernel finishes; the (wasted) compute time is
  charged and the attempt fails, results discarded.
- ``mem_exhaustion`` — device allocation fails before compute; only the
  attempted upload is charged.
- ``worker_loss``    — a distributed-construction worker (``target``)
  dies; its shard must be re-executed elsewhere.
- ``network_partition`` — the cluster interconnect stalls for
  ``magnitude`` seconds; merge-round communication blocks.
- ``crash``          — the (simulated) index process dies at a named
  lifecycle ``phase`` (e.g. mid-compaction); volatile state is lost and
  recovery must replay the durable write-ahead log.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Fault kinds delivered inside the kernel-dispatch path.
FAULT_KERNEL_TIMEOUT = "kernel_timeout"
FAULT_KERNEL_STALL = "kernel_stall"
FAULT_ECC_BITFLIP = "ecc_bitflip"
FAULT_MEM_EXHAUSTION = "mem_exhaustion"
#: Fault kinds delivered to the distributed-construction cluster.
FAULT_WORKER_LOSS = "worker_loss"
FAULT_NETWORK_PARTITION = "network_partition"
#: Fault kinds delivered to the mutable-index lifecycle.
FAULT_CRASH = "crash"

KERNEL_FAULT_KINDS = (
    FAULT_KERNEL_TIMEOUT,
    FAULT_KERNEL_STALL,
    FAULT_ECC_BITFLIP,
    FAULT_MEM_EXHAUSTION,
)
CLUSTER_FAULT_KINDS = (
    FAULT_WORKER_LOSS,
    FAULT_NETWORK_PARTITION,
)
MUTATION_FAULT_KINDS = (
    FAULT_CRASH,
)
ALL_FAULT_KINDS = (KERNEL_FAULT_KINDS + CLUSTER_FAULT_KINDS
                   + MUTATION_FAULT_KINDS)

#: Named lifecycle phases a ``crash`` event may target.  An empty
#: ``phase`` means "the next phase boundary of any name".  The mutable
#: index polls its crash injector at each of these boundaries.
CRASH_PHASES = (
    "compaction.scan",
    "compaction.rewrite",
    "compaction.repair",
    "compaction.commit",
    "checkpoint.serialize",
    "checkpoint.write",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes:
        kind: One of the ``FAULT_*`` constants.
        at_seconds: Simulated time the fault arms.  Kernel faults fire
            on the first dispatch attempt at or after this instant;
            cluster faults apply at this point of the build timeline.
        magnitude: Kind-specific knob — watchdog seconds for
            ``kernel_timeout``, slowdown factor for ``kernel_stall``,
            partition duration for ``network_partition``; ignored
            otherwise.
        target: Worker index for ``worker_loss`` (``-1`` elsewhere).
        phase: Lifecycle phase a ``crash`` event targets (one of
            :data:`CRASH_PHASES`, or ``""`` for "any phase"); empty for
            every other kind.
    """

    kind: str
    at_seconds: float
    magnitude: float = 1.0
    target: int = -1
    phase: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(ALL_FAULT_KINDS)}"
            )
        if self.at_seconds < 0:
            raise ConfigurationError(
                f"fault at_seconds must be >= 0, got {self.at_seconds}"
            )
        if self.magnitude <= 0:
            raise ConfigurationError(
                f"fault magnitude must be positive, got {self.magnitude}"
            )
        if self.phase and self.kind != FAULT_CRASH:
            raise ConfigurationError(
                f"phase is only meaningful for {FAULT_CRASH!r} events, "
                f"got phase={self.phase!r} on kind={self.kind!r}"
            )
        if self.kind == FAULT_CRASH and self.phase \
                and self.phase not in CRASH_PHASES:
            raise ConfigurationError(
                f"unknown crash phase {self.phase!r}; expected one of "
                f"{sorted(CRASH_PHASES)} or ''"
            )

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form for serialization."""
        data: Dict[str, object] = {
            "kind": self.kind, "at_seconds": self.at_seconds,
            "magnitude": self.magnitude, "target": self.target}
        if self.phase:
            data["phase"] = self.phase
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(kind=str(data["kind"]),
                   at_seconds=float(data["at_seconds"]),
                   magnitude=float(data.get("magnitude", 1.0)),
                   target=int(data.get("target", -1)),
                   phase=str(data.get("phase", "")))


class FaultPlan:
    """An ordered fault schedule plus the seed for derived randomness.

    Args:
        events: The faults to deliver; stored sorted by
            ``(at_seconds, kind, target)`` so plan identity is
            independent of construction order.
        seed: Seed for every RNG the plan hands out (retry jitter,
            bit-flip positions).  Two plans with equal events and equal
            seeds behave identically.
    """

    def __init__(self, events: Sequence[FaultEvent] = (), seed: int = 0):
        self.events: Tuple[FaultEvent, ...] = tuple(sorted(
            events, key=lambda e: (e.at_seconds, e.kind, e.target,
                                   e.phase)))
        self.seed = int(seed)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.events == other.events and self.seed == other.seed

    def kernel_events(self) -> List[FaultEvent]:
        """Events delivered inside kernel dispatch, schedule order."""
        return [e for e in self.events if e.kind in KERNEL_FAULT_KINDS]

    def cluster_events(self) -> List[FaultEvent]:
        """Events delivered to the distributed cluster, schedule order."""
        return [e for e in self.events if e.kind in CLUSTER_FAULT_KINDS]

    def mutation_events(self) -> List[FaultEvent]:
        """Events delivered to the mutable-index lifecycle (crashes)."""
        return [e for e in self.events if e.kind in MUTATION_FAULT_KINDS]

    def rng(self, stream: str = "jitter") -> np.random.Generator:
        """A deterministic RNG derived from the plan seed and a label."""
        label = np.frombuffer(stream.encode("utf-8"), dtype=np.uint8)
        return np.random.default_rng([self.seed, *label.tolist()])

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (lists and scalars only)."""
        return {"seed": self.seed,
                "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(events=[FaultEvent.from_dict(e)
                           for e in data.get("events", [])],
                   seed=int(data.get("seed", 0)))

    def to_json(self) -> str:
        """Canonical JSON encoding (sorted keys, stable event order)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------

    @classmethod
    def poisson(cls, rates: Dict[str, float], horizon_seconds: float,
                seed: int = 0, magnitudes: Optional[Dict[str, float]] = None,
                n_workers: int = 0) -> "FaultPlan":
        """Poisson-process fault schedule over a time horizon.

        Args:
            rates: ``kind -> events per simulated second``.
            horizon_seconds: Schedule length.
            seed: Plan seed (also drives event placement).
            magnitudes: Optional ``kind -> magnitude`` overrides.
            n_workers: Cluster size for ``worker_loss`` targeting.

        Returns:
            A :class:`FaultPlan` whose events are a deterministic
            function of the arguments.
        """
        if horizon_seconds <= 0:
            raise ConfigurationError(
                f"horizon_seconds must be positive, got {horizon_seconds}"
            )
        defaults = {
            FAULT_KERNEL_TIMEOUT: 2e-3,
            FAULT_KERNEL_STALL: 4.0,
            FAULT_ECC_BITFLIP: 1.0,
            FAULT_MEM_EXHAUSTION: 1.0,
            FAULT_WORKER_LOSS: 1.0,
            FAULT_NETWORK_PARTITION: 1e-2,
            FAULT_CRASH: 1.0,
        }
        if magnitudes:
            defaults.update(magnitudes)
        events: List[FaultEvent] = []
        # One independent, label-derived RNG stream per kind, so adding
        # a kind never perturbs the schedule of the others.
        for kind in sorted(rates):
            rate = rates[kind]
            if rate < 0:
                raise ConfigurationError(
                    f"rate for {kind!r} must be >= 0, got {rate}"
                )
            if rate == 0:
                continue
            rng = cls(seed=seed).rng(f"poisson:{kind}")
            t = 0.0
            while True:
                t += float(rng.exponential(1.0 / rate))
                if t >= horizon_seconds:
                    break
                target = -1
                phase = ""
                if kind == FAULT_WORKER_LOSS and n_workers > 0:
                    target = int(rng.integers(0, n_workers))
                if kind == FAULT_CRASH:
                    phase = CRASH_PHASES[int(rng.integers(
                        0, len(CRASH_PHASES)))]
                events.append(FaultEvent(kind=kind, at_seconds=t,
                                         magnitude=defaults[kind],
                                         target=target, phase=phase))
        return cls(events=events, seed=seed)


#: Named plan recipes the CLI and CI smoke accept.  Rates are events
#: per simulated second; serving traces last milliseconds, so the
#: numbers look large.
_NAMED_RECIPES: Dict[str, Dict[str, float]] = {
    "none": {},
    "mild": {
        FAULT_KERNEL_STALL: 30.0,
        FAULT_KERNEL_TIMEOUT: 10.0,
    },
    "aggressive": {
        FAULT_KERNEL_TIMEOUT: 120.0,
        FAULT_KERNEL_STALL: 120.0,
        FAULT_ECC_BITFLIP: 80.0,
        FAULT_MEM_EXHAUSTION: 80.0,
    },
    "memory": {
        FAULT_ECC_BITFLIP: 150.0,
        FAULT_MEM_EXHAUSTION: 150.0,
    },
    "blackout": {
        # Dense enough that consecutive dispatches fail and the circuit
        # breaker trips.
        FAULT_KERNEL_TIMEOUT: 600.0,
    },
    "replica-loss": {
        # Query-path chaos for the serving cluster: replica deaths plus
        # background kernel flakiness, so failover and the retry lane
        # both exercise.  Pass n_workers = shards * replicas so losses
        # target real slots.
        FAULT_WORKER_LOSS: 30.0,
        FAULT_KERNEL_STALL: 30.0,
        FAULT_KERNEL_TIMEOUT: 10.0,
    },
    "compaction-crash": {
        # Mutable-index chaos: process deaths at random lifecycle
        # phases.  Mutation workloads run on a seconds-scale timeline
        # (one op per simulated second), so a fractional rate still
        # lands several hits across a few dozen ops.
        FAULT_CRASH: 0.1,
    },
    "soak": {
        # Repair-aware whole-stack chaos for the self-healing soak
        # gate: replica deaths dense enough that the RepairController
        # queues several rebuilds per replay, partitions to delay
        # sub-replays across repair windows, and background kernel
        # flakiness so retries and breakers stay busy while repairs
        # run.  Pass n_workers = shards * replicas.
        FAULT_WORKER_LOSS: 150.0,
        FAULT_NETWORK_PARTITION: 25.0,
        FAULT_KERNEL_STALL: 30.0,
        FAULT_KERNEL_TIMEOUT: 10.0,
    },
}


def named_fault_plan(name: str, horizon_seconds: float,
                     seed: int = 0, n_workers: int = 0) -> FaultPlan:
    """Build one of the named chaos recipes (see ``fault_plan_names``).

    Args:
        name: Recipe name (``none``, ``mild``, ``aggressive``,
            ``memory``, ``blackout``, ``replica-loss``,
            ``compaction-crash``, ``soak``).
        horizon_seconds: Simulated length the plan should cover —
            typically the expected trace duration with headroom.
        seed: Plan seed.
        n_workers: Cluster slot count for ``worker_loss`` targeting
            (``shards * replicas`` for the serving cluster); with the
            default ``0``, loss events carry ``target=-1`` and
            consumers fold them onto slots deterministically.
    """
    if name not in _NAMED_RECIPES:
        raise ConfigurationError(
            f"unknown fault plan {name!r}; expected one of "
            f"{sorted(_NAMED_RECIPES)}"
        )
    return FaultPlan.poisson(_NAMED_RECIPES[name], horizon_seconds,
                             seed=seed, n_workers=n_workers)


def fault_plan_names() -> List[str]:
    """Names accepted by :func:`named_fault_plan`."""
    return sorted(_NAMED_RECIPES)
