"""The chaos ledger: every fault, retry, trip, and step-down, recorded.

A :class:`FaultReport` is the fault-tolerance counterpart of
:class:`repro.serve.report.ServeReport`: the engine appends one record
per injected fault, retry, breaker transition, and degradation
decision, all stamped in simulated seconds.  Because the whole stack is
deterministic, two replays of the same trace under the same plan
produce byte-identical reports — :meth:`FaultReport.to_bytes` defines
the canonical encoding the golden tests compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ObservabilityError
from repro.faults.policy import BreakerTransition


@dataclass(frozen=True)
class InjectionRecord:
    """One fault delivered into a dispatch attempt.

    Attributes:
        seconds: Simulated time of the attempt that absorbed the fault.
        kind: Fault kind (``FAULT_*`` constant).
        batch_index: Dispatched batch the fault hit.
        attempt: Attempt number within the batch (0 = first try).
        fatal: Whether the attempt failed (stalls are survivable).
    """

    seconds: float
    kind: str
    batch_index: int
    attempt: int
    fatal: bool


@dataclass(frozen=True)
class RetryRecord:
    """One backoff-and-retry decision."""

    seconds: float
    batch_index: int
    attempt: int
    backoff_seconds: float


@dataclass(frozen=True)
class DegradationRecord:
    """One dispatch served below full quality."""

    seconds: float
    batch_index: int
    tier: int
    reason: str


@dataclass
class FaultReport:
    """Accumulated fault-tolerance events of one replay.

    Attributes:
        scheduled_faults: Kernel-scope events the plan held (delivered
            or not — a short trace may end before late events arm).
        injections: Faults actually delivered, dispatch order.
        retries: Backoff decisions, dispatch order.
        breaker_transitions: Breaker state changes, time order.
        degradations: Below-full-quality dispatches, dispatch order.
        fast_failed_requests: Requests failed without dispatch because
            the breaker was open.
        deadline_dropped_requests: Requests dropped undispatched because
            their deadline expired while queued.
        probe_successes: Successful dispatches recorded while the
            breaker was half-open (with ``BreakerPolicy
            .half_open_probes > 1`` the breaker needs several of these
            in a row before it closes).
    """

    scheduled_faults: int = 0
    injections: List[InjectionRecord] = field(default_factory=list)
    retries: List[RetryRecord] = field(default_factory=list)
    breaker_transitions: List[BreakerTransition] = field(
        default_factory=list)
    degradations: List[DegradationRecord] = field(default_factory=list)
    fast_failed_requests: int = 0
    deadline_dropped_requests: int = 0
    probe_successes: int = 0

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------

    @property
    def n_injected(self) -> int:
        """Faults delivered into dispatch attempts."""
        return len(self.injections)

    @property
    def n_fatal(self) -> int:
        """Delivered faults that killed their attempt."""
        return sum(1 for record in self.injections if record.fatal)

    @property
    def n_retries(self) -> int:
        """Re-execution attempts scheduled."""
        return len(self.retries)

    @property
    def n_breaker_trips(self) -> int:
        """Transitions into the open state."""
        return sum(1 for t in self.breaker_transitions
                   if t.to_state == "open")

    @property
    def n_degraded_batches(self) -> int:
        """Dispatches served below tier 0."""
        return len(self.degradations)

    def injected_by_kind(self) -> Dict[str, int]:
        """Delivered fault counts per kind."""
        counts: Dict[str, int] = {}
        for record in self.injections:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Registry view
    # ------------------------------------------------------------------

    def verify_against_metrics(self, registry) -> None:
        """Assert this ledger is an exact view over ``registry``.

        The engine publishes every fault-tolerance event into the
        :class:`repro.observability.metrics.MetricsRegistry` at the
        moment it appends the matching record here; the two paths are
        allowed zero drift.  Raises
        :class:`repro.errors.ObservabilityError` on the first mismatch.
        """
        expectations = {
            "faults.scheduled": self.scheduled_faults,
            "faults.injected": self.n_injected,
            "faults.fatal": self.n_fatal,
            "faults.retries": self.n_retries,
            "faults.fast_failed": self.fast_failed_requests,
            "faults.deadline_dropped": self.deadline_dropped_requests,
            "faults.degraded_batches": self.n_degraded_batches,
        }
        for kind, count in self.injected_by_kind().items():
            expectations[f"faults.delivered.{kind}"] = count
        states: Dict[str, int] = {}
        for transition in self.breaker_transitions:
            states[transition.to_state] = \
                states.get(transition.to_state, 0) + 1
        for state, count in states.items():
            expectations[f"faults.breaker.{state}"] = count
        expectations["faults.breaker.probe_successes"] = \
            self.probe_successes
        for name, expected in expectations.items():
            actual = registry.value(name, default=0.0)
            if actual != expected:
                raise ObservabilityError(
                    f"fault-ledger/registry drift on {name!r}: ledger "
                    f"says {expected}, registry says {actual}"
                )

    # ------------------------------------------------------------------
    # Rendering / canonical form
    # ------------------------------------------------------------------

    def summary(self) -> str:
        """Human-readable block appended to the serving summary."""
        kinds = self.injected_by_kind()
        kind_note = (", ".join(f"{n} {kind}" for kind, n in
                               sorted(kinds.items()))
                     if kinds else "none")
        lines = [
            f"FaultReport: {self.n_injected}/{self.scheduled_faults} "
            f"scheduled faults delivered ({kind_note})",
            f"  retries       {self.n_retries} backoffs, "
            f"{self.n_fatal} fatal attempts",
            f"  breaker       {self.n_breaker_trips} trips, "
            f"{len(self.breaker_transitions)} transitions, "
            f"{self.probe_successes} probe successes, "
            f"{self.fast_failed_requests} requests failed fast",
            f"  degradation   {self.n_degraded_batches} batches below "
            f"tier 0",
            f"  deadlines     {self.deadline_dropped_requests} requests "
            f"dropped expired",
        ]
        return "\n".join(lines)

    def to_bytes(self) -> bytes:
        """Canonical byte encoding for golden determinism comparisons."""
        parts: List[str] = [f"scheduled={self.scheduled_faults}",
                            f"fast_failed={self.fast_failed_requests}",
                            f"deadline_dropped="
                            f"{self.deadline_dropped_requests}",
                            f"probe_successes={self.probe_successes}"]
        for r in self.injections:
            parts.append(f"inject {r.seconds!r} {r.kind} "
                         f"{r.batch_index} {r.attempt} {int(r.fatal)}")
        for r in self.retries:
            parts.append(f"retry {r.seconds!r} {r.batch_index} "
                         f"{r.attempt} {r.backoff_seconds!r}")
        for t in self.breaker_transitions:
            parts.append(f"breaker {t.seconds!r} {t.from_state} "
                         f"{t.to_state}")
        for r in self.degradations:
            parts.append(f"degrade {r.seconds!r} {r.batch_index} "
                         f"{r.tier} {r.reason}")
        return "\n".join(parts).encode("utf-8")
