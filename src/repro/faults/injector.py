"""Delivery of scheduled faults into the kernel-dispatch path.

The :class:`FaultInjector` walks a :class:`repro.faults.plan.FaultPlan`
in schedule order and converts armed events into concrete effects at
the point :func:`repro.core.pipeline.stream_batches` assembles a batch's
timing: a stall stretches the compute time, a timeout/ECC/OOM raises the
matching :class:`repro.errors.FaultError` subclass with the simulated
seconds the doomed attempt consumed.  Consumption is strictly ordered by
the simulated clock, so replaying the same plan against the same
dispatch sequence delivers the same faults to the same batches.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.pipeline import BatchTiming
from repro.errors import (
    DeviceMemoryError,
    KernelTimeoutError,
    MemoryFaultError,
    ProcessCrashError,
)
from repro.faults.plan import (
    FAULT_ECC_BITFLIP,
    FAULT_KERNEL_STALL,
    FAULT_KERNEL_TIMEOUT,
    FAULT_MEM_EXHAUSTION,
    FaultEvent,
    FaultPlan,
)


class FaultInjector:
    """Stateful cursor over a plan's kernel-scope events.

    One injector serves one replay: each dispatch *attempt* polls the
    injector with the attempt's simulated start time and consumes at
    most one armed event (the earliest whose ``at_seconds`` has
    passed).  Events that never arm before the trace ends are simply
    not delivered — the :class:`repro.faults.report.FaultReport`
    distinguishes scheduled from delivered counts.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._pending: List[FaultEvent] = plan.kernel_events()
        self._cursor = 0
        #: Jitter stream handed to the retry policy, per the plan seed.
        self.jitter_rng: np.random.Generator = plan.rng("jitter")

    @property
    def pending(self) -> int:
        """Kernel-scope events not yet delivered."""
        return len(self._pending) - self._cursor

    @property
    def delivered(self) -> int:
        """Kernel-scope events consumed so far."""
        return self._cursor

    def poll(self, now: float) -> Optional[FaultEvent]:
        """Consume the earliest event armed at or before ``now``."""
        if self._cursor >= len(self._pending):
            return None
        event = self._pending[self._cursor]
        if event.at_seconds > now:
            return None
        self._cursor += 1
        return event

    def apply(self, event: FaultEvent, timing: BatchTiming) -> BatchTiming:
        """Turn one armed event into its effect on a batch attempt.

        Args:
            event: The event :meth:`poll` returned.
            timing: The attempt's fault-free timing (what the batch
                *would* have cost).

        Returns:
            A (possibly stretched) timing for survivable faults.

        Raises:
            KernelTimeoutError: The watchdog killed the kernel after
                ``event.magnitude`` seconds of compute.
            MemoryFaultError: An ECC error was detected after the full
                compute ran; the results are discarded.
            DeviceMemoryError: Allocation failed before compute.
        """
        if event.kind == FAULT_KERNEL_STALL:
            return BatchTiming(
                n_queries=timing.n_queries,
                upload_seconds=timing.upload_seconds,
                compute_seconds=timing.compute_seconds * event.magnitude,
                download_seconds=timing.download_seconds,
            )
        if event.kind == FAULT_KERNEL_TIMEOUT:
            raise KernelTimeoutError(
                f"kernel watchdog expired after {event.magnitude:g} s "
                f"(batch of {timing.n_queries} queries)",
                kind=event.kind,
                upload_seconds=timing.upload_seconds,
                compute_seconds=event.magnitude,
            )
        if event.kind == FAULT_ECC_BITFLIP:
            raise MemoryFaultError(
                f"uncorrectable ECC error detected in distance buffer "
                f"(batch of {timing.n_queries} queries); results "
                f"discarded",
                kind=event.kind,
                upload_seconds=timing.upload_seconds,
                compute_seconds=timing.compute_seconds,
            )
        if event.kind == FAULT_MEM_EXHAUSTION:
            raise DeviceMemoryError(
                f"device memory exhausted allocating buffers for "
                f"{timing.n_queries} queries",
                kind=event.kind,
                upload_seconds=timing.upload_seconds,
                compute_seconds=0.0,
            )
        raise MemoryFaultError(  # pragma: no cover - plan validates kinds
            f"unhandled kernel fault kind {event.kind!r}", kind=event.kind)

    def hook(self, now: float, sink: Optional[list] = None,
             metrics=None):
        """A ``fault_hook`` for :func:`repro.core.pipeline.stream_batches`.

        Args:
            now: Simulated start time of the dispatch attempt (arms
                events scheduled at or before it).
            sink: Optional list collecting the consumed
                :class:`FaultEvent` (also populated for survivable
                faults, which do not raise).
            metrics: Optional
                :class:`repro.observability.metrics.MetricsRegistry`;
                every delivered event increments
                ``faults.delivered.<kind>`` at the point of delivery,
                so the registry sees faults even when the raised error
                is swallowed upstream.

        Returns:
            A callable ``(batch_index, timing) -> timing`` that injects
            at most one fault into the attempt.
        """
        def _hook(_index: int, timing: BatchTiming) -> BatchTiming:
            event = self.poll(now)
            if event is None:
                return timing
            if sink is not None:
                sink.append(event)
            if metrics is not None:
                metrics.counter(f"faults.delivered.{event.kind}").inc()
            return self.apply(event, timing)
        return _hook


class CrashInjector:
    """Stateful cursor over a plan's ``crash`` events.

    The mutable index polls the injector at every named lifecycle phase
    boundary (the :data:`repro.faults.plan.CRASH_PHASES` points inside
    compaction and checkpointing).  A crash event armed at or before the
    poll time fires when its ``phase`` matches the boundary — or at the
    very next boundary of any name when its ``phase`` is empty.  Each
    event is consumed at most once, in schedule order, so replaying the
    same plan against the same workload kills the process at the same
    instants.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._pending: List[FaultEvent] = plan.mutation_events()
        self._delivered = 0

    @property
    def pending(self) -> int:
        """Crash events not yet delivered."""
        return len(self._pending)

    @property
    def delivered(self) -> int:
        """Crash events consumed so far."""
        return self._delivered

    def poll(self, phase: str, now: float) -> Optional[FaultEvent]:
        """Consume the earliest armed event matching ``phase``, if any."""
        for i, event in enumerate(self._pending):
            if event.at_seconds > now:
                break
            if event.phase in ("", phase):
                self._pending.pop(i)
                self._delivered += 1
                return event
        return None

    def check(self, phase: str, now: float,
              metrics=None) -> None:
        """Raise :class:`ProcessCrashError` if an armed event matches.

        Args:
            phase: The lifecycle phase boundary being crossed.
            now: Simulated time of the boundary.
            metrics: Optional
                :class:`repro.observability.metrics.MetricsRegistry`;
                a delivered crash increments ``faults.delivered.crash``.
        """
        event = self.poll(phase, now)
        if event is None:
            return
        if metrics is not None:
            metrics.counter(f"faults.delivered.{event.kind}").inc()
        raise ProcessCrashError(
            f"process crashed at phase {phase!r} "
            f"(event armed at t={event.at_seconds:g})",
            phase=phase, kind=event.kind)
