"""Deterministic fault injection and fault tolerance (`repro.faults`).

The serving stack runs on a fully simulated clock, which makes a rare
thing possible: *replayable chaos*.  A seeded, serializable
:class:`FaultPlan` schedules faults (kernel timeouts, stalls, ECC
bit-flips, device-memory exhaustion, worker loss, network partitions)
on the simulated timeline; a :class:`FaultInjector` delivers them
inside kernel dispatch; and the recovery policies —
:class:`RetryPolicy`, :class:`CircuitBreaker`, and the gracefully
degrading :class:`AdmissionGovernor` — decide what happens next.  Every
event lands in a :class:`FaultReport`, and the same trace plus the same
plan reproduce every byte of it.  See ``docs/fault_model.md``.
"""

from repro.faults.injector import CrashInjector, FaultInjector
from repro.faults.plan import (
    ALL_FAULT_KINDS,
    CLUSTER_FAULT_KINDS,
    CRASH_PHASES,
    FAULT_CRASH,
    FAULT_ECC_BITFLIP,
    FAULT_KERNEL_STALL,
    FAULT_KERNEL_TIMEOUT,
    FAULT_MEM_EXHAUSTION,
    FAULT_NETWORK_PARTITION,
    FAULT_WORKER_LOSS,
    KERNEL_FAULT_KINDS,
    MUTATION_FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    fault_plan_names,
    named_fault_plan,
)
from repro.faults.policy import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    AdmissionGovernor,
    BreakerPolicy,
    BreakerTransition,
    CircuitBreaker,
    RetryPolicy,
)
from repro.faults.report import (
    DegradationRecord,
    FaultReport,
    InjectionRecord,
    RetryRecord,
)

__all__ = [
    "ALL_FAULT_KINDS",
    "AdmissionGovernor",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BreakerPolicy",
    "BreakerTransition",
    "CLUSTER_FAULT_KINDS",
    "CRASH_PHASES",
    "CircuitBreaker",
    "CrashInjector",
    "DegradationRecord",
    "FAULT_CRASH",
    "FAULT_ECC_BITFLIP",
    "FAULT_KERNEL_STALL",
    "FAULT_KERNEL_TIMEOUT",
    "FAULT_MEM_EXHAUSTION",
    "FAULT_NETWORK_PARTITION",
    "FAULT_WORKER_LOSS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "InjectionRecord",
    "KERNEL_FAULT_KINDS",
    "MUTATION_FAULT_KINDS",
    "RetryPolicy",
    "RetryRecord",
    "fault_plan_names",
    "named_fault_plan",
]
