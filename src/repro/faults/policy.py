"""Recovery policies: retries, circuit breaking, graceful degradation.

Three cooperating policies let the serving engine survive the faults
:mod:`repro.faults.injector` delivers:

- :class:`RetryPolicy` — capped exponential backoff with jitter drawn
  from the fault plan's seeded RNG, so even the "random" spacing of
  retries replays deterministically.
- :class:`BreakerPolicy` / :class:`CircuitBreaker` — after a run of
  consecutive kernel failures the breaker opens and dispatches fail
  fast (or degrade, with a governor) instead of burning the device on
  work that keeps dying; after a cooldown a half-open probe decides
  whether to close again.
- :class:`AdmissionGovernor` — under queue pressure or an impaired
  breaker, search quality steps down through configured tiers
  (shrinking candidate-pool ``l_n`` / explore budget ``e``) instead of
  rejecting requests outright.  Every degraded request carries its tier
  so a cheaper answer is never mistaken for a full-quality one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.params import SearchParams
from repro.errors import ConfigurationError
from repro.gpusim.sorting import next_pow2


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for failed dispatch attempts.

    Attributes:
        max_retries: Re-execution attempts after the first failure
            (``0`` disables retrying).
        base_seconds: Backoff before the first retry.
        cap_seconds: Upper bound on any single backoff.
        jitter_fraction: Each backoff is stretched by up to this
            fraction, drawn from the fault plan's RNG — desynchronising
            retries exactly as production backoff jitter does.
    """

    max_retries: int = 2
    base_seconds: float = 2e-4
    cap_seconds: float = 2e-3
    jitter_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_seconds <= 0 or self.cap_seconds <= 0:
            raise ConfigurationError(
                f"backoff base/cap must be positive, got "
                f"{self.base_seconds}, {self.cap_seconds}"
            )
        if self.cap_seconds < self.base_seconds:
            raise ConfigurationError(
                f"cap_seconds ({self.cap_seconds}) must be >= "
                f"base_seconds ({self.base_seconds})"
            )
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ConfigurationError(
                f"jitter_fraction must lie in [0, 1], got "
                f"{self.jitter_fraction}"
            )

    def backoff_seconds(self, attempt: int,
                        rng: np.random.Generator) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        Always draws from ``rng`` (even at zero jitter) so the plan's
        jitter stream advances identically whatever the fraction —
        changing the knob never re-times *other* random decisions.
        """
        if attempt <= 0:
            raise ConfigurationError(
                f"attempt must be >= 1, got {attempt}"
            )
        delay = min(self.base_seconds * (2.0 ** (attempt - 1)),
                    self.cap_seconds)
        draw = float(rng.random())
        return delay * (1.0 + self.jitter_fraction * draw)


#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Knobs of the dispatch circuit breaker.

    Attributes:
        failure_threshold: Consecutive failed attempts that trip the
            breaker open.
        cooldown_seconds: How long an open breaker blocks dispatches
            before allowing a half-open probe.
        half_open_probes: Consecutive successful probe dispatches a
            half-open breaker requires before it closes again (default
            ``1`` reproduces the classic close-on-first-success
            breaker).  Any probe failure re-opens immediately, whatever
            the streak.
    """

    failure_threshold: int = 3
    cooldown_seconds: float = 2e-3
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold <= 0:
            raise ConfigurationError(
                f"failure_threshold must be positive, got "
                f"{self.failure_threshold}"
            )
        if self.cooldown_seconds < 0:
            raise ConfigurationError(
                f"cooldown_seconds must be >= 0, got "
                f"{self.cooldown_seconds}"
            )
        if self.half_open_probes <= 0:
            raise ConfigurationError(
                f"half_open_probes must be positive, got "
                f"{self.half_open_probes}"
            )


@dataclass(frozen=True)
class BreakerTransition:
    """One recorded breaker state change."""

    seconds: float
    from_state: str
    to_state: str


class CircuitBreaker:
    """Mutable breaker runtime driven by the simulated clock.

    One instance serves one replay.  All time arguments are simulated
    seconds and must be non-decreasing across calls (the engine drives
    it in dispatch order).
    """

    def __init__(self, policy: BreakerPolicy):
        self.policy = policy
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.open_until = 0.0
        self.transitions: List[BreakerTransition] = []
        #: Successful dispatches recorded while half-open (total across
        #: the replay — the ``faults.breaker.probe_successes`` metric).
        self.probe_successes = 0
        self._half_open_streak = 0

    def _move(self, now: float, to_state: str) -> None:
        if to_state == self.state:
            return
        self.transitions.append(BreakerTransition(
            seconds=now, from_state=self.state, to_state=to_state))
        self.state = to_state
        self._half_open_streak = 0

    def allow(self, now: float) -> bool:
        """May a dispatch proceed at ``now``?

        An open breaker whose cooldown has elapsed moves to half-open
        and admits probe dispatches until either one fails (re-open)
        or ``policy.half_open_probes`` in a row succeed (close).
        """
        if self.state == BREAKER_OPEN and now >= self.open_until:
            self._move(now, BREAKER_HALF_OPEN)
        return self.state != BREAKER_OPEN

    @property
    def impaired(self) -> bool:
        """True while the breaker is not fully closed."""
        return self.state != BREAKER_CLOSED

    def record_success(self, now: float) -> None:
        """A dispatch attempt succeeded.

        A closed breaker just resets its failure count.  A half-open
        breaker counts the probe; it closes only once
        ``policy.half_open_probes`` consecutive probes have succeeded
        — until then further dispatches remain probes (and a single
        failure re-opens).
        """
        self.consecutive_failures = 0
        if self.state == BREAKER_HALF_OPEN:
            self.probe_successes += 1
            self._half_open_streak += 1
            if self._half_open_streak < self.policy.half_open_probes:
                return
        self._move(now, BREAKER_CLOSED)

    def record_failure(self, now: float) -> None:
        """A dispatch attempt failed: count it; trip when over threshold.

        A half-open probe failure re-opens immediately, whatever the
        count — the probe existed to test recovery and it failed.
        """
        self.consecutive_failures += 1
        if (self.state == BREAKER_HALF_OPEN
                or self.consecutive_failures
                >= self.policy.failure_threshold):
            self.open_until = now + self.policy.cooldown_seconds
            self._move(now, BREAKER_OPEN)


#: Degradation-decision reasons recorded per event.
DEGRADE_PRESSURE = "pressure"
DEGRADE_BREAKER = "breaker"


@dataclass(frozen=True)
class AdmissionGovernor:
    """Quality-tier step-down under pressure or breaker impairment.

    Tier ``0`` is the engine's configured :class:`SearchParams`; tier
    ``i >= 1`` replaces ``(l_n, e)`` with ``tiers[i - 1]``.  The tier
    for a dispatch is the number of ``pressure_thresholds`` at or below
    the current backlog fraction, jumping straight to the deepest tier
    while the breaker is impaired (kernel attempts are failing, so the
    cheapest probe is the right probe).

    Attributes:
        tiers: ``(l_n, e)`` per degraded tier, strictly decreasing
            ``l_n`` (each a power of two).
        pressure_thresholds: Backlog fractions (backlog / ``max_queue``)
            at which each successive tier engages; same length as
            ``tiers``, ascending, in ``(0, 1]``.
        degrade_on_breaker: Jump to the deepest tier while the breaker
            is open or half-open.
    """

    tiers: Tuple[Tuple[int, int], ...] = ((32, 16), (16, 8))
    pressure_thresholds: Tuple[float, ...] = (0.5, 0.8)
    degrade_on_breaker: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "tiers",
                           tuple((int(l), int(e)) for l, e in self.tiers))
        object.__setattr__(self, "pressure_thresholds",
                           tuple(float(p) for p in self.pressure_thresholds))
        if not self.tiers:
            raise ConfigurationError(
                "governor needs at least one degraded tier"
            )
        if len(self.pressure_thresholds) != len(self.tiers):
            raise ConfigurationError(
                f"{len(self.tiers)} tiers need {len(self.tiers)} "
                f"pressure thresholds, got "
                f"{len(self.pressure_thresholds)}"
            )
        last = 0.0
        for p in self.pressure_thresholds:
            if not last < p <= 1.0:
                raise ConfigurationError(
                    f"pressure_thresholds must be ascending in (0, 1], "
                    f"got {self.pressure_thresholds}"
                )
            last = p
        prev_l = None
        for l_n, e in self.tiers:
            if not 1 <= e <= l_n:
                raise ConfigurationError(
                    f"tier ({l_n}, {e}): e must lie in [1, l_n]"
                )
            if prev_l is not None and l_n >= prev_l:
                raise ConfigurationError(
                    f"tier l_n values must strictly decrease, got "
                    f"{[t[0] for t in self.tiers]}"
                )
            prev_l = l_n

    @property
    def n_tiers(self) -> int:
        """Tier count including the full-quality tier 0."""
        return len(self.tiers) + 1

    @classmethod
    def default_for(cls, params: SearchParams,
                    n_degraded_tiers: int = 2) -> "AdmissionGovernor":
        """Halve ``l_n`` per tier down to the smallest pool holding ``k``."""
        floor = next_pow2(params.k)
        tiers = []
        l_n = params.l_n
        for _ in range(n_degraded_tiers):
            l_n //= 2
            if l_n < floor:
                break
            tiers.append((l_n, max(l_n // 2, params.k)))
        if not tiers:
            raise ConfigurationError(
                f"no degraded tier fits below l_n={params.l_n} with "
                f"k={params.k}"
            )
        step = 1.0 / (len(tiers) + 1)
        thresholds = tuple(step * (i + 1) for i in range(len(tiers)))
        return cls(tiers=tuple(tiers), pressure_thresholds=thresholds)

    def select_tier(self, pressure: float, breaker_impaired: bool) -> int:
        """Tier for a dispatch at the given backlog fraction."""
        if breaker_impaired and self.degrade_on_breaker:
            return len(self.tiers)
        tier = 0
        for threshold in self.pressure_thresholds:
            if pressure >= threshold:
                tier += 1
        return tier

    def params_for(self, tier: int, base: SearchParams) -> SearchParams:
        """The :class:`SearchParams` a given tier searches with."""
        if tier == 0:
            return base
        if not 1 <= tier <= len(self.tiers):
            raise ConfigurationError(
                f"tier must lie in [0, {len(self.tiers)}], got {tier}"
            )
        l_n, e = self.tiers[tier - 1]
        if base.k > l_n:
            raise ConfigurationError(
                f"tier {tier} pool l_n={l_n} cannot hold k={base.k} "
                f"results"
            )
        return base.with_overrides(l_n=l_n, e=min(e, l_n))
