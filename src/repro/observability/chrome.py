"""Chrome ``trace_event`` export for simulated-clock span traces.

``chrome://tracing`` / Perfetto's legacy JSON format is the lingua
franca of timeline visualisation, so every :class:`SpanTracer` trace
can be exported to it: one ``B``/``E`` duration pair per span, one
``i`` instant event per span event, one thread (``tid``) per lane.

Export is **structure-driven**, not sort-driven: events are emitted by
a depth-first walk of each lane's span forest, which guarantees matched
``B``/``E`` nesting per thread even when several spans share a
timestamp (zero-width spans, back-to-back batches).  Timestamps are
simulated seconds scaled to microseconds, the unit the viewer expects.

:func:`parse_chrome_trace` is the exporter's own validator — it
re-parses an export and checks the contract the viewer relies on
(valid JSON, matched pairs per thread, non-decreasing timestamps).
CI's trace-smoke step and the fuzz suite both round-trip through it.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.observability.span import Span, SpanTracer

#: Process id stamped on every event (single simulated process).
PID = 1


def _lane_tids(tracer: SpanTracer) -> Dict[str, int]:
    """Stable lane -> tid mapping (first-use order, which is
    deterministic because span ids are)."""
    tids: Dict[str, int] = {}
    for span in tracer.spans:
        if span.lane not in tids:
            tids[span.lane] = len(tids) + 1
    return tids


def _lane_forest(tracer: SpanTracer,
                 lane: str) -> List[Span]:
    """Top-level spans of one lane: spans on the lane none of whose
    ancestors sit on the same lane."""
    spans = tracer.spans
    tops: List[Span] = []
    for span in spans:
        if span.lane != lane:
            continue
        parent = span.parent_id
        nested = False
        while parent is not None:
            if spans[parent].lane == lane:
                nested = True
                break
            parent = spans[parent].parent_id
        if not nested:
            tops.append(span)
    tops.sort(key=lambda s: (s.start_seconds, s.span_id))
    return tops


def _lane_children(tracer: SpanTracer, span: Span) -> List[Span]:
    """Descendants of ``span`` on its own lane with no same-lane span
    between them and ``span`` (the lane-local children)."""
    out: List[Span] = []

    def walk(parent: Span) -> None:
        for child in tracer.children_of(parent.span_id):
            if child.lane == span.lane:
                out.append(child)
            else:
                walk(child)

    walk(span)
    out.sort(key=lambda s: (s.start_seconds, s.span_id))
    return out


def _span_args(span: Span) -> Dict[str, object]:
    args: Dict[str, object] = {"span_id": span.span_id}
    args.update(span.attributes)
    return args


def _emit_span(tracer: SpanTracer, span: Span, tid: int,
               events: List[Dict[str, object]],
               inherited: Optional[List] = None) -> None:
    events.append({"ph": "B", "name": span.name, "pid": PID,
                   "tid": tid, "ts": span.start_seconds * 1e6,
                   "args": _span_args(span)})
    children = _lane_children(tracer, span)
    # An instant strictly inside a same-lane child's interval must be
    # emitted *inside* that child's B/E pair or its timestamp would
    # regress past the child's E; push such instants down.
    instants = list(span.events) + list(inherited or [])
    pushdown: Dict[int, List] = {}
    local: List = []
    for instant in instants:
        owner = None
        for child in children:
            if (child.start_seconds < instant.seconds
                    < child.end_seconds):
                owner = child.span_id
                break
        if owner is None:
            local.append(instant)
        else:
            pushdown.setdefault(owner, []).append(instant)
    # Instants and lane-local children interleave by time; an instant
    # at a shared timestamp precedes the child opening there.
    items: List[Tuple[float, int, object]] = []
    for child in children:
        items.append((child.start_seconds, 1, child))
    for instant in local:
        items.append((instant.seconds, 0, instant))
    items.sort(key=lambda item: (item[0], item[1]))
    for _ts, kind, payload in items:
        if kind == 1:
            _emit_span(tracer, payload, tid, events,
                       inherited=pushdown.get(payload.span_id))
        else:
            events.append({"ph": "i", "name": payload.name, "pid": PID,
                           "tid": tid, "ts": payload.seconds * 1e6,
                           "s": "t",
                           "args": dict(payload.attributes)})
    events.append({"ph": "E", "name": span.name, "pid": PID,
                   "tid": tid, "ts": span.end_seconds * 1e6,
                   "args": {}})


def export_chrome_trace(tracer: SpanTracer) -> Dict[str, object]:
    """Export a closed trace as a Chrome ``trace_event`` object."""
    if tracer.n_open:
        raise ObservabilityError(
            f"cannot export a trace with {tracer.n_open} open span(s)"
        )
    tids = _lane_tids(tracer)
    events: List[Dict[str, object]] = []
    for lane, tid in tids.items():
        events.append({"ph": "M", "name": "thread_name", "pid": PID,
                       "tid": tid, "ts": 0.0,
                       "args": {"name": lane}})
    for lane, tid in tids.items():
        for top in _lane_forest(tracer, lane):
            _emit_span(tracer, top, tid, events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace_bytes(tracer: SpanTracer) -> bytes:
    """Canonical byte encoding of :func:`export_chrome_trace`."""
    return json.dumps(export_chrome_trace(tracer), sort_keys=True,
                      separators=(",", ":"),
                      ensure_ascii=True).encode("ascii")


def parse_chrome_trace(payload: bytes) -> List[Dict[str, object]]:
    """Parse and validate a Chrome trace export.

    Checks the contract the trace viewer depends on:

    - the payload is valid JSON with a ``traceEvents`` list;
    - every ``B`` has a matching ``E`` with the same name on the same
      thread, properly nested (stack discipline per ``tid``);
    - per thread, duration-event timestamps never decrease in emission
      order (instants must fall inside their enclosing span).

    Returns the event list on success.

    Raises:
        ObservabilityError: On any violation.
    """
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    try:
        data = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ObservabilityError(f"malformed Chrome trace: {err}")
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise ObservabilityError(
            "Chrome trace must contain a traceEvents list"
        )
    stacks: Dict[int, List[Dict[str, object]]] = {}
    last_ts: Dict[int, float] = {}
    for event in events:
        if not isinstance(event, dict) or "ph" not in event:
            raise ObservabilityError(
                f"malformed trace event: {event!r}"
            )
        phase = event["ph"]
        if phase == "M":
            continue
        tid = event.get("tid")
        ts = event.get("ts")
        if not isinstance(tid, int) or not isinstance(ts, (int, float)):
            raise ObservabilityError(
                f"trace event missing tid/ts: {event!r}"
            )
        if ts < last_ts.get(tid, float("-inf")):
            raise ObservabilityError(
                f"timestamps regress on tid {tid}: {ts} after "
                f"{last_ts[tid]}"
            )
        last_ts[tid] = float(ts)
        stack = stacks.setdefault(tid, [])
        if phase == "B":
            stack.append(event)
        elif phase == "E":
            if not stack:
                raise ObservabilityError(
                    f"E event with empty stack on tid {tid}: "
                    f"{event.get('name')!r}"
                )
            opener = stack.pop()
            if opener.get("name") != event.get("name"):
                raise ObservabilityError(
                    f"mismatched B/E pair on tid {tid}: "
                    f"{opener.get('name')!r} closed by "
                    f"{event.get('name')!r}"
                )
        elif phase == "i":
            if not stack:
                raise ObservabilityError(
                    f"instant event outside any span on tid {tid}: "
                    f"{event.get('name')!r}"
                )
        else:
            raise ObservabilityError(
                f"unexpected event phase {phase!r}"
            )
    for tid, stack in stacks.items():
        if stack:
            raise ObservabilityError(
                f"{len(stack)} unclosed B event(s) on tid {tid}"
            )
    return events
