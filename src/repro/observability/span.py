"""Clock-domain spans: nested intervals on the *simulated* clock.

The whole stack runs on simulated seconds, which makes tracing exact in
a way wall-clock tracers never are: a :class:`Span` opens and closes at
engine-cycle timestamps, so "where did request #4812's latency go?" has
one answer that every replay reproduces byte-for-byte.

A :class:`SpanTracer` records a forest of spans:

- Spans **nest** — a child's interval lies inside its parent's.
- Spans carry a **lane** (a render track, the Chrome-trace ``tid``).
  Two siblings may overlap in time only if they sit on different lanes;
  the tracer allocates lanes deterministically (lowest free index per
  lane *group*), so the pipelined overlap of micro-batches lays out as
  a flame chart instead of a lie.
- Spans carry **attributes** (JSON scalars) and point-in-time
  **events** (a fault delivery, a breaker trip) stamped inside their
  interval.

Serialization is canonical: sorted keys, exact ``repr`` floats,
ASCII-escaped strings — two tracers built by identical replays produce
identical bytes (:meth:`SpanTracer.to_json_bytes`), which is what the
golden-trace test pins.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ObservabilityError

#: Lane used when a root span does not name one.
DEFAULT_LANE = "main"


def jsonable_scalar(value: object) -> object:
    """Coerce ``value`` to a deterministically serializable JSON scalar.

    Accepts Python/NumPy bools, ints, floats and strings (``None``
    passes through).  Non-finite floats are rejected: ``NaN``/``inf``
    have no canonical JSON spelling, so letting one into a trace would
    silently break byte-determinism downstream.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    # NumPy scalars satisfy these dunders without importing numpy here.
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ObservabilityError(
                f"non-finite float {value!r} cannot be serialized "
                f"deterministically; store a sentinel string instead"
            )
        return float(value)
    if hasattr(value, "item"):  # numpy scalar
        return jsonable_scalar(value.item())
    raise ObservabilityError(
        f"attribute value {value!r} of type {type(value).__name__} is "
        f"not a JSON scalar (bool/int/float/str/None)"
    )


def _jsonable_attrs(attributes: Optional[Dict[str, object]]
                    ) -> Dict[str, object]:
    if not attributes:
        return {}
    out: Dict[str, object] = {}
    for key, value in attributes.items():
        if not isinstance(key, str):
            raise ObservabilityError(
                f"attribute keys must be strings, got {key!r}"
            )
        out[key] = jsonable_scalar(value)
    return out


@dataclass(frozen=True)
class SpanEvent:
    """A point-in-time annotation inside a span's interval."""

    seconds: float
    name: str
    attributes: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form for canonical serialization."""
        return {"seconds": self.seconds, "name": self.name,
                "attributes": dict(self.attributes)}


@dataclass
class Span:
    """One traced interval on the simulated clock.

    Attributes:
        span_id: Tracer-assigned id, dense from 0 in open order.
        name: Span taxonomy name (see ``docs/observability.md``).
        lane: Render track; siblings on one lane never overlap.
        start_seconds: Simulated open instant.
        parent_id: Enclosing span's id (``None`` for roots).
        end_seconds: Simulated close instant (``None`` while open).
        attributes: JSON-scalar annotations.
        events: Point events stamped inside the interval.
    """

    span_id: int
    name: str
    lane: str
    start_seconds: float
    parent_id: Optional[int] = None
    end_seconds: Optional[float] = None
    attributes: Dict[str, object] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)

    @property
    def open(self) -> bool:
        """True while the span has not been closed."""
        return self.end_seconds is None

    @property
    def duration_seconds(self) -> float:
        """Closed interval length (raises while open)."""
        if self.end_seconds is None:
            raise ObservabilityError(
                f"span {self.span_id} ({self.name!r}) is still open"
            )
        return self.end_seconds - self.start_seconds

    def overlaps(self, other: "Span") -> bool:
        """Strict interval overlap (zero-width spans never overlap)."""
        if self.end_seconds is None or other.end_seconds is None:
            raise ObservabilityError("cannot test overlap of open spans")
        return (self.start_seconds < other.end_seconds
                and other.start_seconds < self.end_seconds)

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form for canonical serialization."""
        return {
            "span_id": self.span_id,
            "name": self.name,
            "lane": self.lane,
            "parent_id": self.parent_id,
            "start_seconds": self.start_seconds,
            "end_seconds": self.end_seconds,
            "attributes": dict(self.attributes),
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        """Inverse of :meth:`to_dict`."""
        return cls(
            span_id=int(data["span_id"]),
            name=str(data["name"]),
            lane=str(data["lane"]),
            parent_id=(None if data.get("parent_id") is None
                       else int(data["parent_id"])),
            start_seconds=float(data["start_seconds"]),
            end_seconds=(None if data.get("end_seconds") is None
                         else float(data["end_seconds"])),
            attributes=dict(data.get("attributes", {})),
            events=[SpanEvent(seconds=float(e["seconds"]),
                              name=str(e["name"]),
                              attributes=dict(e.get("attributes", {})))
                    for e in data.get("events", [])],
        )


class _LaneGroup:
    """Deterministic lane packing: lowest-index lane free at open time.

    A lane is occupied from a span's open until its close; because all
    times are simulated, "free" means *no recorded span's interval can
    still cover the new start* — an open span blocks its lane outright,
    a closed one blocks it through its end time.
    """

    def __init__(self, name: str):
        self.name = name
        #: Per lane: simulated time the lane is busy until
        #: (``inf`` while a span on it is open).
        self.busy_until: List[float] = []

    def acquire(self, start_seconds: float) -> int:
        for index, until in enumerate(self.busy_until):
            if until <= start_seconds:
                self.busy_until[index] = math.inf
                return index
        self.busy_until.append(math.inf)
        return len(self.busy_until) - 1

    def release(self, index: int, end_seconds: float) -> None:
        self.busy_until[index] = end_seconds


class SpanTracer:
    """Records a forest of simulated-clock spans.

    Usage mirrors the engine's event loop: :meth:`begin` a span when the
    simulated activity starts, :meth:`end` it at the activity's
    simulated completion (wall-clock call order is irrelevant — only
    the timestamps matter), :meth:`add` a retroactive complete span
    when both endpoints are already known, and :meth:`finish` once at
    shutdown, which fails loudly if anything was left open.
    """

    def __init__(self):
        self._spans: List[Span] = []
        self._open: Dict[int, Span] = {}
        self._lane_groups: Dict[str, _LaneGroup] = {}
        self._lane_of_span: Dict[int, Tuple[str, int]] = {}
        self._finished = False

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    @property
    def spans(self) -> Tuple[Span, ...]:
        """All recorded spans, in open order (``span_id`` order)."""
        return tuple(self._spans)

    @property
    def n_open(self) -> int:
        """Spans begun but not yet ended."""
        return len(self._open)

    def open_spans(self) -> Tuple[Span, ...]:
        """The spans currently open (diagnostics for leak reports)."""
        return tuple(self._open[i] for i in sorted(self._open))

    def _resolve_lane(self, span_id: int, start_seconds: float,
                      lane: Optional[str], lane_group: Optional[str],
                      parent_id: Optional[int]) -> str:
        if lane is not None and lane_group is not None:
            raise ObservabilityError(
                "pass either lane= or lane_group=, not both"
            )
        if lane is not None:
            return lane
        if lane_group is not None:
            group = self._lane_groups.get(lane_group)
            if group is None:
                group = _LaneGroup(lane_group)
                self._lane_groups[lane_group] = group
            index = group.acquire(start_seconds)
            self._lane_of_span[span_id] = (lane_group, index)
            return f"{lane_group}/{index}"
        if parent_id is not None:
            return self._spans[parent_id].lane
        return DEFAULT_LANE

    def begin(self, name: str, start_seconds: float,
              parent_id: Optional[int] = None,
              lane: Optional[str] = None,
              lane_group: Optional[str] = None,
              attributes: Optional[Dict[str, object]] = None) -> int:
        """Open a span; returns its id.

        Args:
            name: Span taxonomy name.
            start_seconds: Simulated open instant.
            parent_id: Enclosing span (must itself be recorded).
            lane: Explicit render lane.
            lane_group: Allocate the lowest free lane of this group
                instead (``"<group>/<index>"``); lanes recycle once
                their previous occupant's interval has ended.
            attributes: Initial attributes (JSON scalars).
        """
        if self._finished:
            raise ObservabilityError("tracer already finished")
        if parent_id is not None and not (
                0 <= parent_id < len(self._spans)):
            raise ObservabilityError(
                f"unknown parent span id {parent_id}"
            )
        span_id = len(self._spans)
        resolved = self._resolve_lane(span_id, start_seconds, lane,
                                      lane_group, parent_id)
        span = Span(span_id=span_id, name=name, lane=resolved,
                    start_seconds=float(start_seconds),
                    parent_id=parent_id,
                    attributes=_jsonable_attrs(attributes))
        self._spans.append(span)
        self._open[span_id] = span
        return span_id

    def end(self, span_id: int, end_seconds: float,
            attributes: Optional[Dict[str, object]] = None) -> None:
        """Close an open span at ``end_seconds``, merging attributes."""
        span = self._open.pop(span_id, None)
        if span is None:
            raise ObservabilityError(
                f"span {span_id} is not open (double close, or never "
                f"begun)"
            )
        end_seconds = float(end_seconds)
        if end_seconds < span.start_seconds:
            self._open[span_id] = span
            raise ObservabilityError(
                f"span {span_id} ({span.name!r}) cannot end at "
                f"{end_seconds} before its start {span.start_seconds}"
            )
        span.end_seconds = end_seconds
        if attributes:
            span.attributes.update(_jsonable_attrs(attributes))
        placed = self._lane_of_span.pop(span_id, None)
        if placed is not None:
            group, index = placed
            self._lane_groups[group].release(index, end_seconds)

    def add(self, name: str, start_seconds: float, end_seconds: float,
            parent_id: Optional[int] = None,
            lane: Optional[str] = None,
            lane_group: Optional[str] = None,
            attributes: Optional[Dict[str, object]] = None) -> int:
        """Record a complete span whose endpoints are both known."""
        span_id = self.begin(name, start_seconds, parent_id=parent_id,
                             lane=lane, lane_group=lane_group,
                             attributes=attributes)
        self.end(span_id, end_seconds)
        return span_id

    def event(self, span_id: int, seconds: float, name: str,
              attributes: Optional[Dict[str, object]] = None) -> None:
        """Stamp a point event inside a recorded span's interval."""
        if not 0 <= span_id < len(self._spans):
            raise ObservabilityError(f"unknown span id {span_id}")
        span = self._spans[span_id]
        seconds = float(seconds)
        if seconds < span.start_seconds or (
                span.end_seconds is not None
                and seconds > span.end_seconds):
            raise ObservabilityError(
                f"event {name!r} at {seconds} falls outside span "
                f"{span_id} ({span.name!r})"
            )
        span.events.append(SpanEvent(seconds=seconds, name=name,
                                     attributes=_jsonable_attrs(
                                         attributes)))

    def finish(self) -> None:
        """Declare the trace complete; open spans are a hard error."""
        if self._open:
            leaks = ", ".join(
                f"{s.span_id}:{s.name}" for s in self.open_spans())
            raise ObservabilityError(
                f"{len(self._open)} span(s) still open at shutdown: "
                f"{leaks}"
            )
        self._finished = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def children_of(self, span_id: Optional[int]) -> Tuple[Span, ...]:
        """Direct children of a span (or the roots for ``None``)."""
        return tuple(s for s in self._spans if s.parent_id == span_id)

    def roots(self) -> Tuple[Span, ...]:
        """Spans with no parent."""
        return self.children_of(None)

    def find(self, name: str) -> Tuple[Span, ...]:
        """All spans with the given taxonomy name, id order."""
        return tuple(s for s in self._spans if s.name == name)

    def depth_of(self, span_id: int) -> int:
        """Root distance of a span (roots are depth 0)."""
        depth = 0
        parent = self._spans[span_id].parent_id
        while parent is not None:
            depth += 1
            parent = self._spans[parent].parent_id
        return depth

    def validate(self) -> None:
        """Check well-formedness of the whole forest.

        Raises :class:`ObservabilityError` on the first violation:
        an open span, a child escaping its parent's interval, two
        same-lane siblings overlapping, or an event outside its span.
        (The invariant test suite re-implements these checks
        independently; this method is the production guard the smoke
        scripts run.)
        """
        if self._open:
            raise ObservabilityError(
                f"{len(self._open)} span(s) still open"
            )
        by_parent: Dict[Optional[int], List[Span]] = {}
        for span in self._spans:
            by_parent.setdefault(span.parent_id, []).append(span)
            if span.parent_id is not None:
                parent = self._spans[span.parent_id]
                if (span.start_seconds < parent.start_seconds
                        or span.end_seconds > parent.end_seconds):
                    raise ObservabilityError(
                        f"span {span.span_id} ({span.name!r}) "
                        f"[{span.start_seconds}, {span.end_seconds}] "
                        f"escapes parent {parent.span_id} "
                        f"[{parent.start_seconds}, "
                        f"{parent.end_seconds}]"
                    )
            for event in span.events:
                if (event.seconds < span.start_seconds
                        or event.seconds > span.end_seconds):
                    raise ObservabilityError(
                        f"event {event.name!r} outside span "
                        f"{span.span_id}"
                    )
        for siblings in by_parent.values():
            by_lane: Dict[str, List[Span]] = {}
            for span in siblings:
                by_lane.setdefault(span.lane, []).append(span)
            for lane, group in by_lane.items():
                group = sorted(group, key=lambda s: (s.start_seconds,
                                                     s.end_seconds))
                for left, right in zip(group, group[1:]):
                    if left.overlaps(right):
                        raise ObservabilityError(
                            f"siblings {left.span_id} and "
                            f"{right.span_id} overlap on lane "
                            f"{lane!r}"
                        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form of the whole trace."""
        return {"format": "repro-trace-v1",
                "spans": [span.to_dict() for span in self._spans]}

    def to_json_bytes(self) -> bytes:
        """Canonical byte encoding: identical replays, identical bytes.

        Sorted keys, minimal separators, ASCII escapes, and exact
        ``repr`` floats — no locale, hash order or platform leaks.
        """
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"),
                          ensure_ascii=True).encode("ascii")

    def digest(self) -> str:
        """SHA-256 hex digest of :meth:`to_json_bytes`."""
        return hashlib.sha256(self.to_json_bytes()).hexdigest()

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SpanTracer":
        """Rebuild a (closed) tracer from :meth:`to_dict` output."""
        if data.get("format") != "repro-trace-v1":
            raise ObservabilityError(
                f"unknown trace format {data.get('format')!r}"
            )
        tracer = cls()
        spans = [Span.from_dict(s) for s in data.get("spans", [])]
        spans.sort(key=lambda s: s.span_id)
        for expected, span in enumerate(spans):
            if span.span_id != expected:
                raise ObservabilityError(
                    f"span ids must be dense from 0; missing "
                    f"{expected}"
                )
            if span.open:
                raise ObservabilityError(
                    f"span {span.span_id} in serialized trace is open"
                )
        tracer._spans = spans
        tracer._finished = True
        return tracer

    @classmethod
    def from_json_bytes(cls, payload: bytes) -> "SpanTracer":
        """Inverse of :meth:`to_json_bytes`."""
        try:
            data = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise ObservabilityError(f"malformed trace file: {err}")
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def tree_summary(self, max_names: int = 12) -> str:
        """Compact human-readable span census (what the CLI prints)."""
        counts: Dict[str, int] = {}
        for span in self._spans:
            counts[span.name] = counts.get(span.name, 0) + 1
        lanes = {span.lane for span in self._spans}
        lines = [f"trace: {len(self._spans)} spans on {len(lanes)} "
                 f"lanes"]
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        for name, count in ranked[:max_names]:
            lines.append(f"  {name:<18} {count}")
        if len(ranked) > max_names:
            lines.append(f"  … {len(ranked) - max_names} more span "
                         f"kinds")
        return "\n".join(lines)


def iter_descendants(tracer: SpanTracer,
                     span_id: int) -> Iterable[Span]:
    """Yield every descendant of ``span_id``, depth-first."""
    for child in tracer.children_of(span_id):
        yield child
        yield from iter_descendants(tracer, child.span_id)
