"""Bridges from the existing accounting objects into the registry.

Two attachment styles:

- :class:`TrackerMirror` subscribes to a live
  :class:`repro.gpusim.tracker.CycleTracker` via its charge-listener
  hook and replays every charge into a private tracker of its own.
  Because the mirror performs the *identical* NumPy operations in the
  identical order, its totals reconcile with the source **exactly**
  (bit-for-bit float equality), which is the property the invariant
  suite pins.
- :func:`publish_tracker_totals` folds a finished tracker's per-phase
  totals into registry counters (``kernel.cycles.<phase>``), one
  deterministic float addition per phase per batch — the serving
  engine calls this after every dispatched batch.
"""

from __future__ import annotations

from typing import Optional

from repro.gpusim.tracker import CycleTracker
from repro.observability.metrics import MetricsRegistry

#: Registry namespace for kernel phase cycles.
KERNEL_CYCLES_PREFIX = "kernel.cycles."


class TrackerMirror:
    """A charge-for-charge replica of a live :class:`CycleTracker`.

    Attach with :meth:`attach`; every subsequent ``charge`` on the
    source is re-applied to :attr:`tracker`, so
    ``mirror.tracker.phase_totals() == source.phase_totals()`` holds
    exactly at any instant after attachment (assuming the source was
    empty when attached).
    """

    def __init__(self, source: CycleTracker,
                 registry: Optional[MetricsRegistry] = None,
                 prefix: str = KERNEL_CYCLES_PREFIX):
        self.source = source
        self.tracker = CycleTracker(n_lanes=source.n_lanes)
        self.registry = registry
        self.prefix = prefix
        self._attached = False

    def attach(self) -> "TrackerMirror":
        """Subscribe to the source tracker's charge stream."""
        if not self._attached:
            self.source.add_listener(self._on_charge)
            self._attached = True
        return self

    def detach(self) -> None:
        """Unsubscribe (totals accumulated so far are kept)."""
        if self._attached:
            self.source.remove_listener(self._on_charge)
            self._attached = False

    def _on_charge(self, phase, cycles, lanes) -> None:
        self.tracker.charge(phase, cycles, lanes)

    def publish(self) -> None:
        """Fold current mirror totals into the registry counters."""
        if self.registry is None:
            return
        publish_tracker_totals(self.registry, self.tracker,
                               prefix=self.prefix)


def publish_tracker_totals(registry: MetricsRegistry,
                           tracker: CycleTracker,
                           prefix: str = KERNEL_CYCLES_PREFIX) -> None:
    """Add one tracker's per-phase cycle totals to registry counters.

    Phase iteration follows the tracker's charge order (insertion
    order), so repeated publication across batches sums floats in a
    reproducible order — a precondition for the byte-identical
    snapshot guarantee.
    """
    for phase, total in tracker.phase_totals().items():
        registry.counter(prefix + phase).inc(total)
    registry.counter(prefix.rstrip(".") + "_total").inc(
        tracker.total_cycles())
