"""A deterministic metrics registry: counters, gauges, histograms.

The registry is the single publication point for every quantitative
fact the stack produces — the serving engine, the fault injector, the
kernel cycle trackers and the distributed builder all write here, and
:class:`repro.serve.report.ServeReport` /
:class:`repro.faults.report.FaultReport` are *views* whose derived
properties must reconcile with it exactly (the invariant suite enforces
this, and :meth:`ServeReport.verify_against_metrics` re-checks it at
runtime).

Unlike production metric systems there is no sampling, no clock skew
and no lossy aggregation: values are exact simulated quantities, float
operations happen in one deterministic order, and
:meth:`MetricsRegistry.to_json_bytes` is a canonical encoding — two
identical replays produce identical snapshot bytes.

Histograms use **fixed** bucket boundaries chosen at creation: the
bucket a value lands in is a pure function of the value, never of the
observation history, which keeps snapshots mergeable and byte-stable.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ObservabilityError

Number = Union[int, float]

#: Default latency buckets (seconds): 1 us .. ~1 s, roughly 1-2-5.
DEFAULT_LATENCY_BUCKETS = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1.0,
)

#: Default batch-size buckets (queries per dispatched batch).
DEFAULT_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Metric-name prefix for *volatile* measurements (host wall-clock,
#: process RSS, …).  Everything else in the registry is an exact
#: simulated quantity that replays bit-identically; volatile metrics by
#: definition do not, so the canonical snapshot excludes them — two
#: identical replays still produce identical :meth:`to_json_bytes`.
VOLATILE_PREFIX = "perf."


class Counter:
    """A monotonically non-decreasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: float = 0.0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        amount = float(amount)
        if amount < 0 or not math.isfinite(amount):
            raise ObservabilityError(
                f"counter {self.name!r} increment must be finite and "
                f">= 0, got {amount}"
            )
        self.value += amount

    def snapshot(self) -> Dict[str, object]:
        """Plain-data form for canonical serialization."""
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A value that can move both ways (a level, not a total)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: float = 0.0

    def set(self, value: Number) -> None:
        """Overwrite the level."""
        value = float(value)
        if not math.isfinite(value):
            raise ObservabilityError(
                f"gauge {self.name!r} must stay finite, got {value}"
            )
        self.value = value

    def snapshot(self) -> Dict[str, object]:
        """Plain-data form for canonical serialization."""
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket histogram with exact sum and count.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last edge.
    """

    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[Number],
                 help: str = ""):
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise ObservabilityError(
                f"histogram {name!r} needs at least one bucket bound"
            )
        if any(not math.isfinite(e) for e in edges):
            raise ObservabilityError(
                f"histogram {name!r} bounds must be finite"
            )
        if any(lo >= hi for lo, hi in zip(edges, edges[1:])):
            raise ObservabilityError(
                f"histogram {name!r} bounds must be strictly "
                f"increasing, got {edges}"
            )
        self.name = name
        self.help = help
        self.bounds: Tuple[float, ...] = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: Number) -> None:
        """Record one observation."""
        value = float(value)
        if not math.isfinite(value):
            raise ObservabilityError(
                f"histogram {self.name!r} observation must be finite, "
                f"got {value}"
            )
        index = len(self.bounds)
        for i, edge in enumerate(self.bounds):
            if value <= edge:
                index = i
                break
        self.counts[index] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean of all observations (``nan`` when empty)."""
        return self.sum / self.count if self.count else float("nan")

    def snapshot(self) -> Dict[str, object]:
        """Plain-data form for canonical serialization."""
        return {"kind": self.kind, "bounds": list(self.bounds),
                "counts": list(self.counts), "sum": self.sum,
                "count": self.count}


class MetricsRegistry:
    """Named metric instruments, get-or-create, deterministic output.

    ``counter``/``gauge``/``histogram`` return the existing instrument
    when the name is already registered (and raise on a kind clash), so
    publication sites never need to coordinate creation order.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> Tuple[str, ...]:
        """Registered metric names, sorted."""
        return tuple(sorted(self._metrics))

    def _get_or_create(self, name: str, kind: type, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, cannot re-register as "
                    f"{kind.kind}"
                )
            return existing
        metric = kind(name, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(name, Gauge, help=help)

    def histogram(self, name: str,
                  bounds: Sequence[Number] = DEFAULT_LATENCY_BUCKETS,
                  help: str = "") -> Histogram:
        """Get or create a fixed-bucket histogram."""
        return self._get_or_create(name, Histogram, bounds=bounds,
                                   help=help)

    def value(self, name: str, default: Optional[float] = None
              ) -> float:
        """Current value of a counter or gauge by name."""
        metric = self._metrics.get(name)
        if metric is None:
            if default is not None:
                return default
            raise ObservabilityError(f"no metric named {name!r}")
        if isinstance(metric, Histogram):
            raise ObservabilityError(
                f"{name!r} is a histogram; read .snapshot() instead"
            )
        return metric.value

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def snapshot(self, include_volatile: bool = False
                 ) -> Dict[str, Dict[str, object]]:
        """Name-sorted plain-data snapshot of every instrument.

        Args:
            include_volatile: Also include metrics under
                :data:`VOLATILE_PREFIX` (host wall-clock and friends).
                Off by default so the snapshot — and everything built on
                it, like :meth:`to_json_bytes` and :meth:`digest` —
                stays byte-identical across replays of the same run.
        """
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)
                if include_volatile
                or not name.startswith(VOLATILE_PREFIX)}

    def to_json_bytes(self) -> bytes:
        """Canonical byte encoding of :meth:`snapshot` (no volatiles)."""
        return json.dumps({"format": "repro-metrics-v1",
                           "metrics": self.snapshot()},
                          sort_keys=True, separators=(",", ":"),
                          ensure_ascii=True).encode("ascii")

    def digest(self) -> str:
        """SHA-256 hex digest of :meth:`to_json_bytes`."""
        return hashlib.sha256(self.to_json_bytes()).hexdigest()

    def summary(self, prefix: str = "", max_lines: int = 24) -> str:
        """Human-readable snapshot block (what the CLI prints)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            if prefix and not name.startswith(prefix):
                continue
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                lines.append(f"  {name:<34} count={metric.count} "
                             f"mean={metric.mean:.6g}")
            else:
                lines.append(f"  {name:<34} {metric.value:g}")
        if len(lines) > max_lines:
            hidden = len(lines) - max_lines
            lines = lines[:max_lines] + [f"  … {hidden} more metrics"]
        return "\n".join(lines)
