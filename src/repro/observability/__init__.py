"""Deterministic observability: clock-domain spans + metrics registry.

The serving stack's evaluation story (the paper's Fig. 7 per-phase
breakdown, the serving latency percentiles, the chaos ledger) used to
live in scattered report fields.  This package unifies it:

- :class:`SpanTracer` / :class:`Span` — nested, lane-tracked intervals
  on the *simulated* clock, serialized to byte-deterministic JSON and
  exportable to Chrome ``trace_event`` format
  (:func:`export_chrome_trace`).
- :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  histograms every subsystem publishes into;
  :class:`~repro.serve.report.ServeReport` and
  :class:`~repro.faults.report.FaultReport` are views over it.
- :class:`TrackerMirror` — exact replication of
  :class:`~repro.gpusim.tracker.CycleTracker` charge streams.

Because every timestamp is simulated, the layer is *exact*: span
durations reconcile with cycle accounting to the last bit, and two
replays with the same seeds produce byte-identical trace files — the
invariant test suite (``tests/test_observability_invariants.py``)
makes all of this falsifiable.  See ``docs/observability.md``.
"""

from repro.observability.bridge import (
    KERNEL_CYCLES_PREFIX,
    TrackerMirror,
    publish_tracker_totals,
)
from repro.observability.chrome import (
    export_chrome_trace,
    export_chrome_trace_bytes,
    parse_chrome_trace,
)
from repro.observability.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.span import (
    DEFAULT_LANE,
    Span,
    SpanEvent,
    SpanTracer,
    iter_descendants,
    jsonable_scalar,
)

__all__ = [
    "Counter",
    "DEFAULT_LANE",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "Histogram",
    "KERNEL_CYCLES_PREFIX",
    "MetricsRegistry",
    "Span",
    "SpanEvent",
    "SpanTracer",
    "TrackerMirror",
    "export_chrome_trace",
    "export_chrome_trace_bytes",
    "iter_descendants",
    "jsonable_scalar",
    "parse_chrome_trace",
    "publish_tracker_totals",
]
