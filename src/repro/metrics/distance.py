"""Distance metrics: squared Euclidean and cosine distance.

Both are exposed through a small strategy interface so graphs, searches and
ground-truth computation share one code path.  All implementations operate
on float32 matrices and are fully vectorised.

Notes on conventions:

- Euclidean comparisons use the *squared* distance; it induces the same
  ordering as the true distance and this is what both SONG's and the
  paper's CUDA kernels compute (no square root on the hot path).
- Cosine *similarity* ``s`` is converted to the distance ``1 - s`` so that
  "smaller is closer" holds uniformly for every metric.
"""

from __future__ import annotations

import abc
from typing import Dict

import numpy as np

from repro.errors import ConfigurationError


class Metric(abc.ABC):
    """Strategy interface for a vector distance.

    Implementations must be stateless; a single module-level instance is
    shared by everything in the library.
    """

    #: Registry key and display name, e.g. ``"euclidean"``.
    name: str = ""

    @abc.abstractmethod
    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """All-pairs distances: ``(len(a), len(b))`` matrix."""

    @abc.abstractmethod
    def one_to_many(self, query: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Distances from one query vector to each row of ``points``."""

    def rows_to_rows(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Row-wise distances between two equal-shaped matrices."""
        if a.shape != b.shape:
            raise ConfigurationError(
                f"rows_to_rows requires equal shapes, got {a.shape} and "
                f"{b.shape}"
            )
        return self._rows_to_rows(a, b)

    @abc.abstractmethod
    def _rows_to_rows(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Row-wise distance implementation (shapes already validated)."""

    @abc.abstractmethod
    def flops_per_distance(self, n_dims: int) -> int:
        """Floating-point operations of one distance (CPU cost model)."""


class EuclideanMetric(Metric):
    """Squared Euclidean distance (ordering-equivalent to L2)."""

    name = "euclidean"

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        a_sq = np.einsum("ij,ij->i", a, a)[:, None]
        b_sq = np.einsum("ij,ij->i", b, b)[None, :]
        cross = a @ b.T
        out = a_sq + b_sq - 2.0 * cross
        np.maximum(out, 0.0, out=out)
        return out

    def one_to_many(self, query: np.ndarray, points: np.ndarray) -> np.ndarray:
        diff = np.asarray(points, dtype=np.float64) - np.asarray(
            query, dtype=np.float64)
        return np.einsum("ij,ij->i", diff, diff)

    def _rows_to_rows(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
        return np.einsum("ij,ij->i", diff, diff)

    def flops_per_distance(self, n_dims: int) -> int:
        # One subtract + one FMA per dimension, plus the reduction adds.
        return 3 * n_dims


class CosineMetric(Metric):
    """Cosine distance ``1 - cos(a, b)``.

    Zero vectors are assigned similarity 0 (distance 1) rather than NaN so
    that degenerate inputs stay orderable.
    """

    name = "cosine"

    @staticmethod
    def _normalize(matrix: np.ndarray) -> np.ndarray:
        matrix = np.asarray(matrix, dtype=np.float64)
        norms = np.linalg.norm(matrix, axis=-1, keepdims=True)
        safe = np.where(norms > 0.0, norms, 1.0)
        return matrix / safe

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return 1.0 - self._normalize(a) @ self._normalize(b).T

    def one_to_many(self, query: np.ndarray, points: np.ndarray) -> np.ndarray:
        q = self._normalize(np.asarray(query)[None, :])[0]
        return 1.0 - self._normalize(points) @ q

    def _rows_to_rows(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return 1.0 - np.einsum(
            "ij,ij->i", self._normalize(a), self._normalize(b))

    def flops_per_distance(self, n_dims: int) -> int:
        # Dot product + two norms (amortised: data vectors are usually
        # pre-normalised, but we charge the general case).
        return 4 * n_dims


METRICS: Dict[str, Metric] = {
    EuclideanMetric.name: EuclideanMetric(),
    CosineMetric.name: CosineMetric(),
}
"""Registry of shared, stateless metric instances."""


def get_metric(name: str) -> Metric:
    """Look up a metric by registry name.

    Raises:
        ConfigurationError: For unknown names, listing the valid ones.
    """
    try:
        return METRICS[name]
    except KeyError:
        valid = ", ".join(sorted(METRICS))
        raise ConfigurationError(
            f"unknown metric {name!r}; valid metrics: {valid}"
        ) from None
