"""Distance metrics and accuracy measures.

The paper evaluates under two metrics (Table I): Euclidean distance for the
image/video/audio datasets and cosine similarity for the text datasets
(NYTimes, GloVe200).  Accuracy is recall — "the ratio of correct nearest
neighbors to returned neighbors".
"""

from repro.metrics.distance import (
    Metric,
    METRICS,
    EuclideanMetric,
    CosineMetric,
    get_metric,
)
from repro.metrics.recall import (
    mask_deleted_ground_truth,
    recall_at_k,
    recall_per_query,
)

__all__ = [
    "Metric",
    "METRICS",
    "EuclideanMetric",
    "CosineMetric",
    "get_metric",
    "mask_deleted_ground_truth",
    "recall_at_k",
    "recall_per_query",
]
