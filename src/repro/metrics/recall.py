"""Recall computation.

The paper's accuracy measure (Section II-A and V): for a query ``q`` with
exact neighbor set ``N(q)`` and returned set ``X``, precision/recall is
``|X ∩ N(q)| / k``.  Both sets have size ``k``, so precision and recall
coincide; the paper calls it recall and so do we.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def recall_per_query(returned: np.ndarray, ground_truth: np.ndarray) -> np.ndarray:
    """Per-query recall of returned neighbor ids against the truth.

    Args:
        returned: ``(n_queries, k)`` int array of returned ids.  Entries of
            ``-1`` denote padding (fewer than ``k`` results) and never match.
            ``k`` may differ from the ground-truth width: extra returned
            columns can only add hits, never change the denominator.
        ground_truth: ``(n_queries, k)`` int array of exact neighbor ids.
            ``-1`` entries denote padding (fewer than ``k`` true neighbors
            exist) and are excluded from the denominator, so recall stays
            in ``[0, 1]`` even on padded rows.  Duplicate ids in either
            array are counted once.

    Returns:
        ``(n_queries,)`` float array of recall values in ``[0, 1]``.  A
        row whose ground truth is entirely padding has recall ``0.0``.
    """
    returned = np.asarray(returned)
    ground_truth = np.asarray(ground_truth)
    if returned.ndim != 2 or ground_truth.ndim != 2:
        raise ConfigurationError(
            "recall expects 2-D (n_queries, k) id arrays, got shapes "
            f"{returned.shape} and {ground_truth.shape}"
        )
    if returned.shape[0] != ground_truth.shape[0]:
        raise ConfigurationError(
            f"query counts differ: {returned.shape[0]} returned vs "
            f"{ground_truth.shape[0]} ground truth"
        )
    if ground_truth.shape[1] == 0:
        raise ConfigurationError("ground truth must contain at least 1 neighbor")
    recall = np.zeros(returned.shape[0], dtype=np.float64)
    for i in range(returned.shape[0]):
        row = returned[i]
        row = row[row >= 0]
        truth = ground_truth[i]
        truth = np.unique(truth[truth >= 0])
        if truth.size == 0:
            continue
        recall[i] = np.intersect1d(row, truth).size / truth.size
    return recall


def recall_at_k(returned: np.ndarray, ground_truth: np.ndarray) -> float:
    """Mean recall across queries (the number Figures 6/8/12 plot)."""
    return float(recall_per_query(returned, ground_truth).mean())


def mask_deleted_ground_truth(ground_truth: np.ndarray,
                              tombstones: np.ndarray) -> np.ndarray:
    """Exclude deleted ids from a ground-truth matrix.

    After deletes land on a mutable index, the exact neighbor sets
    computed against the original corpus still name the tombstoned
    points — which no correct search may return.  This masks those
    entries to ``-1`` (the padding value :func:`recall_per_query`
    excludes from its denominator), so recall-after-delete measures
    retrieval of the *surviving* true neighbors instead of punishing
    the index for honoring deletes.

    Args:
        ground_truth: ``(n_queries, k)`` int array of exact neighbor
            ids (``-1`` padding allowed).
        tombstones: ``(n_slots,)`` boolean mask of deleted ids.

    Returns:
        A new ``(n_queries, k)`` array with tombstoned ids replaced by
        ``-1``; the input is not modified.
    """
    ground_truth = np.asarray(ground_truth)
    tombstones = np.asarray(tombstones, dtype=bool)
    if ground_truth.ndim != 2:
        raise ConfigurationError(
            f"ground truth must be 2-D (n_queries, k), got shape "
            f"{ground_truth.shape}")
    if tombstones.ndim != 1:
        raise ConfigurationError(
            f"tombstones must be 1-D (n_slots,), got shape "
            f"{tombstones.shape}")
    valid = ground_truth >= 0
    if np.any(ground_truth[valid] >= len(tombstones)):
        raise ConfigurationError(
            "ground truth names ids beyond the tombstone mask")
    safe = np.where(valid, ground_truth, 0)
    dead = valid & tombstones[safe]
    return np.where(dead, -1, ground_truth)
