"""Self-healing: replica rebuild, anti-entropy repair, soak harness.

The cluster (:mod:`repro.cluster`) survives replica deaths by masking
and failover; this package makes it *recover*: a
:class:`~repro.heal.controller.RepairController` watches the router's
loss schedule, rebuilds each dead replica from the owning shard's
latest snapshot (transfer rate-limited on the network model, decoding
charged to the device), replays the WAL delta to catch up, verifies
the rebuild with an anti-entropy graph-digest exchange, and only then
re-admits the replica to routing — a digest mismatch quarantines the
rebuild instead, and the shard returns from ``PARTIAL`` to healthy the
moment a verified replica is back.

:mod:`repro.heal.soak` caps the stack with a whole-stack chaos soak:
long seeded replays across the cluster, mutable-index, and quantized
paths whose invariant oracles (zero silently-wrong answers, bounded
MTTR, byte-identical reruns) gate CI via ``repro soak-sim`` and
``scripts/check_heal_smoke.py``.
"""

from repro.heal.controller import (
    REPAIR_ABANDONED,
    REPAIR_HEALED,
    RepairAttempt,
    RepairController,
    RepairRecord,
)
from repro.heal.policy import HealPolicy
from repro.heal.soak import SoakPhaseResult, SoakReport, run_soak_sim
from repro.heal.source import (
    StaticShardSource,
    StoreShardSource,
    shard_payload_bytes,
)

__all__ = [
    "HealPolicy",
    "RepairAttempt",
    "RepairController",
    "RepairRecord",
    "REPAIR_ABANDONED",
    "REPAIR_HEALED",
    "SoakPhaseResult",
    "SoakReport",
    "StaticShardSource",
    "StoreShardSource",
    "run_soak_sim",
    "shard_payload_bytes",
]
