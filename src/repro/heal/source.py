"""Rebuild sources: where a dead replica's replacement state comes from.

A repair source answers three questions for the controller, all
deterministically:

1. **How many bytes ship?**  (:attr:`snapshot_bytes` — charged to the
   rate-limited repair lane of the network model.)
2. **How much catch-up work follows?**  (:attr:`catchup_seconds` /
   :attr:`wal_records` — the WAL delta between the snapshot and the
   shard's current state, replayed through the mutable-index recovery
   machinery.)
3. **What must the rebuilt graph digest to?**  (:meth:`digest` — the
   anti-entropy currency; a rebuilt replica whose graph digest does
   not match is quarantined, never admitted.)

Two implementations cover the two cluster shapes:

- :class:`StaticShardSource` — an immutable shard built straight from
  a corpus: the shard's own graph + points *are* the snapshot and
  there is no WAL delta (unless the cluster pins a mutable-index
  epoch, in which case the engine attaches the store's delta).
- :class:`StoreShardSource` — a :class:`repro.mutable.wal.DurableStore`
  is the ground truth: the snapshot is the durable checkpoint and the
  catch-up is the surviving WAL replayed through
  :func:`repro.mutable.recovery.recover` (cached — recovery is a pure
  function of the store).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import HealError
from repro.graphs.stats import graph_digest
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.device import DeviceSpec, QUADRO_P5000


def shard_payload_bytes(graph, points: np.ndarray) -> int:
    """Wire size of one shard's serving state (adjacency + vectors)."""
    return int(graph.neighbor_ids.nbytes + graph.neighbor_dists.nbytes
               + graph.degrees.nbytes
               + np.ascontiguousarray(points).nbytes)


class StaticShardSource:
    """Snapshot source for a shard whose serving state is immutable.

    Args:
        graph: The shard's authoritative proximity graph.
        points: The shard's point matrix.
        catchup_seconds: Simulated cost of replaying the WAL delta a
            rebuilt replica must catch up (``0.0`` for a plain corpus
            shard; the cluster engine supplies the durable store's
            delta when it serves a pinned mutable-index epoch).
        wal_records: Records in that delta.
    """

    def __init__(self, graph, points: np.ndarray,
                 catchup_seconds: float = 0.0, wal_records: int = 0):
        if catchup_seconds < 0:
            raise HealError(
                f"catchup_seconds must be >= 0, got {catchup_seconds}"
            )
        if wal_records < 0:
            raise HealError(
                f"wal_records must be >= 0, got {wal_records}"
            )
        self.graph = graph
        self.points = np.asarray(points)
        self.snapshot_bytes = shard_payload_bytes(graph, self.points)
        self.catchup_seconds = float(catchup_seconds)
        self.wal_records = int(wal_records)

    def digest(self) -> str:
        """Authoritative anti-entropy digest of the shard graph."""
        return graph_digest(self.graph)


class StoreShardSource:
    """Snapshot source backed by a durable store (checkpoint + WAL).

    Recovery is run lazily — once — through
    :func:`repro.mutable.recovery.recover`; every property below is a
    pure function of the store's bytes, so two sources over equal
    stores answer identically.

    Args:
        store: The :class:`repro.mutable.wal.DurableStore` holding the
            shard's checkpoint and write-ahead log.
        device: Simulated device recovery replays on.
        costs: Cycle cost table.
    """

    def __init__(self, store, device: DeviceSpec = QUADRO_P5000,
                 costs: CostTable = DEFAULT_COSTS):
        self.store = store
        self.device = device
        self.costs = costs
        self._recovered = None

    @property
    def recovered(self):
        """The index recovery rebuilds from the store (cached)."""
        if self._recovered is None:
            from repro.mutable.recovery import recover
            self._recovered = recover(self.store, device=self.device,
                                      costs=self.costs)
        return self._recovered

    @property
    def snapshot_bytes(self) -> int:
        """Bytes shipped: the checkpoint blob, or — for a store that
        never checkpointed — the recovered serving state itself."""
        if self.store.checkpoint is not None:
            return len(self.store.checkpoint)
        index = self.recovered
        return shard_payload_bytes(index.graph, index.points)

    @property
    def catchup_seconds(self) -> float:
        """Simulated mutation time of the WAL delta past the checkpoint.

        The rebuilt replica restores the checkpoint and then replays
        the surviving records; the charge is exactly the mutation time
        recovery accumulates *beyond* what the checkpoint already
        folded in.
        """
        index = self.recovered
        if self.store.checkpoint is None:
            return float(index.mutation_seconds)
        from repro.mutable.index import MutableIndex
        baseline = MutableIndex.from_checkpoint_bytes(
            self.store.checkpoint, self.store, device=self.device,
            costs=self.costs)
        return float(index.mutation_seconds
                     - baseline.mutation_seconds)

    @property
    def wal_records(self) -> int:
        """Surviving WAL records the rebuilt replica replays."""
        return len(self.store.surviving_records())

    def digest(self) -> str:
        """Anti-entropy digest of the recovered serving graph."""
        return graph_digest(self.recovered.graph)
