"""The repair controller: detect → rebuild → catch up → verify → admit.

The controller turns the router's loss schedule into healed down
windows, entirely on the simulated clock:

1. **Detect** — a death becomes visible one heartbeat after it happens
   (the same window during which the router still bounces queries off
   the corpse).
2. **Rebuild** — the owning shard's latest snapshot ships over the
   rate-limited repair lane of the network model and is deserialized
   at a per-byte cycle charge on the device.
3. **Catch up** — the WAL delta between snapshot and current shard
   state replays (cost supplied by the repair source, computed through
   :mod:`repro.mutable.recovery` for store-backed shards).
4. **Verify** — the rebuilt replica exchanges a graph digest with the
   shard's authoritative copy (anti-entropy).  A mismatch quarantines
   the rebuild: the replica is *never* admitted with a mismatched
   digest; the controller re-rebuilds from scratch, up to the policy's
   attempt budget, and abandons the slot (dead forever) if the budget
   runs out.
5. **Admit** — on a matching digest the controller installs the
   revival instant into the router; from that moment the slot serves
   again and a shard that had degraded to ``PARTIAL`` is healthy.

Everything is a pure function of (loss schedule, policy, sources,
plan seed): repeated calls produce identical
:class:`RepairRecord` lists, which is what lets the cluster report
reconcile ``heal.*`` metrics with zero drift and the soak gate demand
byte-identical reports across reruns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import HealError
from repro.extensions.distributed import NetworkModel
from repro.faults.plan import FaultPlan
from repro.gpusim.costs import CostTable, DEFAULT_COSTS
from repro.gpusim.device import DeviceSpec, QUADRO_P5000
from repro.gpusim.kernel import KernelLaunch
from repro.heal.policy import HealPolicy

#: Terminal states of one repair.
REPAIR_HEALED = "healed"
REPAIR_ABANDONED = "abandoned"


@dataclass(frozen=True)
class RepairAttempt:
    """One rebuild attempt inside a repair.

    Attributes:
        start_seconds: When this attempt's transfer began.
        transfer_seconds: Rate-limited snapshot transfer time.
        deserialize_seconds: Device time decoding the snapshot.
        catchup_seconds: WAL-delta replay time.
        verify_seconds: Anti-entropy digest exchange round trip.
        digest_matched: Whether the rebuilt graph digest matched the
            shard's authoritative digest.  ``False`` means the attempt
            was quarantined — its state was discarded, never admitted.
    """

    start_seconds: float
    transfer_seconds: float
    deserialize_seconds: float
    catchup_seconds: float
    verify_seconds: float
    digest_matched: bool

    @property
    def end_seconds(self) -> float:
        """When the attempt's verdict (admit or quarantine) was known."""
        return (self.start_seconds + self.transfer_seconds
                + self.deserialize_seconds + self.catchup_seconds
                + self.verify_seconds)


@dataclass(frozen=True)
class RepairRecord:
    """The full lifecycle of healing one replica death.

    Attributes:
        slot: Flat shard-replica slot id.
        shard: Owning shard.
        replica: Replica index within the shard.
        death_seconds: When the replica died.
        detect_seconds: When the heartbeat exposed the death.
        start_seconds: When the repair lane began the first attempt
            (>= ``detect_seconds``; later when the lane was busy).
        admitted_seconds: When the verified replica re-entered routing
            (``inf`` for an abandoned repair).
        snapshot_bytes: Snapshot size of one attempt's transfer.
        wal_records: WAL-delta records replayed per attempt.
        attempts: Every rebuild attempt, in order; all but the last
            (for a healed repair) were quarantined.
        status: ``"healed"`` or ``"abandoned"``.
    """

    slot: int
    shard: int
    replica: int
    death_seconds: float
    detect_seconds: float
    start_seconds: float
    admitted_seconds: float
    snapshot_bytes: int
    wal_records: int
    attempts: Tuple[RepairAttempt, ...]
    status: str

    @property
    def healed(self) -> bool:
        """True when the replica was re-admitted to routing."""
        return self.status == REPAIR_HEALED

    @property
    def mttr_seconds(self) -> float:
        """Death to re-admission (``inf`` when abandoned)."""
        return self.admitted_seconds - self.death_seconds

    @property
    def n_attempts(self) -> int:
        """Rebuild attempts consumed."""
        return len(self.attempts)

    @property
    def n_quarantined(self) -> int:
        """Attempts whose digest mismatched (discarded, never served)."""
        return sum(1 for a in self.attempts if not a.digest_matched)

    @property
    def bytes_transferred(self) -> int:
        """Snapshot bytes shipped across all attempts."""
        return self.snapshot_bytes * self.n_attempts

    @property
    def wal_records_replayed(self) -> int:
        """WAL-delta records replayed across all attempts."""
        return self.wal_records * self.n_attempts

    @property
    def transfer_seconds(self) -> float:
        """Total transfer time across attempts."""
        return sum(a.transfer_seconds for a in self.attempts)

    @property
    def catchup_seconds(self) -> float:
        """Total WAL-delta replay time across attempts."""
        return sum(a.catchup_seconds for a in self.attempts)

    @property
    def verify_seconds(self) -> float:
        """Total anti-entropy exchange time across attempts."""
        return sum(a.verify_seconds for a in self.attempts)

    def to_line(self) -> str:
        """Canonical one-line encoding for report bytes."""
        flags = "".join("1" if a.digest_matched else "0"
                        for a in self.attempts)
        return (f"repair s{self.shard}r{self.replica} {self.status} "
                f"death={self.death_seconds!r} "
                f"detect={self.detect_seconds!r} "
                f"start={self.start_seconds!r} "
                f"admitted={self.admitted_seconds!r} "
                f"bytes={self.bytes_transferred} "
                f"wal={self.wal_records_replayed} "
                f"attempts={flags}")


class RepairController:
    """Deterministic replica-rebuild scheduler on the simulated clock.

    Args:
        policy: Timing and safety knobs.
        network: Cluster interconnect (the repair lane uses
            ``policy.repair_bandwidth_fraction`` of its bandwidth).
        device: Simulated device the deserialize kernel runs on.
        costs: Cycle cost table.
    """

    def __init__(self, policy: HealPolicy,
                 network: Optional[NetworkModel] = None,
                 device: DeviceSpec = QUADRO_P5000,
                 costs: CostTable = DEFAULT_COSTS):
        self.policy = policy
        self.network = (network if network is not None
                        else NetworkModel())
        self.device = device
        self.costs = costs
        self._launch = KernelLaunch(device, policy.n_threads,
                                    costs=costs)

    # ------------------------------------------------------------------
    # Cost components
    # ------------------------------------------------------------------

    def transfer_seconds(self, n_bytes: float) -> float:
        """Rate-limited snapshot transfer (repair lane bandwidth)."""
        return (self.network.latency_ms * 1e-3
                + n_bytes / (self.network.bandwidth_gbps * 1e9
                             * self.policy.repair_bandwidth_fraction))

    def deserialize_seconds(self, n_bytes: float) -> float:
        """Device time decoding a snapshot into serving form."""
        return self._launch.cycles_to_seconds(
            n_bytes * self.policy.deserialize_cycles_per_byte)

    def verify_seconds(self) -> float:
        """Anti-entropy digest exchange: one full-bandwidth round trip."""
        return 2.0 * self.network.transfer_seconds(
            self.policy.digest_bytes)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan_repairs(self, router, sources: Sequence,
                     plan: Optional[FaultPlan] = None
                     ) -> List[RepairRecord]:
        """Heal the router's loss schedule and install revival times.

        Args:
            router: The :class:`repro.cluster.router.ReplicaRouter`
                whose ``loss_schedule`` drives the repairs; healed
                ``[death, revive)`` windows are installed back into it.
            sources: One repair source per shard (``len == n_shards``).
            plan: The fault plan whose seeded RNG (stream
                ``"heal:corruption"``) decides per-attempt transfer
                corruption; ``None`` disables corruption regardless of
                the policy knob.

        Returns:
            One :class:`RepairRecord` per *effective* death (a loss
            event hitting an already-down slot is a no-op), ordered by
            (death time, event order).
        """
        if len(sources) != router.n_shards:
            raise HealError(
                f"need one repair source per shard "
                f"({router.n_shards}), got {len(sources)}"
            )
        rng = (plan.rng("heal:corruption")
               if plan is not None
               and self.policy.corruption_probability > 0 else None)
        ordered = sorted(
            (at, index, slot)
            for index, (at, slot) in enumerate(router.loss_schedule))
        windows: Dict[int, List[Tuple[float, float]]] = {}
        lanes = [0.0] * self.policy.n_repair_lanes
        records: List[RepairRecord] = []
        for death, _, slot in ordered:
            current = windows.get(slot)
            if current and current[-1][0] <= death < current[-1][1]:
                # The loss event hit a slot that is already down.
                continue
            shard, replica = divmod(slot, router.n_replicas)
            source = sources[shard]
            detect = death + router.policy.heartbeat_seconds
            lane = min(range(len(lanes)), key=lambda j: (lanes[j], j))
            start = max(detect, lanes[lane])
            transfer = self.transfer_seconds(source.snapshot_bytes)
            deserialize = self.deserialize_seconds(
                source.snapshot_bytes)
            verify = self.verify_seconds()
            attempts: List[RepairAttempt] = []
            now = start
            admitted = math.inf
            for _ in range(self.policy.max_rebuild_attempts):
                corrupted = (rng is not None and float(rng.random())
                             < self.policy.corruption_probability)
                attempt = RepairAttempt(
                    start_seconds=now,
                    transfer_seconds=transfer,
                    deserialize_seconds=deserialize,
                    catchup_seconds=source.catchup_seconds,
                    verify_seconds=verify,
                    digest_matched=not corrupted)
                attempts.append(attempt)
                now = attempt.end_seconds
                if not corrupted:
                    admitted = now
                    break
            lanes[lane] = now
            status = (REPAIR_HEALED if math.isfinite(admitted)
                      else REPAIR_ABANDONED)
            windows.setdefault(slot, []).append((death, admitted))
            records.append(RepairRecord(
                slot=slot, shard=shard, replica=replica,
                death_seconds=death, detect_seconds=detect,
                start_seconds=start, admitted_seconds=admitted,
                snapshot_bytes=int(source.snapshot_bytes),
                wal_records=int(source.wal_records),
                attempts=tuple(attempts), status=status))
        for slot, slot_windows in windows.items():
            router.install_downtime(slot, slot_windows)
        return records
