"""Self-healing knobs: how replica rebuilds are timed and verified.

A :class:`HealPolicy` is to the :class:`repro.heal.controller
.RepairController` what :class:`repro.cluster.router.RouterPolicy` is
to the router: a frozen bag of timing and safety knobs that, together
with the fault plan's seed, makes every repair timeline a pure function
of its inputs.

The knobs encode the three costs a real repair pipeline pays:

- **transfer** — the snapshot ships over the cluster interconnect, but
  only at ``repair_bandwidth_fraction`` of the link: repair traffic is
  rate-limited so a rebuilding replica can never starve the query path
  of bandwidth.
- **deserialize** — decoding the snapshot into device-resident
  adjacency is charged to the cost model at
  ``deserialize_cycles_per_byte``.
- **verify** — before re-admission the rebuilt replica exchanges a
  graph digest with the shard's authoritative copy (anti-entropy); a
  mismatch quarantines the rebuild and starts over, up to
  ``max_rebuild_attempts`` times.  A digest-mismatched replica is
  *never* admitted to routing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HealError


@dataclass(frozen=True)
class HealPolicy:
    """Frozen configuration of the repair controller.

    Attributes:
        repair_bandwidth_fraction: Fraction of the interconnect
            bandwidth the repair lane may use, in ``(0, 1]``.  Snapshot
            transfer time scales with its inverse — the rate limiter
            that keeps repair traffic from starving queries.
        deserialize_cycles_per_byte: Device cycles charged per snapshot
            byte to decode it into serving form.
        digest_bytes: Wire size of one anti-entropy digest message (the
            exchange is one round trip at full bandwidth — digests are
            tiny and latency-bound).
        max_rebuild_attempts: Rebuild attempts per death before the
            controller abandons the slot (it then stays dead, exactly
            as if healing were off).  Each quarantined attempt restarts
            the transfer from scratch.
        corruption_probability: Per-attempt probability that the
            transferred snapshot is corrupted and fails digest
            verification; drawn from the fault plan's seeded RNG
            (stream ``"heal:corruption"``) so chaos replays
            deterministically.  ``0.0`` disables corruption.
        mttr_bound_seconds: The healing SLO — maximum allowed
            death-to-re-admission time for a single replica loss.  The
            controller records MTTR per repair; the soak oracles and
            :meth:`repro.cluster.report.ClusterReport.unhealed_within`
            enforce the bound.
        n_repair_lanes: Concurrent rebuilds the controller runs;
            repairs beyond this queue FIFO in death order (the default
            single lane serializes all repair traffic).
        n_threads: Block width of the simulated deserialize kernel.
    """

    repair_bandwidth_fraction: float = 0.25
    deserialize_cycles_per_byte: float = 2.0
    digest_bytes: int = 64
    max_rebuild_attempts: int = 3
    corruption_probability: float = 0.0
    mttr_bound_seconds: float = 0.05
    n_repair_lanes: int = 1
    n_threads: int = 32

    def __post_init__(self) -> None:
        if not 0.0 < self.repair_bandwidth_fraction <= 1.0:
            raise HealError(
                f"repair_bandwidth_fraction must lie in (0, 1], got "
                f"{self.repair_bandwidth_fraction}"
            )
        if self.deserialize_cycles_per_byte < 0:
            raise HealError(
                f"deserialize_cycles_per_byte must be >= 0, got "
                f"{self.deserialize_cycles_per_byte}"
            )
        if self.digest_bytes <= 0:
            raise HealError(
                f"digest_bytes must be positive, got {self.digest_bytes}"
            )
        if self.max_rebuild_attempts < 1:
            raise HealError(
                f"max_rebuild_attempts must be >= 1, got "
                f"{self.max_rebuild_attempts}"
            )
        if not 0.0 <= self.corruption_probability < 1.0:
            raise HealError(
                f"corruption_probability must lie in [0, 1), got "
                f"{self.corruption_probability}"
            )
        if self.mttr_bound_seconds <= 0:
            raise HealError(
                f"mttr_bound_seconds must be positive, got "
                f"{self.mttr_bound_seconds}"
            )
        if self.n_repair_lanes < 1:
            raise HealError(
                f"n_repair_lanes must be >= 1, got {self.n_repair_lanes}"
            )
        if self.n_threads < 1:
            raise HealError(
                f"n_threads must be >= 1, got {self.n_threads}"
            )
