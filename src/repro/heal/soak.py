"""Whole-stack chaos soak: healing cluster + mutable + quant paths.

:func:`run_soak_sim` is the capstone gate of the self-healing layer.
One seeded soak replays three phases, each under its own chaos plan on
the simulated clock:

1. **cluster** — a healing :class:`repro.cluster.ClusterEngine` under
   the ``soak`` fault recipe (dense replica deaths + partitions +
   kernel flakiness), with corruption injected into a fraction of
   rebuilds so the quarantine path exercises.
2. **mutable** — :func:`repro.mutable.sim.run_mutation_sim` under
   ``compaction-crash``, a recovery-faithfulness digest check, then a
   healing cluster served *from the surviving store's snapshot* with
   the store itself as the repair source (WAL catch-up is charged).
3. **quant** — the cluster phase again through the quantized staged
   pipeline (compressed traversal + exact rerank).

Every phase runs its zero-drift verification inline (report vs
metrics registry, span-tree validation) and an offline oracle: each
*complete* tier-0 answer must byte-equal the direct per-shard GANNS
merge over the same placement — a wrong answer is never silent.  The
:class:`SoakReport` is canonical (:meth:`SoakReport.to_bytes` /
:meth:`SoakReport.digest`): two runs of the same seed are
byte-identical, which is exactly what ``scripts/check_heal_smoke.py``
asserts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.errors import HealError

#: Phase names, replay order.
PHASE_CLUSTER = "cluster"
PHASE_MUTABLE = "mutable"
PHASE_QUANT = "quant"


@dataclass(frozen=True)
class SoakPhaseResult:
    """Verified outcome of one soak phase.

    Attributes:
        name: Phase name (``cluster`` / ``mutable`` / ``quant``).
        n_requests: Requests replayed through the phase's cluster.
        n_served: Complete answers.
        n_partial: Answers explicitly missing shards.
        n_failed: Requests with no answer.
        n_deadline: Requests failed fast before fan-out.
        n_wrong: Oracle violations — complete answers diverging from
            the offline per-shard merge, partial answers that fail to
            name their missing shards, tombstoned ids served, or (in
            the mutable phase) wrong answers / recovery-digest drift
            inside the mutation sim.  The gate demands zero.
        n_repairs: Replica rebuilds the :class:`RepairController`
            scheduled.
        n_healed: Rebuilds verified and re-admitted.
        n_abandoned: Rebuilds abandoned after exhausting attempts.
        n_quarantines: Digest-mismatched rebuilds quarantined (never
            admitted to routing).
        max_mttr_seconds: Worst detect-to-readmit time over healed
            repairs (``0.0`` when none).
        n_unhealed_within_bound: Repairs that missed the phase's MTTR
            bound (abandoned, or healed too slowly).
        report_digest: The phase report's canonical digest.
        detail: Free-form note (mutation-sim crash/recovery counts).
    """

    name: str
    n_requests: int
    n_served: int
    n_partial: int
    n_failed: int
    n_deadline: int
    n_wrong: int
    n_repairs: int
    n_healed: int
    n_abandoned: int
    n_quarantines: int
    max_mttr_seconds: float
    n_unhealed_within_bound: int
    report_digest: str
    detail: str = ""

    def to_line(self) -> str:
        """Canonical single-line encoding."""
        return (f"phase {self.name} requests={self.n_requests} "
                f"served={self.n_served} partial={self.n_partial} "
                f"failed={self.n_failed} deadline={self.n_deadline} "
                f"wrong={self.n_wrong} repairs={self.n_repairs} "
                f"healed={self.n_healed} abandoned={self.n_abandoned} "
                f"quarantines={self.n_quarantines} "
                f"max_mttr={self.max_mttr_seconds!r} "
                f"unhealed={self.n_unhealed_within_bound} "
                f"digest={self.report_digest} detail={self.detail!r}")


@dataclass
class SoakReport:
    """Canonical record of one whole-stack soak run.

    Attributes:
        seed: The soak seed (drives traces, plans, and corruption).
        mttr_bound_seconds: The bound every healed repair must meet.
        phases: Per-phase verified results, replay order.
    """

    seed: int
    mttr_bound_seconds: float
    phases: List[SoakPhaseResult] = field(default_factory=list)

    # -- gate properties ------------------------------------------------

    @property
    def n_wrong(self) -> int:
        """Oracle violations across all phases (gate: zero)."""
        return sum(p.n_wrong for p in self.phases)

    @property
    def n_repairs(self) -> int:
        """Rebuilds scheduled across all phases."""
        return sum(p.n_repairs for p in self.phases)

    @property
    def n_healed(self) -> int:
        """Rebuilds verified and re-admitted across all phases."""
        return sum(p.n_healed for p in self.phases)

    @property
    def n_quarantines(self) -> int:
        """Digest-mismatched rebuilds quarantined across all phases."""
        return sum(p.n_quarantines for p in self.phases)

    @property
    def n_unhealed(self) -> int:
        """Repairs that missed the MTTR bound (gate: zero)."""
        return sum(p.n_unhealed_within_bound for p in self.phases)

    @property
    def max_mttr_seconds(self) -> float:
        """Worst healed-repair MTTR across all phases."""
        return max((p.max_mttr_seconds for p in self.phases),
                   default=0.0)

    @property
    def passed(self) -> bool:
        """The soak gate: zero wrong answers, every loss healed in
        bound, and at least one repair actually exercised."""
        return (self.n_wrong == 0 and self.n_unhealed == 0
                and self.n_repairs > 0)

    # -- rendering ------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Canonical byte encoding; byte-identical across reruns."""
        lines = [f"soak seed={self.seed} "
                 f"bound={self.mttr_bound_seconds!r}"]
        lines.extend(p.to_line() for p in self.phases)
        lines.append(f"totals wrong={self.n_wrong} "
                     f"repairs={self.n_repairs} healed={self.n_healed} "
                     f"quarantines={self.n_quarantines} "
                     f"unhealed={self.n_unhealed} "
                     f"passed={int(self.passed)}")
        return "\n".join(lines).encode("utf-8")

    def digest(self) -> str:
        """SHA-256 over the canonical encoding."""
        return hashlib.sha256(self.to_bytes()).hexdigest()

    def summary(self) -> str:
        """Human-readable soak block."""
        lines = [
            f"SoakReport: seed {self.seed}, {len(self.phases)} phases, "
            f"{'PASS' if self.passed else 'FAIL'}",
            f"  wrong answers {self.n_wrong} (gate: 0)",
            f"  repairs       {self.n_repairs} scheduled, "
            f"{self.n_healed} healed, {self.n_quarantines} "
            f"quarantined, {self.n_unhealed} outside the "
            f"{self.mttr_bound_seconds * 1e3:g} ms MTTR bound",
            f"  max MTTR      {self.max_mttr_seconds * 1e3:.3f} ms",
        ]
        for p in self.phases:
            lines.append(
                f"  [{p.name}] {p.n_served}/{p.n_requests} served, "
                f"{p.n_partial} partial, {p.n_wrong} wrong, "
                f"{p.n_repairs} repairs ({p.n_quarantines} "
                f"quarantined)"
                + (f" — {p.detail}" if p.detail else ""))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Phase runners
# ----------------------------------------------------------------------


def _oracle_reference(engine, pool: np.ndarray, params):
    """Offline per-shard GANNS merge every complete answer must equal."""
    from repro.cluster import merge_topk
    from repro.core.ganns import ganns_search

    shard_ids, shard_dists = [], []
    for shard in range(engine.n_shards):
        result = ganns_search(engine.shard_graphs[shard],
                              engine.shard_points[shard], pool, params)
        shard_ids.append(engine.shard_map.to_global(shard, result.ids))
        shard_dists.append(result.dists)
    return merge_topk(params.k, shard_ids, shard_dists)


def _count_wrong(engine, report, trace, pool: np.ndarray, params,
                 live_ids: Optional[np.ndarray] = None) -> int:
    """Oracle violations in one cluster replay.

    A violation is: a complete tier-0 answer diverging from the
    offline merge, an answered-but-partial outcome that fails to name
    its missing shards, or (snapshot-served engines) a tombstoned slot
    id appearing in any complete answer.
    """
    ref_ids, ref_dists = _oracle_reference(engine, pool, params)
    pool_row = {pool[i].tobytes(): i for i in range(len(pool))}
    n_wrong = 0
    for pos, outcome in enumerate(report.outcomes):
        if not outcome.complete:
            if outcome.answered and not outcome.missing_shards:
                n_wrong += 1
            continue
        if live_ids is not None:
            external = engine.map_to_external(outcome.ids)
            served = external[external >= 0]
            if len(served) and not np.isin(served, live_ids).all():
                n_wrong += 1
                continue
        if outcome.degraded_tier != 0:
            continue
        rows = [pool_row[q.tobytes()] for q in trace[pos].queries]
        if not (np.array_equal(outcome.ids, ref_ids[rows])
                and np.array_equal(outcome.dists, ref_dists[rows])):
            n_wrong += 1
    return n_wrong


def _phase_from_report(name: str, report, n_wrong: int,
                       bound_seconds: float,
                       detail: str = "") -> SoakPhaseResult:
    return SoakPhaseResult(
        name=name,
        n_requests=report.n_requests,
        n_served=report.n_served,
        n_partial=report.n_partial,
        n_failed=report.n_failed,
        n_deadline=report.n_deadline_failfast,
        n_wrong=n_wrong,
        n_repairs=report.n_repairs,
        n_healed=report.n_repairs_healed,
        n_abandoned=report.n_repairs_abandoned,
        n_quarantines=report.n_quarantines,
        max_mttr_seconds=report.max_mttr_seconds,
        n_unhealed_within_bound=len(
            report.unhealed_within(bound_seconds)),
        report_digest=report.digest()[:16],
        detail=detail,
    )


def _replay_verified(engine, trace):
    """Replay with inline zero-drift verification; returns the report."""
    from repro.observability import SpanTracer

    tracer = SpanTracer()
    report = engine.replay(trace, tracer=tracer)
    tracer.finish()
    tracer.validate()
    report.verify_against_metrics()
    return report


def run_soak_sim(seed: int = 0, *,
                 n_points: int = 500, n_pool: int = 100,
                 n_requests: int = 300, mean_qps: float = 20_000.0,
                 n_shards: int = 4, n_replicas: int = 2,
                 mttr_bound_seconds: float = 0.05,
                 corruption_probability: float = 0.2,
                 mutation_ops: int = 20) -> SoakReport:
    """Run the three-phase whole-stack chaos soak.

    Everything downstream is a pure function of the arguments: traces,
    fault plans, and rebuild-corruption draws are all seeded, so two
    calls with the same inputs return byte-identical
    :class:`SoakReport` encodings.

    Args:
        seed: Master seed; each phase derives its own trace/plan seeds
            from it deterministically.
        n_points: Cluster corpus size (phases 1 and 3).
        n_pool: Query-pool size.
        n_requests: Requests in the cluster/quant phases (the mutable
            phase replays half as many over the snapshot cluster).
        mean_qps: Trace arrival rate.
        n_shards: Shards in the cluster/quant phases.
        n_replicas: Replicas per shard.
        mttr_bound_seconds: Bound every healed repair must meet.
        corruption_probability: Per-rebuild corruption rate — keeps the
            quarantine + re-rebuild path honest.
        mutation_ops: Mutation ops in the mutable phase.
    """
    from repro.cluster import ClusterEngine
    from repro.core.params import SearchParams
    from repro.datasets.catalog import load_dataset
    from repro.faults import named_fault_plan
    from repro.heal import HealPolicy
    from repro.mutable import run_mutation_sim
    from repro.mutable.recovery import recover
    from repro.observability import MetricsRegistry, SpanTracer
    from repro.serve import synthetic_trace

    if n_requests <= 0 or mutation_ops <= 0:
        raise HealError(
            f"soak needs positive n_requests/mutation_ops, got "
            f"{n_requests}/{mutation_ops}"
        )
    heal = HealPolicy(corruption_probability=corruption_probability,
                      max_rebuild_attempts=4,
                      mttr_bound_seconds=mttr_bound_seconds)
    horizon = 2.0 * n_requests / mean_qps
    phases: List[SoakPhaseResult] = []

    # -- phase 1: healing cluster under the soak recipe -----------------
    dataset = load_dataset("sift1m", n_points=n_points,
                           n_queries=n_pool)
    params = SearchParams(k=8, l_n=32)
    trace = synthetic_trace(dataset.queries, n_requests,
                            mean_qps=mean_qps, queries_per_request=2,
                            seed=seed)
    plan = named_fault_plan("soak", horizon_seconds=horizon, seed=seed,
                            n_workers=n_shards * n_replicas)
    engine = ClusterEngine(dataset.points, n_shards=n_shards,
                           n_replicas=n_replicas, params=params,
                           faults=plan, heal=heal)
    report = _replay_verified(engine, trace)
    n_wrong = _count_wrong(engine, report, trace, dataset.queries,
                           params)
    phases.append(_phase_from_report(PHASE_CLUSTER, report, n_wrong,
                                     mttr_bound_seconds))

    # -- phase 2: mutable store -> snapshot cluster healed from it ------
    mut_plan = named_fault_plan("compaction-crash",
                                horizon_seconds=float(mutation_ops + 5),
                                seed=seed)
    tracer = SpanTracer()
    metrics = MetricsRegistry()
    mreport = run_mutation_sim(
        n_points=240, n_dims=16, n_ops=mutation_ops, seed=seed,
        batch_size=8, k=5, l_n=32, compact_every=6, checkpoint_every=9,
        fault_plan=mut_plan, tracer=tracer, metrics=metrics)
    tracer.finish()
    tracer.validate()
    mreport.verify_against_metrics()
    mut_wrong = mreport.n_wrong_answers
    recovered = recover(mreport.store)
    if recovered.digest() != mreport.final_digest:
        # Recovery infidelity is a wrong answer waiting to happen.
        mut_wrong += 1
    handle = recovered.snapshot()
    mut_params = SearchParams(k=5, l_n=32)
    rng = np.random.default_rng(seed + 101)
    mut_pool = rng.standard_normal(
        (n_pool // 2, handle.points.shape[1])).astype(
            handle.points.dtype)
    mut_requests = max(n_requests // 2, 1)
    mut_trace = synthetic_trace(mut_pool, mut_requests,
                                mean_qps=mean_qps,
                                queries_per_request=2, seed=seed + 1)
    snap_plan = named_fault_plan(
        "soak", horizon_seconds=2.0 * mut_requests / mean_qps,
        seed=seed + 1, n_workers=2 * n_replicas)
    snap_engine = ClusterEngine.from_snapshot(
        handle, 2, n_replicas, params=mut_params, faults=snap_plan,
        heal=heal, repair_store=mreport.store)
    snap_report = _replay_verified(snap_engine, mut_trace)
    snap_wrong = _count_wrong(snap_engine, snap_report, mut_trace,
                              mut_pool, mut_params,
                              live_ids=handle.live_ids())
    phases.append(_phase_from_report(
        PHASE_MUTABLE, snap_report, mut_wrong + snap_wrong,
        mttr_bound_seconds,
        detail=(f"{mreport.n_crashes} crashes, "
                f"{mreport.n_recoveries} recoveries, "
                f"{snap_engine._repair_sources()[0].wal_records} wal "
                f"records replayed per rebuild")))

    # -- phase 3: quantized staged pipeline under the same chaos --------
    quant_params = SearchParams(k=8, l_n=32, quant="fp16",
                                rerank_factor=2)
    quant_requests = max(n_requests // 2, 1)
    quant_trace = synthetic_trace(dataset.queries, quant_requests,
                                  mean_qps=mean_qps,
                                  queries_per_request=2, seed=seed + 2)
    quant_plan = named_fault_plan(
        "soak", horizon_seconds=2.0 * quant_requests / mean_qps,
        seed=seed + 2, n_workers=n_shards * n_replicas)
    quant_engine = ClusterEngine(dataset.points, n_shards=n_shards,
                                 n_replicas=n_replicas,
                                 params=quant_params,
                                 faults=quant_plan, heal=heal)
    quant_report = _replay_verified(quant_engine, quant_trace)
    quant_wrong = _count_wrong(quant_engine, quant_report, quant_trace,
                               dataset.queries, quant_params)
    phases.append(_phase_from_report(PHASE_QUANT, quant_report,
                                     quant_wrong, mttr_bound_seconds))

    return SoakReport(seed=seed,
                      mttr_bound_seconds=mttr_bound_seconds,
                      phases=phases)
