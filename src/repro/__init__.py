"""repro — reproduction of "GPU-accelerated Proximity Graph Approximate
Nearest Neighbor Search and Construction" (Yu et al., ICDE 2022).

The package provides:

- **GANNS** (:func:`repro.core.ganns.ganns_search`): the paper's
  GPU-friendly proximity-graph search built on lazy update + lazy check.
- **GGraphCon** (:func:`repro.core.construction.build_nsw_gpu` and the
  HNSW/KNN extensions): divide-and-conquer GPU graph construction.
- **Baselines**: SONG, Algorithm 1 beam search, sequential CPU NSW/HNSW
  construction, NN-Descent.
- **Substrates**: a simulated SIMT device with calibrated cycle costs
  (:mod:`repro.gpusim`), proximity-graph storage (:mod:`repro.graphs`),
  metrics (:mod:`repro.metrics`) and synthetic stand-ins for the paper's
  datasets (:mod:`repro.datasets`).
- **GannsIndex**: the one-object high-level API.
- **Serving** (:mod:`repro.serve`): dynamic micro-batching, result
  caching and admission control for online query traffic.
- **Cluster** (:mod:`repro.cluster`): sharded multi-replica serving
  with scatter-gather top-k merge and replica failover.
- **Mutable** (:mod:`repro.mutable`): the crash-safe mutable index —
  streaming inserts/deletes, versioned snapshots, WAL + checkpoint
  recovery.

Quickstart:
    >>> import numpy as np
    >>> from repro import GannsIndex
    >>> points = np.random.rand(2000, 32).astype("float32")
    >>> index = GannsIndex.build(points)
    >>> ids, dists = index.search(points[:5], k=10)
"""

from repro._version import __version__
from repro.errors import (
    ReproError,
    ConfigurationError,
    UnknownFamilyError,
    UnsupportedOperationError,
    DeviceError,
    GraphError,
    DatasetError,
    SearchError,
    ConstructionError,
    ServeError,
    OverloadError,
    ClusterError,
    FaultError,
    KernelTimeoutError,
    MemoryFaultError,
    DeviceMemoryError,
)
from repro.core import (
    GannsIndex,
    IndexBackend,
    ConformanceProfile,
    backend_families,
    get_backend,
    register_backend,
    tune_search,
    stream_batches,
    SearchParams,
    BuildParams,
    SearchReport,
    ConstructionReport,
    ganns_search,
    build_nsw_gpu,
    build_hnsw_gpu,
    build_knn_graph_gpu,
    build_cagra_gpu,
    build_nsw_serial_gpu,
    build_nsw_naive_parallel,
)
from repro.baselines import (
    beam_search,
    song_search,
    SongParams,
    build_nsw_cpu,
    build_hnsw_cpu,
    build_knn_graph_nn_descent,
)
from repro.datasets import load_dataset, dataset_names, exact_knn
from repro.graphs import ProximityGraph, HierarchicalGraph, validate_graph
from repro.metrics import recall_at_k, get_metric
from repro.serve import (
    BatchPolicy,
    QueryRequest,
    ResultCache,
    ServeEngine,
    ServeReport,
    synthetic_trace,
)
from repro.faults import (
    AdmissionGovernor,
    BreakerPolicy,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultReport,
    RetryPolicy,
    named_fault_plan,
)
from repro.cluster import (
    ClusterEngine,
    ClusterReport,
    ConsistentHashRing,
    ReplicaRouter,
    RouterPolicy,
    ShardMap,
    merge_topk,
)
from repro.mutable import (
    DurableStore,
    MutableIndex,
    MutationReport,
    SnapshotHandle,
    clean_replay_digest,
    recover,
    run_mutation_sim,
)

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "UnknownFamilyError",
    "UnsupportedOperationError",
    "DeviceError",
    "GraphError",
    "DatasetError",
    "SearchError",
    "ConstructionError",
    "ServeError",
    "OverloadError",
    "ClusterError",
    "FaultError",
    "KernelTimeoutError",
    "MemoryFaultError",
    "DeviceMemoryError",
    "GannsIndex",
    "IndexBackend",
    "ConformanceProfile",
    "backend_families",
    "get_backend",
    "register_backend",
    "tune_search",
    "stream_batches",
    "SearchParams",
    "BuildParams",
    "SearchReport",
    "ConstructionReport",
    "ganns_search",
    "build_nsw_gpu",
    "build_hnsw_gpu",
    "build_knn_graph_gpu",
    "build_cagra_gpu",
    "build_nsw_serial_gpu",
    "build_nsw_naive_parallel",
    "beam_search",
    "song_search",
    "SongParams",
    "build_nsw_cpu",
    "build_hnsw_cpu",
    "build_knn_graph_nn_descent",
    "load_dataset",
    "dataset_names",
    "exact_knn",
    "ProximityGraph",
    "HierarchicalGraph",
    "validate_graph",
    "recall_at_k",
    "get_metric",
    "BatchPolicy",
    "QueryRequest",
    "ResultCache",
    "ServeEngine",
    "ServeReport",
    "synthetic_trace",
    "AdmissionGovernor",
    "BreakerPolicy",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "RetryPolicy",
    "named_fault_plan",
    "ClusterEngine",
    "ClusterReport",
    "ConsistentHashRing",
    "ReplicaRouter",
    "RouterPolicy",
    "ShardMap",
    "merge_topk",
    "DurableStore",
    "MutableIndex",
    "MutationReport",
    "SnapshotHandle",
    "clean_replay_digest",
    "recover",
    "run_mutation_sim",
]
