"""GGraphCon on a multi-core CPU (the Section IV-B portability remark).

The divide-and-conquer construction is hardware-agnostic: "each working
unit can be individually responsible for the construction of one local
graph and the search of nearest neighbors of one point in the merged
local graph in each iteration".  Here the working units are CPU cores:

- Phase 1: each core builds local graphs (groups are assigned to cores
  by longest-processing-time scheduling; the phase's wall time is the
  makespan).
- Phase 2: within each merge iteration, the group's forward-edge
  searches spread across the cores; the backward-edge organisation is a
  sort + scan priced at single-core speed (it is a tiny fraction).

The resulting graph is *identical* to the GPU construction's (same
traversals, same merges); only the clock differs — priced by the
single-core :class:`repro.baselines.cpu_cost.CpuModel` divided across
cores with explicit makespans, no magical linear speedup.
"""

from __future__ import annotations

import heapq
from typing import Dict, List

import numpy as np

from repro.baselines.beam import beam_search
from repro.baselines.cpu_cost import CpuModel, CpuOpCounters, DEFAULT_CPU
from repro.baselines.nsw_cpu import exact_prefix_knn
from repro.core.construction import _insert_into_local_graph
from repro.core.params import BuildParams
from repro.core.results import ConstructionReport
from repro.errors import ConstructionError
from repro.graphs.adjacency import ProximityGraph
from repro.metrics.distance import get_metric


def _makespan_seconds(job_seconds: List[float], n_cores: int) -> float:
    """LPT makespan of jobs over cores."""
    if not job_seconds:
        return 0.0
    if n_cores >= len(job_seconds):
        return max(job_seconds)
    cores = [0.0] * n_cores
    heapq.heapify(cores)
    for job in sorted(job_seconds, reverse=True):
        earliest = heapq.heappop(cores)
        heapq.heappush(cores, earliest + job)
    return max(cores)


def _traversal_seconds(counters: CpuOpCounters, flops: int,
                       cpu: CpuModel) -> float:
    return cpu.seconds(counters, flops)


def build_nsw_multicore(points: np.ndarray, params: BuildParams,
                        n_cores: int = 26, metric: str = "euclidean",
                        cpu: CpuModel = DEFAULT_CPU,
                        exact: bool = False) -> ConstructionReport:
    """Build an NSW graph with GGraphCon scheduled over CPU cores.

    Args:
        points: ``(n, d)`` float matrix, insertion order = row order.
        params: Build parameters (``n_blocks`` = group count).
        n_cores: Worker cores (the paper's evaluation host has 26).
        metric: Metric name.
        cpu: Per-core timing model.
        exact: Exact neighbor search (theorem mode).

    Returns:
        A :class:`ConstructionReport` whose ``algorithm`` is
        ``"ggraphcon-multicore"``.
    """
    points = np.asarray(points)
    if points.ndim != 2 or len(points) == 0:
        raise ConstructionError(
            f"points must be a non-empty 2-D matrix, got shape {points.shape}"
        )
    if n_cores <= 0:
        raise ConstructionError(f"n_cores must be positive, got {n_cores}")
    n = len(points)
    n_dims = points.shape[1]
    metric_obj = get_metric(metric)
    flops = metric_obj.flops_per_distance(n_dims)
    d_min, d_max = params.d_min, params.d_max
    ef = params.effective_ef
    n_groups = min(params.n_blocks, n)

    boundaries = np.linspace(0, n, n_groups + 1).astype(np.int64)
    groups = [np.arange(boundaries[i], boundaries[i + 1])
              for i in range(n_groups) if boundaries[i] < boundaries[i + 1]]
    n_groups = len(groups)

    graph = ProximityGraph(n, d_max, metric)
    forward_ids = np.full((n, d_min), -1, dtype=np.int64)
    forward_dists = np.full((n, d_min), np.inf, dtype=np.float64)

    # Phase 1 — one core per local graph.
    local_graphs: List[ProximityGraph] = []
    group_seconds: List[float] = []
    for group in groups:
        local_points = points[group]
        local_graph = ProximityGraph(len(group), d_max, metric)
        counters = CpuOpCounters()
        for local_vertex in range(1, len(group)):
            neighbor_ids, dists, traversal = _insert_into_local_graph(
                local_graph, local_points, local_vertex, d_min, ef,
                metric_obj, exact)
            counters.n_distances += traversal.n_distance_computations
            counters.n_heap_ops += traversal.n_heap_ops
            counters.n_hash_probes += traversal.n_hash_probes
            for u, dist in zip(neighbor_ids, dists):
                local_graph.insert_edge(local_vertex, int(u), float(dist))
                local_graph.insert_edge(int(u), local_vertex, float(dist))
                counters.n_adjacency_inserts += 2
            count = len(neighbor_ids)
            forward_ids[group[local_vertex], :count] = group[neighbor_ids]
            forward_dists[group[local_vertex], :count] = dists
        local_graphs.append(local_graph)
        group_seconds.append(_traversal_seconds(counters, flops, cpu))
    local_seconds = _makespan_seconds(group_seconds, n_cores)

    group0 = groups[0]
    for local_vertex, global_vertex in enumerate(group0):
        degree = local_graphs[0].degrees[local_vertex]
        row = local_graphs[0].neighbor_ids[local_vertex, :degree]
        graph.set_row(global_vertex, group0[row],
                      local_graphs[0].neighbor_dists[local_vertex, :degree])

    # Phase 2 — merge iterations; searches fan out over the cores.
    merge_seconds = 0.0
    for i in range(1, n_groups):
        group = groups[i]
        prefix_end = int(group[0])
        search_seconds: List[float] = []
        edge_src: List[int] = []
        edge_dst: List[int] = []
        edge_dist: List[float] = []
        for v in group:
            counters = CpuOpCounters()
            if exact:
                all_prefix = metric_obj.one_to_many(points[v],
                                                    points[:prefix_end])
                take = min(d_min, prefix_end)
                part = (np.argpartition(all_prefix, take - 1)[:take]
                        if take < prefix_end else np.arange(prefix_end))
                order = np.lexsort((part, all_prefix[part]))
                ids = part[order][:take].astype(np.int64)
                dists = all_prefix[ids]
                counters.n_distances += prefix_end
            else:
                result = beam_search(graph, points, points[v], k=d_min,
                                     ef=ef, entry=0, metric=metric_obj)
                ids, dists = result.ids, result.dists
                counters.n_distances += result.n_distance_computations
                counters.n_heap_ops += result.n_heap_ops
                counters.n_hash_probes += result.n_hash_probes

            mask = forward_ids[v] >= 0
            all_ids = np.concatenate([ids, forward_ids[v][mask]])
            all_dists = np.concatenate([dists, forward_dists[v][mask]])
            order = np.lexsort((all_ids, all_dists))
            all_ids, all_dists = all_ids[order], all_dists[order]
            _, unique_idx = np.unique(all_ids, return_index=True)
            unique_idx.sort()
            all_ids = all_ids[unique_idx][:d_min]
            all_dists = all_dists[unique_idx][:d_min]
            order = np.lexsort((all_ids, all_dists))
            graph.set_row(int(v), all_ids[order], all_dists[order])
            for u, dist in zip(all_ids, all_dists):
                edge_src.append(int(u))
                edge_dst.append(int(v))
                edge_dist.append(float(dist))
            counters.n_adjacency_inserts += len(all_ids)
            search_seconds.append(_traversal_seconds(counters, flops, cpu))
        merge_seconds += _makespan_seconds(search_seconds, n_cores)

        if edge_src:
            src = np.asarray(edge_src)
            dst = np.asarray(edge_dst)
            dist = np.asarray(edge_dist)
            order = np.lexsort((dst, dist, src))
            src, dst, dist = src[order], dst[order], dist[order]
            from repro.gpusim.scan import csr_offsets_from_sorted_ids
            offsets = csr_offsets_from_sorted_ids(src)
            update = CpuOpCounters()
            for s in range(len(offsets) - 1):
                lo, hi = offsets[s], offsets[s + 1]
                graph.merge_row(int(src[lo]), dst[lo:hi], dist[lo:hi])
                update.n_adjacency_inserts += int(hi - lo)
            # Sort + scan + merges priced on one core; they are a sliver
            # of the phase and parallelising them would not change shape.
            merge_seconds += cpu.seconds(update, flops_per_distance=0)

    total = local_seconds + merge_seconds
    return ConstructionReport(
        algorithm="ggraphcon-multicore",
        graph=graph,
        seconds=total,
        phase_seconds={"local_construction": local_seconds,
                       "merge": merge_seconds},
        n_points=n,
        details={"n_cores": float(n_cores),
                 "n_groups": float(n_groups)},
    )
