"""Extensions beyond the paper's evaluated configurations.

- :mod:`repro.extensions.multicore` — GGraphCon on a multi-core CPU.
  Section IV-B remarks that Algorithm 2 "is essentially independent of
  hardware substrate ... it can also be applied to other system settings
  that have multiple working units such as multi-core CPU systems and
  distributed systems"; this module takes the paper at its word.
- :mod:`repro.extensions.distributed` — GGraphCon across cluster
  workers with an explicit network cost model (the same remark's
  "distributed systems" case).
- :mod:`repro.extensions.mips` — maximum inner-product search: the
  inner-product "distance" wired through the whole stack (a common
  production requirement the paper leaves implicit).
"""

from repro.extensions.multicore import build_nsw_multicore
from repro.extensions.distributed import NetworkModel, build_nsw_distributed
from repro.extensions.mips import InnerProductMetric, register_ip_metric

__all__ = [
    "build_nsw_multicore",
    "build_nsw_distributed",
    "NetworkModel",
    "InnerProductMetric",
    "register_ip_metric",
]
