"""Maximum inner-product search (MIPS) as a pluggable metric.

Recommendation systems — one of the applications the paper's
introduction names — usually rank by *inner product*, not distance.
Inner product is not a metric (no triangle inequality, not even
non-negative), but proximity-graph search only needs a comparable
"smaller is better" score, so ``-⟨q, p⟩`` slots straight into the
library's metric interface.

Call :func:`register_ip_metric` once to add ``"ip"`` to the metric
registry; every component (ground truth, graph construction, beam
search, SONG, GANNS) then accepts ``metric="ip"``.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.distance import METRICS, Metric


class InnerProductMetric(Metric):
    """Negative inner product: ``dist(a, b) = -⟨a, b⟩``.

    Smaller is better, so the top-k under this "distance" are exactly
    the maximum-inner-product results.
    """

    name = "ip"

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return -(np.asarray(a, dtype=np.float64)
                 @ np.asarray(b, dtype=np.float64).T)

    def one_to_many(self, query: np.ndarray, points: np.ndarray
                    ) -> np.ndarray:
        return -(np.asarray(points, dtype=np.float64)
                 @ np.asarray(query, dtype=np.float64))

    def _rows_to_rows(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return -np.einsum("ij,ij->i", np.asarray(a, dtype=np.float64),
                          np.asarray(b, dtype=np.float64))

    def flops_per_distance(self, n_dims: int) -> int:
        return 2 * n_dims


def register_ip_metric() -> InnerProductMetric:
    """Register ``"ip"`` in the global metric registry (idempotent)."""
    instance = METRICS.get(InnerProductMetric.name)
    if instance is None:
        instance = InnerProductMetric()
        METRICS[InnerProductMetric.name] = instance
    return instance
